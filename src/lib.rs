//! # magseven
//!
//! An end-to-end **domain-specific accelerator design and evaluation
//! framework for autonomous systems**, reproducing the framework called for
//! by *"The Magnificent Seven Challenges and Opportunities in Domain-Specific
//! Accelerator Design for Autonomous Systems"* (DAC 2024).
//!
//! This facade crate re-exports every subsystem:
//!
//! - [`units`] — physical-quantity newtypes ([`m7_units`])
//! - [`kernels`] — executable autonomy kernels ([`m7_kernels`])
//! - [`arch`] — platform and cost models ([`m7_arch`])
//! - [`sim`] — end-to-end closed-loop simulator ([`m7_sim`])
//! - [`flow`] — typed dataflow-graph runtime for multi-rate
//!   perception → planning → control pipelines ([`m7_flow`])
//! - [`dse`] — design-space exploration ([`m7_dse`])
//! - [`lca`] — lifecycle/carbon analysis ([`m7_lca`])
//! - [`suite`] — benchmark suite and experiments E1..E15 ([`m7_suite`])
//! - [`par`] — deterministic parallel runtime ([`m7_par`])
//! - [`scen`] — procedural scenario generation, scenario DSL, and
//!   adversarial falsification ([`m7_scen`])
//! - [`camp`] — streaming mega-campaigns: stratified sampling,
//!   importance splitting, mergeable coverage sketches ([`m7_camp`])
//! - [`serve`] — memoizing evaluation service: content-addressed result
//!   cache, request batcher, loopback server ([`m7_serve`])
//! - [`trace`] — structured tracing, metrics & profiling: spans, typed
//!   counters/histograms, chrome://tracing export ([`m7_trace`])
//!
//! ## Quickstart
//!
//! ```
//! use magseven::prelude::*;
//!
//! // Describe a candidate platform and a workload, then evaluate it.
//! let platform = Platform::preset(PlatformKind::CpuSimd);
//! let workload = KernelProfile::gemv(256, 256);
//! let cost = platform.estimate(&workload);
//! assert!(cost.latency > Seconds::ZERO);
//! ```

pub use m7_arch as arch;
pub use m7_bench as bench;
pub use m7_camp as camp;
pub use m7_dse as dse;
pub use m7_flow as flow;
pub use m7_kernels as kernels;
pub use m7_lca as lca;
pub use m7_par as par;
pub use m7_scen as scen;
pub use m7_serve as serve;
pub use m7_sim as sim;
pub use m7_suite as suite;
pub use m7_trace as trace;
pub use m7_units as units;

/// Commonly used types from every subsystem, for glob import.
pub mod prelude {
    pub use m7_arch::{
        contention::SharedBus,
        cost::CostEstimate,
        dvfs::OperatingPoint,
        generator::AcceleratorConfig,
        platform::{Platform, PlatformKind, Specialization},
        roofline::Roofline,
        spec::parse_platform,
        workload::{KernelFamily, KernelProfile},
    };
    pub use m7_camp::{run_campaign, CampaignOutcome, CampaignPlan, StratumSketch};
    pub use m7_dse::{
        explorer::{Explorer, SearchBudget},
        moga::nsga2,
        pareto::pareto_front,
        space::DesignSpace,
    };
    pub use m7_flow::{
        EdgeSpec, FlowError, GraphBuilder, GraphReport, LossModel, MessageType, Placement,
        QueuePolicy, ServerSpec, Service, SinkSpec, SourceSpec,
    };
    pub use m7_kernels::{
        control::{Lqr, Pid, TrapezoidalProfile},
        dnn::{Mlp, Precision},
        geometry::{Pose2, Vec2, Vec3},
        planning::{astar, AstarConfig, CollisionWorld, Prm, PrmConfig, Rrt, RrtConfig, RrtStar},
        slam::{EkfSlam, ParticleFilter, PoseGraph},
    };
    pub use m7_lca::{
        carbon::{CarbonFootprint, GridIntensity},
        embodied::DieSpec,
        fleet::FleetModel,
    };
    pub use m7_par::ParConfig;
    pub use m7_scen::{
        evaluate_rover, evaluate_uav, falsify, generate, Falsification, FalsifyConfig, Family,
        ScenOutcome, Scenario,
    };
    pub use m7_serve::{
        batch::evaluate_batch_memo,
        cache::{CacheStats, EvalCache},
        key::{CacheKey, EvalRequest},
        server::{EvalClient, EvalServer, ServeConfig},
    };
    pub use m7_sim::{
        campaign::{CampaignConfig, CampaignRunner, RobustnessReport},
        degrade::DegradationPolicy,
        faults::{Fault, FaultProfile, FaultSchedule},
        mission::{MissionOutcome, MissionSpec},
        rover::{Rover, RoverConfig},
        thermal::{ThermalConfig, ThermalState},
        uav::{ComputeTier, Uav, UavConfig},
    };
    pub use m7_suite::{
        challenges::Challenge,
        experiments::{Experiment, ExperimentId},
        report::Report,
    };
    pub use m7_units::{
        Grams, GramsCo2e, Hertz, Joules, Meters, MetersPerSecond, Ops, OpsPerSecond, Seconds,
        SquareMillimeters, Watts,
    };
}
