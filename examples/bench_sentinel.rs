//! Regression sentinel CLI: tolerance-aware diff of two bench/metric
//! JSON documents.
//!
//! Run with: `cargo run --example bench_sentinel -- --check BASELINE CANDIDATE [--ratio R]`
//!
//! - `--check BASELINE CANDIDATE` compares the candidate document
//!   against the baseline under the per-metric-class rules in
//!   `m7_bench::sentinel` (deterministic paths exact, diagnostic paths
//!   within a worsening ratio) and exits **1** on any regression — CI
//!   gates on the exit code.
//! - `--ratio R` overrides the allowed diagnostic worsening ratio
//!   (default 5.0, i.e. up to 6x worse passes).
//! - `--self-test` proves the sentinel can fail: it synthesizes a
//!   baseline, injects a deterministic drift and a latency blowup, and
//!   exits non-zero unless both injected regressions are caught.

use magseven::bench::sentinel::{compare_json, SentinelConfig, DEFAULT_DIAG_RATIO};

fn usage() -> ! {
    eprintln!("usage: bench_sentinel --check BASELINE CANDIDATE [--ratio R] | --self-test");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(2);
        }
    }
}

fn self_test(config: &SentinelConfig) -> ! {
    let baseline = r#"{
        "schema": "m7-bench/self-test/v1",
        "deterministic": {"requests": 64, "cache_hits": 48},
        "diagnostic": {"eval_p99_ns": 1500, "tier_hits": 32}
    }"#;
    // Clean rerun: identical numbers must pass.
    let clean = compare_json(baseline, baseline, config).expect("self-test json");
    if !clean.passed() {
        eprintln!("self-test FAILED: identical documents flagged\n{}", clean.render());
        std::process::exit(1);
    }
    // Injected regressions: a deterministic drift and a latency blowup
    // far past any ratio. Both must be caught.
    let broken = baseline
        .replace("\"cache_hits\": 48", "\"cache_hits\": 47")
        .replace("\"eval_p99_ns\": 1500", "\"eval_p99_ns\": 150000");
    let report = compare_json(baseline, &broken, config).expect("self-test json");
    let caught: Vec<&str> = report.regressions().iter().map(|f| f.path.as_str()).collect();
    if caught.contains(&"deterministic.cache_hits") && caught.contains(&"diagnostic.eval_p99_ns") {
        println!("self-test OK: injected regressions caught ({})", caught.join(", "));
        std::process::exit(0);
    }
    eprintln!("self-test FAILED: injected regressions not caught\n{}", report.render());
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut check: Option<(String, String)> = None;
    let mut ratio = DEFAULT_DIAG_RATIO;
    let mut run_self_test = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                let (Some(base), Some(cand)) = (args.next(), args.next()) else { usage() };
                check = Some((base, cand));
            }
            "--ratio" => {
                let Some(value) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--ratio needs a non-negative number");
                    std::process::exit(2);
                };
                if value.is_nan() || value < 0.0 {
                    eprintln!("--ratio needs a non-negative number");
                    std::process::exit(2);
                }
                ratio = value;
            }
            "--self-test" => run_self_test = true,
            _ => usage(),
        }
    }
    let config = SentinelConfig { diag_ratio: ratio };
    if run_self_test {
        self_test(&config);
    }
    let Some((base_path, cand_path)) = check else { usage() };
    let report = match compare_json(&read(&base_path), &read(&cand_path), &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sentinel: {err}");
            std::process::exit(2);
        }
    };
    print!("{}", report.render());
    std::process::exit(i32::from(!report.passed()));
}
