//! Streaming scenario campaigns from the command line: stratified
//! coverage of every generator family with importance splitting, at
//! any budget, resumable across invocations.
//!
//! Run with: `cargo run --release --example campaign [flags]`
//!
//! Flags:
//!
//! - `--budget N` — closed-loop evaluations to stream (default 600)
//! - `--tier T` — platform tier to campaign: `micro`, `embedded`,
//!   `embedded-gpu`, `desktop`, or `server` (default `micro`)
//! - `--seed S` — campaign root seed (default 42)
//! - `--resume-dir DIR` — checkpoint every work unit in a crash-safe
//!   on-disk tiered cache under DIR; a re-run over the same directory
//!   replays finished units instead of re-simulating them, so a killed
//!   campaign continues where it died
//! - `--self-test` — prove the determinism and resume contracts: the
//!   coverage report must be byte-identical across 1 vs 8 threads,
//!   cold vs disk-backed, after a simulated mid-run kill (torn
//!   checkpoint tail), and on a warm resume that re-evaluates nothing.
//!   Exits non-zero on any mismatch.
//! - `--threads N`, `--trace FILE`, `--metrics` — the shared
//!   observability flags (`m7_trace::ObsFlags`)
//!
//! Kill-and-resume, by hand:
//!
//! ```text
//! cargo run --release --example campaign -- --budget 100000 --resume-dir /tmp/m7camp &
//! kill %1                    # any time
//! cargo run --release --example campaign -- --budget 100000 --resume-dir /tmp/m7camp
//! ```
//!
//! The second run recovers the finished work units from disk, reports
//! how many it replayed, and produces the byte-identical report the
//! uninterrupted run would have printed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use magseven::camp::stats::StratumSketch;
use magseven::camp::{run_campaign, CampaignOutcome, CampaignPlan};
use magseven::par::ParConfig;
use magseven::serve::cache::EvalCache;
use magseven::serve::segment::SEGMENT_FILE;
use magseven::serve::tier::{TierConfig, TieredCache};
use magseven::sim::uav::ComputeTier;
use magseven::suite::report::{fmt_f64, Report, Table};
use magseven::trace::ObsFlags;

/// Parses a tier name (the `Display` form used across the suite).
fn parse_tier(name: &str) -> Option<ComputeTier> {
    match name {
        "micro" => Some(ComputeTier::Micro),
        "embedded" => Some(ComputeTier::Embedded),
        "embedded-gpu" => Some(ComputeTier::EmbeddedGpu),
        "desktop" => Some(ComputeTier::Desktop),
        "server" => Some(ComputeTier::Server),
        _ => None,
    }
}

/// Renders the deterministic coverage report — every field in here is
/// bit-identical across thread counts and cold/resumed runs, which is
/// exactly what the self-test asserts byte-equality on.
fn render(out: &CampaignOutcome) -> String {
    let mut report = Report::new(format!("campaign — tier {}", out.tier));
    let mut summary = Table::new(
        "summary",
        vec!["evaluations", "strata", "units", "coverage", "anchor", "frontier"],
    );
    let frontier = match &out.frontier {
        Some(p) => format!("{} @ level {}", p.family, fmt_f64(p.level)),
        None => "survived probe".to_string(),
    };
    summary.push_row(vec![
        out.evaluations.to_string(),
        out.strata.len().to_string(),
        out.units.to_string(),
        fmt_f64(out.coverage),
        fmt_f64(out.anchor),
        frontier,
    ]);
    report.push_table(summary);

    let deciles = out.strata.iter().map(|s| s.decile + 1).max().unwrap_or(0);
    let mut headers = vec!["family".to_string()];
    headers.extend((0..deciles).map(|d| format!("d{d}")));
    let mut curves = Table::new("success curve (ok/draws per difficulty decile)", headers);
    let mut families = Vec::new();
    for s in &out.strata {
        if !families.contains(&s.family) {
            families.push(s.family);
        }
    }
    for family in families {
        let mut cells = vec![family.to_string()];
        let mut row: Vec<_> = out.strata.iter().filter(|s| s.family == family).collect();
        row.sort_by_key(|s| s.decile);
        for s in row {
            cells.push(format!("{}/{}", s.sketch.successes, s.sketch.trials));
        }
        curves.push_row(cells);
    }
    report.push_table(curves);
    report.to_string()
}

/// Runs one campaign with optional disk-backed checkpointing, printing
/// replay/recovery facts to stderr (they vary between cold and resumed
/// runs; the report on stdout never does).
fn run_once(
    plan: &CampaignPlan,
    seed: u64,
    par: ParConfig,
    resume_dir: Option<&Path>,
) -> std::io::Result<CampaignOutcome> {
    let out = match resume_dir {
        Some(dir) => {
            let units: TieredCache<StratumSketch> =
                TieredCache::open(4096, TierConfig::disk(dir.join("units")))?;
            let falsify: TieredCache<f64> =
                TieredCache::open(1024, TierConfig::disk(dir.join("falsify")))?;
            if let Some(rec) = units.recovery() {
                eprintln!(
                    "resume {}: {} finished units recovered ({} torn bytes truncated)",
                    dir.display(),
                    rec.live_entries,
                    rec.torn_bytes
                );
            }
            let out = run_campaign(plan, seed, par, &units, &falsify);
            units.sync()?;
            falsify.sync()?;
            out
        }
        None => {
            let units = EvalCache::new(1 << 16);
            let falsify = EvalCache::new(1024);
            run_campaign(plan, seed, par, &units, &falsify)
        }
    };
    eprintln!(
        "campaign done: {} evaluations in {} units, {} units replayed from checkpoints",
        out.evaluations, out.units, out.units_from_store
    );
    Ok(out)
}

/// Truncates the units segment to 60% of its length — the torn tail a
/// mid-write kill leaves behind, which recovery must absorb.
fn tear_checkpoint_tail(resume_dir: &Path) -> std::io::Result<u64> {
    let segment = resume_dir.join("units").join(SEGMENT_FILE);
    let len = std::fs::metadata(&segment)?.len();
    let keep = len * 6 / 10;
    let file = std::fs::OpenOptions::new().write(true).open(&segment)?;
    file.set_len(keep)?;
    Ok(len - keep)
}

/// Proves the campaign contracts end to end. Every step must produce a
/// byte-identical coverage report:
///
/// 1. serial in-memory (the reference)
/// 2. 8 threads in-memory (thread-count invariance)
/// 3. cold disk-backed run (checkpointing changes nothing)
/// 4. resume after a simulated mid-run kill (torn checkpoint tail)
/// 5. warm resume, which must replay every unit and re-evaluate none
fn self_test(plan: &CampaignPlan, seed: u64) -> ExitCode {
    let dir = std::env::temp_dir().join(format!("m7camp-selftest-{}", std::process::id()));
    if dir.exists() {
        if let Err(err) = std::fs::remove_dir_all(&dir) {
            eprintln!("cannot clear {}: {err}", dir.display());
            return ExitCode::from(2);
        }
    }

    let result = self_test_steps(plan, seed, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => {
            println!("self-test passed: byte-identical reports across threads, kill, and resume");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("self-test FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn self_test_steps(plan: &CampaignPlan, seed: u64, dir: &Path) -> Result<(), String> {
    let io = |err: std::io::Error| format!("io error: {err}");

    let reference = run_once(plan, seed, ParConfig::serial(), None).map_err(io)?;
    let report = render(&reference);

    let wide = run_once(plan, seed, ParConfig::with_threads(8), None).map_err(io)?;
    if render(&wide) != report {
        return Err("8-thread report differs from the serial report".into());
    }
    println!("threads ok: 1-thread and 8-thread reports are byte-identical");

    let cold = run_once(plan, seed, ParConfig::default(), Some(dir)).map_err(io)?;
    if render(&cold) != report {
        return Err("cold disk-backed report differs from the in-memory report".into());
    }
    if cold.units_from_store != 0 {
        return Err(format!(
            "cold run replayed {} units from an empty store",
            cold.units_from_store
        ));
    }
    println!("checkpointing ok: cold disk-backed report is byte-identical");

    let torn = tear_checkpoint_tail(dir).map_err(io)?;
    let resumed = run_once(plan, seed, ParConfig::default(), Some(dir)).map_err(io)?;
    if render(&resumed) != report {
        return Err("post-kill resumed report differs".into());
    }
    if resumed.units_from_store == 0 || resumed.units_from_store >= resumed.units {
        return Err(format!(
            "kill simulation lost nothing or everything: {} of {} units replayed",
            resumed.units_from_store, resumed.units
        ));
    }
    println!(
        "kill ok: tore {torn} checkpoint bytes, resumed {} of {} units, report byte-identical",
        resumed.units_from_store, resumed.units
    );

    let warm = run_once(plan, seed, ParConfig::default(), Some(dir)).map_err(io)?;
    if render(&warm) != report {
        return Err("warm resumed report differs".into());
    }
    if warm.units_from_store != warm.units {
        return Err(format!(
            "warm resume re-evaluated {} units",
            warm.units - warm.units_from_store
        ));
    }
    println!("resume ok: warm run replayed all {} units, re-evaluated none", warm.units);
    Ok(())
}

fn main() -> ExitCode {
    let mut budget = 600usize;
    let mut tier = ComputeTier::Micro;
    let mut seed = 42u64;
    let mut resume_dir: Option<PathBuf> = None;
    let mut selftest = false;
    let mut obs = ObsFlags::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    eprintln!("--budget needs a positive integer");
                    return ExitCode::from(2);
                };
                budget = v;
            }
            "--tier" => {
                let Some(v) = args.next().as_deref().and_then(parse_tier) else {
                    eprintln!(
                        "--tier needs one of: micro, embedded, embedded-gpu, desktop, server"
                    );
                    return ExitCode::from(2);
                };
                tier = v;
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::from(2);
                };
                seed = v;
            }
            "--resume-dir" => {
                let Some(v) = args.next().filter(|v| !v.is_empty()) else {
                    eprintln!("--resume-dir needs a directory path");
                    return ExitCode::from(2);
                };
                resume_dir = Some(PathBuf::from(v));
            }
            "--self-test" => selftest = true,
            s if obs.consume(s, &mut args) => {}
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: campaign [--budget N] [--tier T] \
                     [--seed S] [--resume-dir DIR] [--self-test] [--threads N] [--trace FILE] \
                     [--metrics] [--stats-interval MS] [--journal DIR]"
                );
                return ExitCode::from(2);
            }
        }
    }
    obs.activate();
    let _pump = match magseven::serve::TelemetryPump::from_flags(&obs) {
        Ok(pump) => pump,
        Err(err) => {
            eprintln!("telemetry journal: {err}");
            return ExitCode::from(2);
        }
    };
    let plan = CampaignPlan::new(tier, budget);

    let code = if selftest {
        self_test(&plan, seed)
    } else {
        let par = obs.threads.map_or_else(ParConfig::default, ParConfig::with_threads);
        match run_once(&plan, seed, par, resume_dir.as_deref()) {
            Ok(out) => {
                print!("{}", render(&out));
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("campaign failed: {err}");
                ExitCode::from(2)
            }
        }
    };

    if !obs.finish() {
        return ExitCode::FAILURE;
    }
    code
}
