//! Lifecycle carbon accounting for an accelerator deployment — the
//! paper's "Design Global" challenge as a report generator.
//!
//! Prices a candidate accelerator's embodied carbon, amortizes it against
//! operation, scales to a fleet, and compares chiplet vs monolithic
//! integration.
//!
//! Run with: `cargo run --example carbon_report`

use magseven::lca::chiplet::SystemDesign;
use magseven::lca::training::{TrainingJob, TrainingVenue};
use magseven::prelude::*;
use magseven::units::{Joules, Ops, Seconds, Watts};

fn main() {
    // One accelerator board: 150 mm² of 7 nm silicon drawing 15 W.
    let die = DieSpec::new(SquareMillimeters::new(150.0), 7.0);
    let embodied = die.embodied_carbon();
    println!("accelerator die: 150 mm2 @ 7 nm");
    println!("  yield: {:.2}", die.yield_fraction());
    println!("  embodied: {:.1} kgCO2e", embodied.value());

    // Five years of 8 h/day operation on the world-average grid.
    let duty = Seconds::from_hours(5.0 * 365.0 * 8.0);
    let energy: Joules = Watts::new(15.0) * duty;
    let footprint =
        CarbonFootprint::new(embodied).add_operation(energy, GridIntensity::WorldAverage);
    println!(
        "  5-year footprint: {:.1} kgCO2e total ({:.0}% embodied)",
        footprint.total().value(),
        footprint.embodied_fraction() * 100.0
    );

    // Fleet scale: "datacenters on wheels".
    println!("\nfleet-scale onboard compute (1 kW per vehicle, 8 h/day):");
    for fleet_size in [100_000u64, 1_000_000, 10_000_000, 100_000_000] {
        let fleet = FleetModel::new(fleet_size, Watts::new(1000.0), 8.0);
        println!(
            "  {:>11} vehicles: {:>8.2} MtCO2e/yr  (~{:>6.0} hyperscale datacenters)",
            fleet_size,
            fleet.annual_emissions().value() / 1e9,
            fleet.datacenter_equivalents()
        );
    }

    // Edge vs cloud training.
    let job = TrainingJob::new(Ops::new(1e21));
    println!(
        "\ntraining a 1e21-op model: edge emits {:.0}x more than cloud ({:.1} vs {:.1} kgCO2e)",
        job.edge_to_cloud_ratio(),
        job.emissions(&TrainingVenue::edge()).value(),
        job.emissions(&TrainingVenue::cloud()).value()
    );

    // Chiplet reuse.
    let mono = SystemDesign::monolithic(SquareMillimeters::new(600.0), 7.0);
    let quad = SystemDesign::chiplets(SquareMillimeters::new(600.0), 7.0, 4);
    println!("\n600 mm2 of logic, monolithic vs 4 chiplets:");
    println!("  monolithic embodied: {:.1} kgCO2e", mono.embodied_carbon().value());
    println!("  chiplets embodied:   {:.1} kgCO2e", quad.embodied_carbon().value());
    println!(
        "  next generation reusing 2 of 4 chiplets: {:.1} kgCO2e",
        quad.next_generation_carbon(2).value()
    );
}
