//! A loopback evaluation service for the E9 mission objective: clients
//! submit UAV design points over TCP and receive the mission-level cost,
//! with duplicate work answered from the content-addressed cache.
//!
//! Run with: `cargo run --release --example eval_service [mode] [flags]`
//!
//! Modes (default: `--self-test`):
//!
//! - `--serve` — bind the given `--port` (default ephemeral), print the
//!   bound address, and serve until a client sends `op = shutdown`.
//! - `--client` — send `--requests` design points (with deliberate
//!   duplicates) to a server at `--port`, print each cost, then query
//!   `op = stats`.
//! - `--self-test` — spawn an in-process server on an ephemeral port,
//!   run the client against it, verify every response bit-matches direct
//!   evaluation and that duplicates hit the cache, then shut down.
//!   Exits non-zero on any mismatch.
//!
//! Flags: `--port P`, `--threads N` (evaluation pool size), `--requests
//! N` (client design points, default 12), `--seed S` (mission seed,
//! default 42), `--cache-dir DIR` (back the cache with the crash-safe
//! on-disk segment store in DIR — results survive restarts, and a
//! restarted server reports how many entries it recovered), `--trace
//! FILE` (write a chrome://tracing JSON trace on exit), `--metrics`
//! (dump `key=value` metrics to stderr on exit).
//!
//! Kill-and-restart smoke, by hand:
//!
//! ```text
//! cargo run --release --example eval_service -- --self-test --cache-dir /tmp/m7cache
//! cargo run --release --example eval_service -- --self-test --cache-dir /tmp/m7cache
//! ```
//!
//! The second run recovers the first run's entries from disk and fails
//! unless every request is answered from the warm cache without
//! recomputing.
//!
//! Protocol: newline-delimited `key = value` pairs, blank-line
//! terminated — try it by hand with `nc 127.0.0.1 <port>`:
//!
//! ```text
//! op = eval
//! workload = uav-mission
//! seed = 42
//! values = 2 40 0.25 12
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use magseven::par::ParConfig;
use magseven::serve::key::EvalRequest;
use magseven::serve::server::{EvalClient, EvalServer, Evaluator, ServeConfig};
use magseven::serve::wire::Response;
use magseven::suite::experiments::e9_dse;
use magseven::trace::ObsFlags;

/// The served objective: E9's mission-level cost over (tier, battery_wh,
/// rotor_m2, sensor_m), validated before indexing anything.
struct MissionEvaluator;

impl Evaluator for MissionEvaluator {
    fn namespace_tag(&self) -> &str {
        "e9-mission"
    }

    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String> {
        if request.workload != "uav-mission" {
            return Err(format!(
                "unknown workload {:?}; this service serves \"uav-mission\"",
                request.workload
            ));
        }
        if request.values.len() != 4 {
            return Err(format!(
                "uav-mission takes 4 values (tier battery_wh rotor_m2 sensor_m), got {}",
                request.values.len()
            ));
        }
        if request.values.iter().any(|v| !v.is_finite()) {
            return Err("all values must be finite".to_string());
        }
        let tier = request.values[0];
        if tier.fract() != 0.0 || !(0.0..5.0).contains(&tier) {
            return Err(format!("tier must be an integer in 0..=4, got {tier}"));
        }
        if request.values[1] <= 0.0 || request.values[2] <= 0.0 || request.values[3] <= 0.0 {
            return Err("battery_wh, rotor_m2, and sensor_m must be positive".to_string());
        }
        Ok(e9_dse::mission_cost(&request.values, request.seed))
    }
}

/// The client's workload: `n` design points from the E9 space, cycling
/// so every third request is a repeat — the duplicates the cache should
/// absorb.
fn client_requests(n: usize, seed: u64) -> Vec<EvalRequest> {
    let space = e9_dse::uav_design_space();
    let all = space.enumerate();
    (0..n)
        .map(|i| {
            // Stride through the space, revisiting every third point.
            let pick = if i % 3 == 2 { i - 1 } else { i };
            let point = &all[(pick * 7) % all.len()];
            EvalRequest::new("uav-mission", space.values(point), seed)
        })
        .collect()
}

/// Prints what a disk-backed server found on startup — the observable
/// proof that a restart reuses earlier work.
fn report_recovery(handle: &magseven::serve::server::ServerHandle, cache_dir: &Option<PathBuf>) {
    if let (Some(dir), Some(rec)) = (cache_dir, handle.recovery()) {
        println!(
            "disk cache {}: recovered {} entries ({} records, {} torn bytes truncated)",
            dir.display(),
            rec.live_entries,
            rec.records,
            rec.torn_bytes
        );
    }
}

fn serve(port: u16, par: ParConfig, cache_dir: Option<PathBuf>) -> ExitCode {
    let config = ServeConfig { port, par, disk_dir: cache_dir.clone(), ..ServeConfig::default() };
    let handle = match EvalServer::spawn(config, Arc::new(MissionEvaluator)) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("bind failed: {err}");
            return ExitCode::from(2);
        }
    };
    report_recovery(&handle, &cache_dir);
    println!("serving uav-mission on {}", handle.addr());
    println!("stop with: op = shutdown");
    handle.wait();
    eprintln!("server stopped");
    ExitCode::SUCCESS
}

fn run_client(port: u16, requests: usize, seed: u64) -> ExitCode {
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let client = EvalClient::new(addr);
    for request in client_requests(requests, seed) {
        match client.eval(&request) {
            Ok(Response::Cost { cost, cached }) => {
                let tag = if cached { " (cached)" } else { "" };
                println!("{:?} -> {cost}{tag}", request.values);
            }
            Ok(other) => {
                eprintln!("unexpected response: {other:?}");
                return ExitCode::from(2);
            }
            Err(err) => {
                eprintln!("request failed: {err}");
                return ExitCode::from(2);
            }
        }
    }
    match client.stats() {
        Ok(Response::Stats(stats)) => println!("server cache: {stats}"),
        other => {
            eprintln!("stats query failed: {other:?}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Spawns server + client in one process and verifies the served costs
/// bit-match direct evaluation, with duplicates answered from cache.
///
/// With `--cache-dir`, a second invocation over the same directory is a
/// *warm* start: the server recovers the previous run's entries from
/// disk, and this self-test then **requires** every response to be
/// cached and at least one answer to come from the disk tier — the
/// kill-and-restart proof, runnable as two plain processes.
fn self_test(requests: usize, seed: u64, par: ParConfig, cache_dir: Option<PathBuf>) -> ExitCode {
    let config =
        ServeConfig { port: 0, par, disk_dir: cache_dir.clone(), ..ServeConfig::default() };
    let handle = match EvalServer::spawn(config, Arc::new(MissionEvaluator)) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("bind failed: {err}");
            return ExitCode::from(2);
        }
    };
    report_recovery(&handle, &cache_dir);
    let warm_start = handle.recovery().is_some_and(|rec| rec.live_entries > 0);
    println!("self-test server on {}", handle.addr());
    let client = EvalClient::new(handle.addr());
    let evaluator = MissionEvaluator;

    let mut failures = 0usize;
    let mut cached_responses = 0usize;
    for request in client_requests(requests, seed) {
        let direct = evaluator.evaluate(&request).expect("self-test requests are valid");
        match client.eval(&request) {
            Ok(Response::Cost { cost, cached }) => {
                if cost.to_bits() != direct.to_bits() {
                    eprintln!("MISMATCH {:?}: served {cost}, direct {direct}", request.values);
                    failures += 1;
                }
                if cached {
                    cached_responses += 1;
                }
            }
            other => {
                eprintln!("unexpected response for {:?}: {other:?}", request.values);
                failures += 1;
            }
        }
    }

    let stats = handle.cache_stats();
    let tier = handle.tier_stats();
    println!("served {requests} requests, {cached_responses} answered from cache");
    println!("server cache: {stats}");
    if cache_dir.is_some() {
        println!(
            "tiers: {} hot hits / {} disk hits / {} misses / {} insertions",
            tier.hot_hits, tier.disk_hits, tier.misses, tier.insertions
        );
    }
    handle.shutdown();

    if failures > 0 {
        eprintln!("self-test FAILED: {failures} mismatched responses");
        return ExitCode::FAILURE;
    }
    if requests >= 3 && cached_responses == 0 {
        eprintln!("self-test FAILED: duplicate requests never hit the cache");
        return ExitCode::FAILURE;
    }
    if warm_start {
        // A restart over a populated cache directory must reuse it: the
        // same deterministic request schedule was computed last time, so
        // nothing may be recomputed and the disk tier must answer.
        if cached_responses != requests {
            eprintln!(
                "self-test FAILED: warm start recomputed {} of {requests} requests",
                requests - cached_responses
            );
            return ExitCode::FAILURE;
        }
        if tier.disk_hits == 0 {
            eprintln!("self-test FAILED: warm start never touched the disk tier");
            return ExitCode::FAILURE;
        }
        println!("warm start verified: all {requests} responses served from the recovered cache");
    }
    println!("self-test passed: all served costs bit-match direct evaluation");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut mode = "--self-test".to_string();
    let mut port = 0u16;
    let mut requests = 12usize;
    let mut seed = 42u64;
    let mut cache_dir: Option<PathBuf> = None;
    let mut obs = ObsFlags::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve" | "--client" | "--self-test" => mode = arg,
            "--port" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--port needs a port number");
                    return ExitCode::from(2);
                };
                port = v;
            }
            "--requests" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    eprintln!("--requests needs a positive integer");
                    return ExitCode::from(2);
                };
                requests = v;
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::from(2);
                };
                seed = v;
            }
            "--cache-dir" => {
                let Some(v) = args.next().filter(|v| !v.is_empty()) else {
                    eprintln!("--cache-dir needs a directory path");
                    return ExitCode::from(2);
                };
                cache_dir = Some(PathBuf::from(v));
            }
            s if obs.consume(s, &mut args) => {}
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: eval_service \
                     [--serve|--client|--self-test] [--port P] [--threads N] [--requests N] \
                     [--seed S] [--cache-dir DIR] [--trace FILE] [--metrics] \
                     [--stats-interval MS] [--journal DIR]"
                );
                return ExitCode::from(2);
            }
        }
    }
    obs.activate();
    let _pump = match magseven::serve::TelemetryPump::from_flags(&obs) {
        Ok(pump) => pump,
        Err(err) => {
            eprintln!("telemetry journal: {err}");
            return ExitCode::from(2);
        }
    };
    let par = obs.threads.map_or_else(ParConfig::default, ParConfig::with_threads);

    let code = match mode.as_str() {
        "--serve" => serve(port, par, cache_dir),
        "--client" => {
            if port == 0 {
                eprintln!("--client needs --port (the address printed by --serve)");
                return ExitCode::from(2);
            }
            run_client(port, requests, seed)
        }
        _ => self_test(requests, seed, par, cache_dir),
    };

    if !obs.finish() {
        return ExitCode::FAILURE;
    }
    code
}
