//! Regenerates every paper-anchored experiment (E1-E11) and prints the
//! full reports — the repository's equivalent of rebuilding all of the
//! paper's figures in one command.
//!
//! Run with: `cargo run --release --example run_experiments [flags] [e5]`
//!
//! By default the eleven experiments run **concurrently** on the
//! deterministic pool (thread count from `M7_THREADS`, else all cores)
//! with cost-modeled E6 build times, so the output is byte-identical to
//! the serial run for the same seed. Flags:
//!
//! - `--serial` — run the experiments one at a time (same seeds, same
//!   output).
//! - `--measured` — time E6's roadmap builds on the host wall clock
//!   instead of the cost models (numbers vary run to run).
//!
//! A non-flag argument selects experiments by slug prefix; a prefix that
//! matches nothing is an error on both the serial and parallel paths.

use magseven::par::ParConfig;
use magseven::suite::experiments::{run_selected_parallel, run_selected_serial, select, Timing};

fn main() {
    let mut serial = false;
    let mut timing = Timing::Modeled;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--serial" => serial = true,
            "--measured" => timing = Timing::Measured,
            _ => filter = Some(arg),
        }
    }
    let seed = 42;

    // An experiment always runs on the seed of its paper-order position,
    // so a filtered run reproduces the corresponding full-run reports.
    let ids = match select(filter.as_deref()) {
        Ok(ids) => ids,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    let reports = if serial {
        run_selected_serial(&ids, seed, timing)
    } else {
        run_selected_parallel(&ids, seed, timing, ParConfig::default())
    };
    let reports = match reports {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };

    for (id, report) in reports {
        eprintln!("ran {} — {}", id.slug(), id.description());
        println!("{report}");
        println!("{}", "=".repeat(76));
    }
}
