//! Regenerates every paper-anchored experiment (E1-E10) and prints the
//! full reports — the repository's equivalent of rebuilding all of the
//! paper's figures in one command.
//!
//! Run with: `cargo run --release --example run_experiments [e5]`
//!
//! An optional argument selects a single experiment by slug prefix.

use magseven::suite::experiments::ExperimentId;

fn main() {
    let filter = std::env::args().nth(1);
    let seed = 42;
    for id in ExperimentId::ALL {
        if let Some(f) = &filter {
            if !id.slug().starts_with(f.as_str()) {
                continue;
            }
        }
        eprintln!("running {} — {}", id.slug(), id.description());
        let report = id.run(seed);
        println!("{report}");
        println!("{}", "=".repeat(76));
    }
}
