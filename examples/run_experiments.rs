//! Regenerates every paper-anchored experiment (E1-E10) and prints the
//! full reports — the repository's equivalent of rebuilding all of the
//! paper's figures in one command.
//!
//! Run with: `cargo run --release --example run_experiments [flags] [e5]`
//!
//! By default the ten experiments run **concurrently** on the
//! deterministic pool (thread count from `M7_THREADS`, else all cores)
//! with cost-modeled E6 build times, so the output is byte-identical to
//! the serial run for the same seed. Flags:
//!
//! - `--serial` — run the experiments one at a time (same seeds, same
//!   output).
//! - `--measured` — time E6's roadmap builds on the host wall clock
//!   instead of the cost models (numbers vary run to run).
//!
//! A non-flag argument selects a single experiment by slug prefix.

use magseven::par::{derive_seed, ParConfig};
use magseven::suite::experiments::{run_all_parallel, run_all_serial, ExperimentId, Timing};

fn main() {
    let mut serial = false;
    let mut timing = Timing::Modeled;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--serial" => serial = true,
            "--measured" => timing = Timing::Measured,
            _ => filter = Some(arg),
        }
    }
    let seed = 42;

    let reports = if let Some(f) = &filter {
        // A single experiment keeps its full-run seed (its paper index).
        ExperimentId::ALL
            .iter()
            .enumerate()
            .filter(|(_, id)| id.slug().starts_with(f.as_str()))
            .map(|(i, &id)| (id, id.run_with(derive_seed(seed, i as u64), timing)))
            .collect()
    } else if serial {
        run_all_serial(seed, timing)
    } else {
        run_all_parallel(seed, timing, ParConfig::default())
    };

    if reports.is_empty() {
        let slugs: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.slug()).collect();
        eprintln!(
            "no experiment slug starts with {:?}; known slugs: {}",
            filter.as_deref().unwrap_or(""),
            slugs.join(", ")
        );
        std::process::exit(2);
    }
    for (id, report) in reports {
        eprintln!("ran {} — {}", id.slug(), id.description());
        println!("{report}");
        println!("{}", "=".repeat(76));
    }
}
