//! Regenerates every paper-anchored experiment (E1-E12) and prints the
//! full reports — the repository's equivalent of rebuilding all of the
//! paper's figures in one command.
//!
//! Run with: `cargo run --release --example run_experiments [flags] [e5]`
//!
//! By default the twelve experiments run **concurrently** on the
//! deterministic pool (thread count from `M7_THREADS`, else all cores)
//! with cost-modeled E6 build times, so the output is byte-identical to
//! the serial run for the same seed. Flags:
//!
//! - `--serial` — run the experiments one at a time (same seeds, same
//!   output).
//! - `--measured` — time E6's roadmap builds on the host wall clock
//!   instead of the cost models (numbers vary run to run).
//! - `--threads N` — size the deterministic pool explicitly (overrides
//!   `M7_THREADS`; the reports do not change, only wall-clock time).
//! - `--cached` — route experiments with a memoized evaluation path
//!   (E9, E12) through their content-addressed caches. Reports stay
//!   byte-identical; the evaluations saved are printed to stderr.
//! - `--trace FILE` — enable tracing and write a chrome://tracing JSON
//!   trace to FILE (load it in Perfetto or `chrome://tracing`).
//! - `--metrics` — enable tracing and dump all metrics as `key=value`
//!   lines to stderr after the run.
//!
//! Reports always go to stdout and observability output to a file /
//! stderr, so the report stream stays byte-identical with tracing on.
//!
//! A non-flag argument selects experiments by slug prefix; unknown
//! `-`-prefixed flags and a second positional argument are errors. A
//! prefix that matches nothing is an error on both the serial and
//! parallel paths.

use magseven::par::ParConfig;
use magseven::suite::experiments::{
    run_selected_parallel, run_selected_parallel_cached, run_selected_serial,
    run_selected_serial_cached, select, Timing,
};
use magseven::trace::ObsFlags;

fn usage() -> ! {
    eprintln!(
        "usage: run_experiments [--serial] [--cached] [--measured] [--threads N] \
         [--trace FILE] [--metrics] [--stats-interval MS] [--journal DIR] [slug-prefix]"
    );
    std::process::exit(2);
}

fn main() {
    let mut serial = false;
    let mut cached = false;
    let mut timing = Timing::Modeled;
    let mut filter: Option<String> = None;
    let mut obs = ObsFlags::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => serial = true,
            "--cached" => cached = true,
            "--measured" => timing = Timing::Measured,
            s if obs.consume(s, &mut args) => {}
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            other => {
                if let Some(prev) = &filter {
                    eprintln!("unexpected extra argument {other:?} (filter already {prev:?})");
                    usage();
                }
                filter = Some(other.to_string());
            }
        }
    }
    obs.activate();
    let _pump = match magseven::serve::TelemetryPump::from_flags(&obs) {
        Ok(pump) => pump,
        Err(err) => {
            eprintln!("telemetry journal: {err}");
            std::process::exit(2);
        }
    };
    let seed = 42;
    let par = obs.threads.map_or_else(ParConfig::default, ParConfig::with_threads);

    // An experiment always runs on the seed of its paper-order position,
    // so a filtered run reproduces the corresponding full-run reports.
    let ids = match select(filter.as_deref()) {
        Ok(ids) => ids,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };

    // The cached and uncached paths print byte-identical reports; cached
    // additionally reports the objective evaluations it skipped.
    let triples =
        |rs: Vec<(_, _, u64)>| rs.into_iter().map(|(id, r, s)| (id, r, Some(s))).collect();
    let plain = |rs: Vec<(_, _)>| rs.into_iter().map(|(id, r)| (id, r, None)).collect();
    let reports = match (cached, serial) {
        (false, true) => run_selected_serial(&ids, seed, timing).map(plain),
        (false, false) => run_selected_parallel(&ids, seed, timing, par).map(plain),
        (true, true) => run_selected_serial_cached(&ids, seed, timing).map(triples),
        (true, false) => run_selected_parallel_cached(&ids, seed, timing, par).map(triples),
    };
    let reports: Vec<(_, _, Option<u64>)> = match reports {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };

    for (id, report, saved) in reports {
        eprintln!("ran {} — {}", id.slug(), id.description());
        if let Some(saved) = saved.filter(|&s| s > 0) {
            eprintln!("  {} saved {saved} objective evaluations via the result cache", id.slug());
        }
        println!("{report}");
        println!("{}", "=".repeat(76));
    }

    if !obs.finish() {
        std::process::exit(1);
    }
}
