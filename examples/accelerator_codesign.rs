//! Full accelerator co-design: a multi-objective search over generated
//! accelerator microarchitectures (PE count × clock × SRAM × DRAM),
//! scored on a real autonomy workload for latency, power, and silicon
//! area simultaneously.
//!
//! The printed Pareto front is the deliverable the paper's Challenge 2
//! asks for — a trade space, not a single TOPS number.
//!
//! Run with: `cargo run --release --example accelerator_codesign`

use magseven::arch::generator::AcceleratorConfig;
use magseven::dse::moga::nsga2;
use magseven::dse::space::{DesignSpace, Dimension};
use magseven::prelude::*;

fn config_from(values: &[f64]) -> AcceleratorConfig {
    AcceleratorConfig {
        pe_count: values[0] as usize,
        clock_ghz: values[1],
        sram_kib: values[2],
        dram_gbps: values[3],
        datapath_bits: 16,
        families: vec![KernelFamily::CollisionGeometry, KernelFamily::DenseLinearAlgebra],
    }
}

fn main() {
    let space = DesignSpace::new(vec![
        Dimension::new("pe_count", vec![64.0, 128.0, 256.0, 512.0, 1024.0]),
        Dimension::new("clock_ghz", vec![0.5, 0.8, 1.2, 1.6]),
        Dimension::new("sram_kib", vec![128.0, 512.0, 2048.0]),
        Dimension::new("dram_gbps", vec![25.0, 50.0, 100.0]),
    ]);
    println!(
        "co-design space: {} microarchitectures; objectives: latency, power, area\n",
        space.cardinality()
    );

    // The workload under design: the obstacle-avoidance inner loop.
    let workload = [KernelProfile::collision_batch(100_000, 128), KernelProfile::ekf_update(23)];
    let objective = |values: &[f64]| -> Vec<f64> {
        let config = config_from(values);
        let platform = config.generate().expect("space contains only valid configs");
        let cost = platform.estimate_pipeline(&workload);
        vec![cost.latency.as_millis(), platform.active_power().value(), platform.die_area().value()]
    };

    let front = nsga2(&space, &objective, 40, 32, 2024);
    println!(
        "{:>5} {:>6} {:>6} {:>5}   {:>11} {:>8} {:>9} {:>8}",
        "PEs", "GHz", "KiB", "GB/s", "latency ms", "power W", "area mm2", "cost $"
    );
    let mut rows = front;
    rows.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).expect("finite"));
    for m in &rows {
        let config = config_from(&m.values);
        println!(
            "{:>5} {:>6} {:>6} {:>5}   {:>11.3} {:>8.2} {:>9.1} {:>8.0}",
            m.values[0],
            m.values[1],
            m.values[2],
            m.values[3],
            m.objectives[0],
            m.objectives[1],
            m.objectives[2],
            config.unit_cost_usd()
        );
    }
    println!(
        "\n{} non-dominated designs: pick by the vehicle's power/mass budget (E5), \
         not by peak TOPS",
        rows.len()
    );
}
