//! Measured-vs-modeled roofline report: runs the m7-bench harness over
//! the four vectorized kernels and writes `BENCH_roofline.json`.
//!
//! Run with: `cargo run --release --example roofline_report [--quick] [--out PATH]`
//!
//! - `--quick` shrinks batch sizes and repetitions to CI smoke scale
//!   (sub-second end to end).
//! - `--out PATH` chooses the JSON output path (default
//!   `BENCH_roofline.json`).
//!
//! The example prints the text comparison (achieved GFLOP/s and GB/s
//! against the cpu-scalar and cpu-simd roofline ceilings), validates the
//! emitted JSON shape with the m7-trace JSON reader, and exits non-zero
//! if any lane kernel disagrees with its scalar reference or the JSON
//! fails validation — so CI can gate on it directly.
//!
//! For the deepest speedups build with the host ISA enabled:
//! `RUSTFLAGS="-C target-cpu=native" cargo run --release --example roofline_report`

use magseven::bench::roofline::{run_suite, validate_roofline_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_roofline.json".to_string());
    if let Some(unknown) = args.iter().find(|a| *a != "--quick" && *a != "--out" && !out.eq(*a)) {
        eprintln!("unknown argument {unknown:?}");
        eprintln!("usage: roofline_report [--quick] [--out PATH]");
        std::process::exit(2);
    }

    let suite = run_suite(quick);
    print!("{}", suite.text_report());

    if !suite.all_lanes_agree() {
        eprintln!("FAIL: a lane kernel diverged from its scalar reference");
        std::process::exit(1);
    }

    let json = suite.to_json();
    match validate_roofline_json(&json) {
        Ok(kernels) => println!("JSON shape valid ({kernels} kernel entries)"),
        Err(err) => {
            eprintln!("FAIL: emitted JSON failed validation: {err}");
            std::process::exit(1);
        }
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(err) => {
            eprintln!("failed to write {out}: {err}");
            std::process::exit(1);
        }
    }
}
