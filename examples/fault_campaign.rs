//! Runs a fault-injection campaign over the E11 vehicle and prints the
//! robustness comparison: nominal vs. fault-blind vs. degradation-aware.
//!
//! Run with:
//! `cargo run --release --example fault_campaign [--runs N] [--seed S] [--threads T]
//! [--trace FILE] [--metrics]`
//!
//! `--runs` sets the Monte-Carlo draws per design arm (default 32; CI
//! smoke-tests with a reduced N). The campaign fans runs across the
//! deterministic pool (`--threads`, else `M7_THREADS`, else all cores),
//! and the report is byte-identical at any thread count for the same
//! seed. `--trace FILE` writes a chrome://tracing JSON trace to FILE and
//! `--metrics` dumps `key=value` metrics to stderr; both leave stdout
//! untouched.

use magseven::par::ParConfig;
use magseven::suite::experiments::e11_robustness;
use magseven::trace::ObsFlags;

fn main() {
    let mut runs = 32usize;
    let mut seed = 42u64;
    let mut obs = ObsFlags::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--runs needs a positive integer");
                    std::process::exit(2);
                };
                runs = v;
            }
            "--seed" => {
                let v = args.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                };
                seed = v;
            }
            s if obs.consume(s, &mut args) => {}
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: fault_campaign [--runs N] [--seed S] \
                     [--threads T] [--trace FILE] [--metrics] [--stats-interval MS] \
                     [--journal DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    if runs == 0 {
        eprintln!("--runs must be at least 1");
        std::process::exit(2);
    }
    obs.activate();
    let _pump = match magseven::serve::TelemetryPump::from_flags(&obs) {
        Ok(pump) => pump,
        Err(err) => {
            eprintln!("telemetry journal: {err}");
            std::process::exit(2);
        }
    };
    let par = obs.threads.map_or_else(ParConfig::default, ParConfig::with_threads);

    let result = e11_robustness::run_with_runs_par(seed, runs, par);
    println!("{}", result.report());
    eprintln!(
        "aware {:.3} vs blind {:.3} mission success over {} shared fault draws",
        result.degradation_aware().success_rate(),
        result.fault_blind().success_rate(),
        runs
    );

    if !obs.finish() {
        std::process::exit(1);
    }
}
