//! Telemetry tail: a text dashboard over a live server or a recovered
//! flight journal.
//!
//! Run with:
//! - `cargo run --example trace_tail -- --journal DIR` — recover the
//!   crash-safe journal under DIR (baseline + acked delta prefix, torn
//!   tail truncated) and render the final pre-crash snapshot.
//! - `cargo run --example trace_tail -- --port P [--legacy]` — query a
//!   running `eval_service --serve` instance's live telemetry, over the
//!   framed binary protocol by default or the legacy text protocol with
//!   `--legacy`, and render the per-phase latency dashboard.
//!
//! Exit codes: 0 on success, 1 when the journal is empty or the server
//! unreachable, 2 on bad flags.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

use magseven::serve::recover_snapshot;
use magseven::serve::server::{EvalClient, FramedClient};
use magseven::serve::wire::Response;
use magseven::trace::{MetricClass, MetricValue, Snapshot};

fn usage() -> ! {
    eprintln!("usage: trace_tail --journal DIR | --port P [--legacy]");
    std::process::exit(2);
}

fn render_snapshot(snapshot: &Snapshot, records: usize) {
    println!(
        "snapshot seq {} at +{} ms ({} journal records, {} metrics)",
        snapshot.seq,
        snapshot.wall_ms,
        records,
        snapshot.metrics.entries.len()
    );
    for class in [MetricClass::Deterministic, MetricClass::Diagnostic] {
        let entries: Vec<_> =
            snapshot.metrics.entries.iter().filter(|e| e.class == class).collect();
        if entries.is_empty() {
            continue;
        }
        println!(
            "[{}]",
            if class == MetricClass::Deterministic { "deterministic" } else { "diagnostic" }
        );
        for entry in entries {
            match &entry.value {
                MetricValue::Counter(v) => println!("  {:<40} {v}", entry.name),
                MetricValue::Gauge(v) => println!("  {:<40} {v} (gauge)", entry.name),
                MetricValue::Histogram(h) => println!(
                    "  {:<40} n={} mean={:.1} p50<={} p95<={} p99<={}",
                    entry.name,
                    h.count,
                    h.mean(),
                    h.quantile_upper_bound(0.50),
                    h.quantile_upper_bound(0.95),
                    h.quantile_upper_bound(0.99),
                ),
            }
        }
    }
}

fn tail_journal(dir: &str) -> i32 {
    match recover_snapshot(dir) {
        Ok(Some((snapshot, records))) => {
            render_snapshot(&snapshot, records);
            0
        }
        Ok(None) => {
            eprintln!("journal {dir}: no baseline record (nothing was ever published)");
            1
        }
        Err(err) => {
            eprintln!("journal {dir}: {err}");
            1
        }
    }
}

fn tail_live(port: u16, legacy: bool) -> i32 {
    let addr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
    let result = if legacy {
        EvalClient::new(addr).telemetry()
    } else {
        FramedClient::connect(addr).and_then(|mut client| client.telemetry())
    };
    match result {
        Ok(Response::Telemetry(stats)) => {
            let protocol = if legacy { "legacy text" } else { "binary frames" };
            println!("live telemetry from 127.0.0.1:{port} over {protocol}");
            print!("{stats}");
            0
        }
        Ok(other) => {
            eprintln!("server answered {other:?} instead of telemetry");
            1
        }
        Err(err) => {
            eprintln!("cannot query 127.0.0.1:{port}: {err}");
            1
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut journal: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut legacy = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => match args.next() {
                Some(dir) => journal = Some(dir),
                None => usage(),
            },
            "--port" => match args.next().and_then(|v| v.parse::<u16>().ok()) {
                Some(p) => port = Some(p),
                None => {
                    eprintln!("--port needs a TCP port number");
                    std::process::exit(2);
                }
            },
            "--legacy" => legacy = true,
            _ => usage(),
        }
    }
    let code = match (journal, port) {
        (Some(dir), None) => tail_journal(&dir),
        (None, Some(p)) => tail_live(p, legacy),
        _ => usage(),
    };
    std::process::exit(code);
}
