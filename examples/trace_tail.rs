//! Telemetry tail: a text dashboard over a live server or a recovered
//! flight journal.
//!
//! Run with:
//! - `cargo run --example trace_tail -- --journal DIR` — recover the
//!   crash-safe journal under DIR (baseline + acked delta prefix, torn
//!   tail truncated) and render the final pre-crash snapshot.
//! - `cargo run --example trace_tail -- --port P [--legacy]` — query a
//!   running `eval_service --serve` instance's live telemetry, over the
//!   framed binary protocol by default or the legacy text protocol with
//!   `--legacy`, and render the per-phase latency dashboard.
//! - `cargo run --example trace_tail -- --flow` — run an instrumented
//!   multi-rate dataflow graph (`m7-flow`) and tail its `flow.*` node,
//!   queue-depth, and drop counters.
//!
//! Snapshots from any source group `flow.*` metrics into a dedicated
//! `[dataflow]` section so queue depths and drop counters read together.
//!
//! Exit codes: 0 on success, 1 when the journal is empty or the server
//! unreachable, 2 on bad flags.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

use magseven::serve::recover_snapshot;
use magseven::serve::server::{EvalClient, FramedClient};
use magseven::serve::wire::Response;
use magseven::trace::{MetricClass, MetricEntry, MetricValue, Snapshot};

fn usage() -> ! {
    eprintln!("usage: trace_tail --journal DIR | --port P [--legacy] | --flow");
    std::process::exit(2);
}

fn print_entry(entry: &MetricEntry) {
    match &entry.value {
        MetricValue::Counter(v) => println!("  {:<40} {v}", entry.name),
        MetricValue::Gauge(v) => println!("  {:<40} {v} (gauge)", entry.name),
        MetricValue::Histogram(h) => println!(
            "  {:<40} n={} mean={:.1} p50<={} p95<={} p99<={}",
            entry.name,
            h.count,
            h.mean(),
            h.quantile_upper_bound(0.50),
            h.quantile_upper_bound(0.95),
            h.quantile_upper_bound(0.99),
        ),
    }
}

fn render_entries(entries: &[MetricEntry]) {
    // Dataflow-graph metrics (node firings, queue depths, drop/loss
    // counters) read as one unit regardless of metric class.
    let (flow, rest): (Vec<_>, Vec<_>) = entries.iter().partition(|e| e.name.starts_with("flow."));
    if !flow.is_empty() {
        println!("[dataflow]");
        for entry in flow {
            print_entry(entry);
        }
    }
    for class in [MetricClass::Deterministic, MetricClass::Diagnostic] {
        let in_class: Vec<_> = rest.iter().filter(|e| e.class == class).collect();
        if in_class.is_empty() {
            continue;
        }
        println!(
            "[{}]",
            if class == MetricClass::Deterministic { "deterministic" } else { "diagnostic" }
        );
        for entry in in_class {
            print_entry(entry);
        }
    }
}

fn render_snapshot(snapshot: &Snapshot, records: usize) {
    println!(
        "snapshot seq {} at +{} ms ({} journal records, {} metrics)",
        snapshot.seq,
        snapshot.wall_ms,
        records,
        snapshot.metrics.entries.len()
    );
    render_entries(&snapshot.metrics.entries);
}

/// Runs an instrumented multi-rate graph — an overloaded fusion stage
/// fed by a 30 Hz camera (bounded drop-newest queue) and a 200 Hz IMU
/// (sampled edge), draining through a backpressured planner — and tails
/// its `flow.*` metrics.
fn tail_flow() -> i32 {
    use magseven::flow::{
        EdgeSpec, GraphBuilder, MessageType, QueuePolicy, ServerSpec, Service, SinkSpec, SourceSpec,
    };
    use magseven::par::ParConfig;
    use magseven::units::{Bytes, Hertz, Seconds};

    struct Frame;
    impl MessageType for Frame {
        const NAME: &'static str = "frame";
    }
    struct NavState;
    impl MessageType for NavState {
        const NAME: &'static str = "nav_state";
    }
    struct Track;
    impl MessageType for Track {
        const NAME: &'static str = "track";
    }
    struct Cmd;
    impl MessageType for Cmd {
        const NAME: &'static str = "cmd";
    }

    magseven::trace::enable();
    let mut g = GraphBuilder::new("tail");
    let build = (|| {
        let cam =
            g.source::<Frame>("camera", SourceSpec::new(Hertz::new(30.0), Bytes::new(65536.0)))?;
        let imu =
            g.source::<NavState>("imu", SourceSpec::new(Hertz::new(200.0), Bytes::new(24.0)))?;
        let fusion = g.fusion_server::<Frame, NavState, Track>(
            "fusion",
            ServerSpec::new(Service::fixed(Seconds::from_millis(45.0)))
                .deadline(Seconds::from_millis(50.0)),
        )?;
        let planner = g.server::<Track, Cmd>(
            "planner",
            ServerSpec::new(Service::fixed(Seconds::from_millis(10.0))),
        )?;
        let control =
            g.sink::<Cmd>("control", SinkSpec::new().deadline(Seconds::from_millis(120.0)))?;
        g.connect(cam, fusion, EdgeSpec::queue(2))?;
        g.connect(imu, fusion, EdgeSpec::sampled())?;
        g.connect(fusion, planner, EdgeSpec::queue(1).policy(QueuePolicy::Block))?;
        g.connect(planner, control, EdgeSpec::wire().latency(Seconds::from_millis(2.0)))?;
        Ok::<(), magseven::flow::FlowError>(())
    })();
    if let Err(err) = build {
        eprintln!("graph declaration rejected: {err}");
        return 1;
    }
    let report = match g.seal(ParConfig::default()).and_then(|graph| graph.run(Seconds::new(2.0))) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("graph run failed: {err}");
            return 1;
        }
    };
    println!(
        "ran graph `{}` for {} s: {} nodes, {} edges",
        report.name,
        report.duration.value(),
        report.nodes.len(),
        report.edges.len()
    );
    let snapshot = magseven::trace::snapshot();
    let flow_entries: Vec<MetricEntry> =
        snapshot.entries.into_iter().filter(|e| e.name.starts_with("flow.")).collect();
    render_entries(&flow_entries);
    0
}

fn tail_journal(dir: &str) -> i32 {
    match recover_snapshot(dir) {
        Ok(Some((snapshot, records))) => {
            render_snapshot(&snapshot, records);
            0
        }
        Ok(None) => {
            eprintln!("journal {dir}: no baseline record (nothing was ever published)");
            1
        }
        Err(err) => {
            eprintln!("journal {dir}: {err}");
            1
        }
    }
}

fn tail_live(port: u16, legacy: bool) -> i32 {
    let addr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
    let result = if legacy {
        EvalClient::new(addr).telemetry()
    } else {
        FramedClient::connect(addr).and_then(|mut client| client.telemetry())
    };
    match result {
        Ok(Response::Telemetry(stats)) => {
            let protocol = if legacy { "legacy text" } else { "binary frames" };
            println!("live telemetry from 127.0.0.1:{port} over {protocol}");
            print!("{stats}");
            0
        }
        Ok(other) => {
            eprintln!("server answered {other:?} instead of telemetry");
            1
        }
        Err(err) => {
            eprintln!("cannot query 127.0.0.1:{port}: {err}");
            1
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut journal: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut legacy = false;
    let mut flow = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => flow = true,
            "--journal" => match args.next() {
                Some(dir) => journal = Some(dir),
                None => usage(),
            },
            "--port" => match args.next().and_then(|v| v.parse::<u16>().ok()) {
                Some(p) => port = Some(p),
                None => {
                    eprintln!("--port needs a TCP port number");
                    std::process::exit(2);
                }
            },
            "--legacy" => legacy = true,
            _ => usage(),
        }
    }
    let code = match (journal, port, flow) {
        (Some(dir), None, false) => tail_journal(&dir),
        (None, Some(p), false) => tail_live(p, legacy),
        (None, None, true) => tail_flow(),
        _ => usage(),
    };
    std::process::exit(code);
}
