//! UAV compute co-design: the paper's "pump the brakes" scenario as an
//! interactive sweep.
//!
//! Flies the same survey mission on every compute tier and prints the
//! mission-level consequences of the compute choice — the U-shaped curve
//! that makes over-provisioning a real failure mode.
//!
//! Run with: `cargo run --example uav_codesign [distance_m]`

use magseven::prelude::*;

fn main() {
    let distance: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4000.0);
    let mission = MissionSpec::survey(distance);
    println!("survey mission: {distance} m, 20 Wh battery, 1.2 kg frame\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "tier", "speed m/s", "mass g", "time s", "J/m", "done"
    );
    let mut best: Option<(ComputeTier, f64)> = None;
    for tier in ComputeTier::ALL {
        let uav = Uav::new(UavConfig::default().with_tier(tier));
        let out = uav.fly(&mission, 5);
        println!(
            "{:<14} {:>10.1} {:>10.0} {:>10.0} {:>10.2} {:>8}",
            tier.to_string(),
            uav.safe_speed().value(),
            uav.all_up_mass(&mission).value(),
            out.time.value(),
            out.energy_per_meter(),
            out.completed
        );
        if out.completed {
            let epm = out.energy_per_meter();
            if best.is_none_or(|(_, b)| epm < b) {
                best = Some((tier, epm));
            }
        }
    }
    match best {
        Some((tier, epm)) => println!(
            "\nright-sized compute: {tier} at {epm:.2} J/m — more compute than this \
             only adds mass and power"
        ),
        None => println!("\nno tier completed the mission; shorten it or enlarge the battery"),
    }
}
