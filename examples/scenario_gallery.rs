//! Prints an ASCII gallery of every procedural scenario family at three
//! difficulty levels, with the computed difficulty score, obstacle
//! count, and environment profile for each world — a quick visual check
//! that the generators produce what their names promise.
//!
//! Run with: `cargo run --release --example scenario_gallery [--seed S]`
//!
//! `S` for `s`tart, `G` for `g`oal, `#` static obstacles, `o` moving
//! obstacles (drawn at their inflated footprint), `.` free space. The
//! gallery also demonstrates the scenario DSL by round-tripping one
//! world through `render_scenario`/`parse_scenario`.

use magseven::scen::{generate, parse_scenario, render_scenario, Family};

fn usage() -> ! {
    eprintln!("usage: scenario_gallery [--seed S]");
    std::process::exit(2);
}

fn main() {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                };
                seed = v;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    for family in Family::ALL {
        for level in [0.2, 0.5, 0.8] {
            let s = generate(family, level, seed);
            println!(
                "=== {family} @ level {level} — difficulty {:.3}, {} obstacles ===",
                s.difficulty(),
                s.obstacle_count()
            );
            println!(
                "gusts {:.2}, payload {:.0} g, sensor derate {:.2}",
                s.gust_std, s.payload_grams, s.sensor_derate
            );
            println!("{}", s.ascii_art(72, 24));
        }
    }

    // DSL round-trip demo: one world out to text and back, bit-exact.
    let sample = generate(Family::UrbanCanyon, 0.5, seed);
    let text = render_scenario(&sample);
    let back = parse_scenario(&text).expect("rendered scenario parses");
    assert_eq!(back, sample, "DSL round-trip must be exact");
    println!(
        "DSL round-trip OK: {} rendered to {} bytes and parsed back",
        sample.family,
        text.len()
    );
}
