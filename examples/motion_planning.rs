//! Motion planning showcase: RRT, RRT*, and PRM on a warehouse floor,
//! plus the scalar-vs-batched collision-checking wall-clock comparison
//! behind the paper's Challenge 5.
//!
//! Run with: `cargo run --release --example motion_planning`

use magseven::kernels::planning::{Prm, PrmConfig, RrtStar};
use magseven::prelude::*;
use std::time::Instant;

fn main() {
    // A warehouse: two shelving walls and scattered pallets.
    let mut world = CollisionWorld::new(40.0, 40.0);
    world.add_rect(Vec2::new(12.0, 0.0), Vec2::new(14.0, 30.0));
    world.add_rect(Vec2::new(26.0, 10.0), Vec2::new(28.0, 40.0));
    world.scatter_circles(40, 0.3, 1.2, 99);
    let start = Vec2::new(2.0, 2.0);
    let goal = Vec2::new(38.0, 38.0);

    // Single-query planners.
    for (name, path) in [
        ("RRT", Rrt::new(RrtConfig::default(), 1).plan(&world, start, goal)),
        ("RRT*", RrtStar::new(RrtConfig::default(), 1).plan(&world, start, goal)),
    ] {
        match path {
            Some(p) => {
                let s = p.shortcut(&world);
                println!(
                    "{name:<5} {:>6.1} m raw, {:>6.1} m smoothed, {} waypoints",
                    p.length(),
                    s.length(),
                    p.waypoints().len()
                );
            }
            None => println!("{name:<5} found no path"),
        }
    }

    // Multi-query: build a roadmap once, answer many queries.
    let config = PrmConfig { samples: 1200, connection_radius: 3.0, max_neighbors: 12 };
    let t = Instant::now();
    let prm = Prm::build(&world, config, 1);
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _prm_batched = Prm::build_batched(&world, config, 1);
    let batched_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nPRM: {} vertices, {} edges, {} edge checks",
        prm.len(),
        prm.edge_count(),
        prm.edge_checks()
    );
    println!(
        "roadmap construction: scalar {scalar_ms:.1} ms vs batched {batched_ms:.1} ms \
         ({:.1}x from layout + batching alone)",
        scalar_ms / batched_ms
    );

    let queries = [
        (Vec2::new(2.0, 38.0), Vec2::new(38.0, 2.0)),
        (Vec2::new(20.0, 2.0), Vec2::new(20.0, 38.0)),
        (start, goal),
    ];
    println!("\nroadmap queries:");
    for (a, b) in queries {
        match prm.query(&world, a, b) {
            Some(p) => println!(
                "  ({:.0},{:.0}) -> ({:.0},{:.0}): {:.1} m",
                a.x,
                a.y,
                b.x,
                b.y,
                p.length()
            ),
            None => println!("  ({:.0},{:.0}) -> ({:.0},{:.0}): unreachable", a.x, a.y, b.x, b.y),
        }
    }
}
