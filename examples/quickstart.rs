//! Quickstart: the five-minute tour of `magseven`.
//!
//! Estimates a kernel on several platforms, plans a path, flies a short
//! UAV mission, and prices the accelerator's carbon — the four levels the
//! paper says a designer must reason across.
//!
//! Run with: `cargo run --example quickstart`

use magseven::prelude::*;

fn main() {
    // 1. Kernel level: where does a batched collision workload land on
    //    each platform class?
    let kernel = KernelProfile::collision_batch(50_000, 128);
    println!("kernel: {} ({})", kernel.name(), kernel.ops());
    for kind in [
        PlatformKind::CpuScalar,
        PlatformKind::CpuSimd,
        PlatformKind::Gpu,
        PlatformKind::Fpga,
        PlatformKind::Asic,
    ] {
        let platform = Platform::preset(kind);
        let cost = platform.estimate(&kernel);
        println!(
            "  {:<12} {:>9.3} ms  {:>8.3} mJ  ({})",
            platform.name(),
            cost.latency.as_millis(),
            cost.energy.value() * 1e3,
            cost.bound
        );
    }

    // 2. Algorithm level: plan a real path through a cluttered workspace.
    let mut world = CollisionWorld::new(20.0, 20.0);
    world.scatter_circles(15, 0.5, 1.5, 7);
    let planner = Rrt::new(RrtConfig::default(), 42);
    match planner.plan(&world, Vec2::new(0.5, 0.5), Vec2::new(19.5, 19.5)) {
        Some(path) => {
            let smooth = path.shortcut(&world);
            println!(
                "\nplanned {:.1} m path ({} waypoints), {:.1} m after smoothing",
                path.length(),
                path.waypoints().len(),
                smooth.length()
            );
        }
        None => println!("\nno path found in this world"),
    }

    // 3. System level: fly the mission and read mission metrics, not TOPS.
    let uav = Uav::new(UavConfig::default().with_tier(ComputeTier::EmbeddedGpu));
    let outcome = uav.fly(&MissionSpec::survey(1000.0), 3);
    println!(
        "\nmission: completed={} time={:.0} s energy={:.1} kJ ({:.1} J/m)",
        outcome.completed,
        outcome.time.value(),
        outcome.energy.value() / 1e3,
        outcome.energy_per_meter()
    );

    // 4. Global level: what does the silicon cost the planet?
    let die = DieSpec::new(SquareMillimeters::new(100.0), 7.0);
    println!(
        "\n100 mm2 7 nm accelerator: {:.1} kgCO2e embodied (yield {:.2})",
        die.embodied_carbon().value(),
        die.yield_fraction()
    );
}
