//! Design-space exploration over the full UAV system with mission-level
//! objectives — the paper's "ML for system design" opportunity.
//!
//! Compares random, annealing, genetic, and surrogate-guided search at a
//! fixed evaluation budget against the exhaustively known optimum, then
//! prints the Pareto front of energy-vs-time across the whole space.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use magseven::prelude::*;
use magseven::suite::experiments::e9_dse;

fn main() {
    let space = e9_dse::uav_design_space();
    println!(
        "design space: {} points across {} dimensions",
        space.cardinality(),
        space.dimensions().len()
    );

    // Scalar search: minimize mission energy per meter.
    let seed = 11;
    let objective = move |v: &[f64]| e9_dse::mission_cost(v, seed);
    let optimum = Explorer::Exhaustive
        .run(&space, &objective, SearchBudget::new(space.cardinality()), seed)
        .best_cost;
    println!("true optimum (exhaustive): {optimum:.2} J/m\n");

    let budget = SearchBudget::new(40);
    println!("{:<12} {:>12} {:>22}", "strategy", "best J/m", "evals to within 10%");
    for strategy in
        [Explorer::Random, Explorer::annealing(), Explorer::genetic(), Explorer::surrogate()]
    {
        let result = strategy.run(&space, &objective, budget, seed);
        let within = result
            .trace
            .iter()
            .position(|&c| c <= optimum * 1.10)
            .map_or("never".to_string(), |i| (i + 1).to_string());
        println!("{:<12} {:>12.2} {:>22}", strategy.name(), result.best_cost, within);
    }

    // Multi-objective view: energy vs mission time across the whole space.
    let mut metrics = Vec::new();
    let mut labels = Vec::new();
    for point in space.enumerate() {
        let values = space.values(&point);
        let tier = magseven::sim::uav::ComputeTier::ALL[values[0] as usize];
        let config = magseven::sim::uav::UavConfig {
            battery: magseven::units::Joules::from_watt_hours(values[1]),
            rotor_disk_area: values[2],
            sensor_range: magseven::units::Meters::new(values[3]),
            ..Default::default()
        };
        let config = magseven::sim::uav::UavConfig { tier, ..config };
        let out = Uav::new(config).fly(&MissionSpec::survey(4000.0), seed);
        if out.completed {
            metrics.push(vec![out.energy_per_meter(), out.time.value()]);
            labels.push(values);
        }
    }
    let front = pareto_front(&metrics);
    println!("\nPareto front (energy/m vs mission time) — {} designs:", front.len());
    for &i in &front {
        println!(
            "  tier={} battery={} Wh rotor={} m2 sensor={} m  ->  {:.2} J/m, {:.0} s",
            labels[i][0], labels[i][1], labels[i][2], labels[i][3], metrics[i][0], metrics[i][1]
        );
    }
}
