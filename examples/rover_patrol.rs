//! Ground-rover patrol with the real motion planner in the loop: every
//! leg is planned by RRT, tracked by pure pursuit, and both the waiting
//! time and the energy of planning are charged to the mission.
//!
//! Run with: `cargo run --release --example rover_patrol`

use magseven::kernels::geometry::Vec2;
use magseven::kernels::planning::CollisionWorld;
use magseven::sim::rover::{Rover, RoverConfig};
use magseven::sim::uav::ComputeTier;

fn main() {
    // A farm yard: two long barns and scattered equipment.
    let mut world = CollisionWorld::new(50.0, 50.0);
    world.add_rect(Vec2::new(10.0, 10.0), Vec2::new(35.0, 14.0));
    world.add_rect(Vec2::new(15.0, 30.0), Vec2::new(40.0, 34.0));
    world.scatter_circles(25, 0.4, 1.3, 2024);

    let goals =
        [Vec2::new(45.0, 5.0), Vec2::new(45.0, 45.0), Vec2::new(5.0, 45.0), Vec2::new(5.0, 22.0)];
    println!("patrol: 4 goals across a 50x50 m yard\n");
    println!(
        "{:<14} {:>7} {:>9} {:>11} {:>10} {:>9}",
        "tier", "goals", "time s", "plan-wait %", "energy kJ", "dist m"
    );
    for tier in ComputeTier::ALL {
        let rover = Rover::new(RoverConfig { tier, ..RoverConfig::default() });
        let out = rover.patrol(&world, Vec2::new(2.0, 2.0), &goals, 7);
        println!(
            "{:<14} {:>5}/4 {:>9.0} {:>11.1} {:>10.1} {:>9.0}",
            tier.to_string(),
            out.goals_reached,
            out.time.value(),
            out.planning_fraction() * 100.0,
            out.energy.value() / 1e3,
            out.distance.value()
        );
    }
    println!(
        "\nweak compute stalls the rover at every leg (plan-wait %); strong compute \
         wastes battery — the ground-vehicle version of the E5 trade-off"
    );
}
