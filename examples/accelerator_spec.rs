//! The agile-design-tools opportunity (§3.1): describe an accelerator in
//! a plain-text spec a domain expert can write, compile it to a platform
//! model, and immediately evaluate it at every level — kernel latency,
//! DVFS trade space, sensor keep-up, and embodied carbon.
//!
//! Run with: `cargo run --example accelerator_spec`

use magseven::arch::dvfs::ladder_sweep;
use magseven::arch::spec::parse_platform;
use magseven::prelude::*;

const SPEC: &str = "\
# written by a roboticist, not an architect
name           = pallet-bot-accel
kind           = asic
peak_tops      = 1.5
bandwidth_gbps = 80
serial_gops    = 1.2
dispatch_us    = 4
active_w       = 4.5
idle_w         = 0.4
mass_g         = 35
area_mm2       = 64
cost_usd       = 28
specialize     = families collision-geometry dense-linear-algebra
fallback       = 0.03
";

fn main() {
    let platform = match parse_platform(SPEC) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("spec error: {e}");
            std::process::exit(1);
        }
    };
    println!("compiled spec into platform `{}` ({})\n", platform.name(), platform.kind());

    // Kernel-level check against the workloads it claims to serve.
    for kernel in [
        KernelProfile::collision_batch(40_000, 96),
        KernelProfile::gemv(512, 512),
        KernelProfile::correlation_scan(9261, 90), // off-family
    ] {
        let cost = platform.estimate(&kernel);
        println!(
            "  {:<24} {:>9.3} ms  match {:.2}  ({})",
            kernel.name(),
            cost.latency.as_millis(),
            platform.match_factor(&kernel),
            cost.bound
        );
    }

    // DVFS trade space.
    println!("\nDVFS ladder on the collision batch:");
    let kernel = KernelProfile::collision_batch(40_000, 96);
    for (point, scaled) in ladder_sweep(&platform) {
        let cost = scaled.estimate(&kernel);
        println!(
            "  f={:<5.2} V={:<5.2}  {:>8.3} ms  {:>8.3} mJ",
            point.frequency_scale,
            point.voltage_scale,
            cost.latency.as_millis(),
            cost.energy.value() * 1e3
        );
    }

    // Global check: what does shipping it cost?
    let die = DieSpec::new(platform.die_area(), 7.0);
    println!(
        "\nembodied carbon at 7 nm: {:.2} kgCO2e per good die (yield {:.2})",
        die.embodied_carbon().value(),
        die.yield_fraction()
    );
}
