//! Traces experiment E7 end-to-end and prints a per-stage latency
//! breakdown — a worked example of the `m7-trace` observability layer.
//!
//! Run with: `cargo run --release --example trace_report [out.json]`
//!
//! The example enables tracing, runs E7 (the Amdahl forest-vs-trees
//! sweep) plus a closed-loop simulation of its lean and heavy-tax
//! pipelines, then prints:
//!
//! 1. the E7 report itself (byte-identical to an untraced run),
//! 2. a per-stage pipeline latency table read back from the
//!    `sim.pipeline.*_ns` histograms,
//! 3. a metrics summary (spans, counters) from the registry, and
//! 4. writes a chrome://tracing JSON trace to `out.json` (default
//!    `trace_report.json`) — open it in Perfetto or `chrome://tracing`.

use magseven::suite::experiments::e7_endtoend;
use magseven::suite::experiments::{ExperimentId, Timing};
use magseven::units::Seconds;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "trace_report.json".to_string());
    magseven::trace::enable();

    // 1. The experiment proper — the suite records a `e7_endtoend` span
    // and the pipeline stages record their modeled latencies.
    let report = ExperimentId::E7EndToEnd.run_with(42, Timing::Modeled);
    println!("{report}");
    println!("{}", "=".repeat(76));

    // 2. Closed-loop runs of the same two pipelines, for queueing
    // behaviour on top of the per-frame budget.
    let horizon = Seconds::new(2.0);
    let lean = e7_endtoend::lean_pipeline().simulate(horizon);
    let taxed = e7_endtoend::taxed_pipeline().simulate(horizon);
    println!("closed-loop, {horizon:?} horizon:");
    for (name, stats) in [("lean", &lean), ("heavy-tax", &taxed)] {
        println!(
            "  {name:<9} {} in / {} processed / {} dropped, mean latency {:.3} ms",
            stats.frames_in,
            stats.frames_processed,
            stats.frames_dropped,
            stats.mean_latency.value() * 1e3,
        );
    }
    println!("{}", "=".repeat(76));

    // 3. Per-stage latency breakdown, read back from the registry's
    // histograms (nanosecond buckets; mean is exact, p99 a bucket upper
    // bound).
    let snap = magseven::trace::snapshot();
    println!("per-stage pipeline latency (from sim.pipeline.*_ns histograms):");
    println!("  {:<10} {:>8} {:>14} {:>14}", "stage", "samples", "mean (ms)", "p99 <= (ms)");
    for stage in ["ingest", "compute", "actuate"] {
        let name = format!("sim.pipeline.{stage}_ns");
        let Some(h) = snap.histogram(&name) else {
            println!("  {stage:<10} (no samples)");
            continue;
        };
        println!(
            "  {:<10} {:>8} {:>14.4} {:>14.4}",
            stage,
            h.count,
            h.mean() / 1e6,
            h.quantile_upper_bound(0.99) as f64 / 1e6,
        );
    }
    println!("{}", "=".repeat(76));

    // 4. The full metrics report and the chrome trace.
    print!("{}", magseven::trace::text_report());
    match std::fs::write(&out, magseven::trace::chrome_trace_json()) {
        Ok(()) => println!("wrote chrome://tracing JSON to {out} — open in Perfetto"),
        Err(err) => {
            eprintln!("failed to write {out}: {err}");
            std::process::exit(1);
        }
    }
}
