//! M7Bench across every platform preset, plus the framework's own
//! modeling ablations (DVFS, contention on/off, sustained thermal).
//!
//! Run with: `cargo run --release --example benchmark_suite`

use magseven::prelude::*;
use magseven::suite::ablations;
use magseven::suite::workloads::{m7bench, suite_summary};

fn main() {
    let suite = m7bench();
    for kind in [
        PlatformKind::CpuScalar,
        PlatformKind::CpuSimd,
        PlatformKind::Gpu,
        PlatformKind::Fpga,
        PlatformKind::Asic,
    ] {
        println!("{}", suite_summary(&Platform::preset(kind), &suite));
    }

    println!("{}", ablations::dvfs_pareto().report());
    println!("{}", ablations::contention_onoff().report());
    println!("{}", ablations::thermal_sustained().report());

    // The taxonomy ties it together.
    println!("# Challenge coverage\n");
    for challenge in Challenge::ALL {
        let evidence: Vec<String> =
            challenge.experiments().iter().map(|e| e.slug().to_string()).collect();
        println!("- {challenge}\n  evidence: {}", evidence.join(", "));
    }
}
