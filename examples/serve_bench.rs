//! Serve-latency benchmark: drives an in-process evaluation server over
//! the framed protocol and writes `BENCH_serve_latency.json`.
//!
//! Run with: `cargo run --release --example serve_bench [--out PATH] [--check [BASELINE]] [--ratio R]`
//!
//! The workload is fixed — 512 framed eval requests over 64 unique
//! designs, seed 42 — so the `deterministic` section of the document
//! (request/hit/shed counts) is identical on every host, while the
//! `diagnostic` section carries wall-clock latency: client-observed
//! round-trip quantiles plus the server's own per-phase p99s pulled
//! live over the new `telemetry` request.
//!
//! - `--out PATH` chooses the output path (default
//!   `BENCH_serve_latency.json`).
//! - `--check [BASELINE]` additionally diffs the fresh measurement
//!   against BASELINE (default: the `--out` path as committed) with the
//!   regression sentinel and exits non-zero on regression —
//!   deterministic counts must match exactly, latencies may wander
//!   within the ratio.
//! - `--ratio R` overrides the sentinel's diagnostic tolerance.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use magseven::bench::sentinel::{compare_json, SentinelConfig, DEFAULT_DIAG_RATIO};
use magseven::par::ParConfig;
use magseven::serve::key::EvalRequest;
use magseven::serve::wire::Response;
use magseven::serve::{EvalServer, FramedClient, ServeConfig};
use magseven::trace::Histogram;

const SEED: u64 = 42;
const REQUESTS: usize = 512;
const UNIQUE: usize = 64;

fn evaluator(request: &EvalRequest) -> Result<f64, String> {
    // A small but non-trivial deterministic cost: a short logistic-map
    // orbit keyed by the design values, so misses do measurable work.
    let mut x = 0.25 + request.values.iter().sum::<f64>().fract().abs() * 0.5;
    for _ in 0..256 {
        x = 3.7 * x * (1.0 - x);
    }
    Ok(x + request.seed as f64)
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut out = "BENCH_serve_latency.json".to_string();
    let mut check: Option<Option<String>> = None;
    let mut ratio = DEFAULT_DIAG_RATIO;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => die_usage(),
            },
            "--check" => {
                // Optional value: absent or next-is-a-flag means "the
                // committed --out file".
                let explicit = args.peek().filter(|a| !a.starts_with("--")).cloned();
                if explicit.is_some() {
                    args.next();
                }
                check = Some(explicit);
            }
            "--ratio" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(value) if value >= 0.0 => ratio = value,
                _ => {
                    eprintln!("--ratio needs a non-negative number");
                    std::process::exit(2);
                }
            },
            _ => die_usage(),
        }
    }

    let baseline = check.as_ref().map(|explicit| {
        let path = explicit.clone().unwrap_or_else(|| out.clone());
        match std::fs::read_to_string(&path) {
            Ok(text) => (path, text),
            Err(err) => {
                eprintln!("cannot read baseline {path}: {err}");
                std::process::exit(2);
            }
        }
    });

    let server = EvalServer::spawn(
        ServeConfig { par: ParConfig::serial(), ..ServeConfig::default() },
        Arc::new(evaluator),
    )
    .expect("bind loopback server");
    let mut client = FramedClient::connect(server.addr()).expect("connect framed client");

    let roundtrip = Histogram::new();
    for i in 0..REQUESTS {
        let design = i % UNIQUE;
        let request = EvalRequest::new("serve-bench", vec![design as f64 * 0.125], SEED);
        let started = Instant::now();
        match client.eval(&request).expect("eval roundtrip") {
            Response::Cost { .. } => {}
            other => panic!("unexpected response: {other:?}"),
        }
        roundtrip.record(started.elapsed().as_nanos() as u64);
    }

    let stats = match client.telemetry().expect("telemetry roundtrip") {
        Response::Telemetry(stats) => stats,
        other => panic!("unexpected telemetry response: {other:?}"),
    };
    server.shutdown();

    let hits = stats.hot_hits + stats.disk_hits;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"m7-bench/serve-latency/v1\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"deterministic\": {{");
    let _ = writeln!(json, "    \"requests\": {},", stats.requests);
    let _ = writeln!(json, "    \"unique_designs\": {UNIQUE},");
    let _ = writeln!(json, "    \"cache_hits\": {hits},");
    let _ = writeln!(json, "    \"shed\": {},", stats.shed);
    let _ = writeln!(json, "    \"reaped\": {}", stats.reaped);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"diagnostic\": {{");
    for (label, p) in [(50u32, 0.50f64), (95, 0.95), (99, 0.99)] {
        let _ =
            writeln!(json, "    \"roundtrip_p{label}_ns\": {},", roundtrip.quantile_upper_bound(p));
    }
    let _ = writeln!(json, "    \"parse_p99_ns\": {},", stats.parse.p99_ns);
    let _ = writeln!(json, "    \"dispatch_p99_ns\": {},", stats.dispatch.p99_ns);
    let _ = writeln!(json, "    \"write_p99_ns\": {}", stats.write.p99_ns);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    magseven::trace::parse_json(&json).expect("emitted JSON must parse");
    println!(
        "serve bench: {} requests ({} unique), {} cache hits, roundtrip p50 <= {} ns, p99 <= {} ns",
        stats.requests,
        UNIQUE,
        hits,
        roundtrip.quantile_upper_bound(0.50),
        roundtrip.quantile_upper_bound(0.99),
    );

    if let Some((path, baseline_text)) = baseline {
        let report = compare_json(&baseline_text, &json, &SentinelConfig { diag_ratio: ratio })
            .unwrap_or_else(|err| {
                eprintln!("sentinel: {err}");
                std::process::exit(2);
            });
        print!("{}", report.render());
        if !report.passed() {
            eprintln!("FAIL: fresh measurement regressed against {path}");
            std::process::exit(1);
        }
    }

    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(err) => {
            eprintln!("failed to write {out}: {err}");
            std::process::exit(1);
        }
    }
}

fn die_usage() -> ! {
    eprintln!("usage: serve_bench [--out PATH] [--check [BASELINE]] [--ratio R]");
    std::process::exit(2);
}
