//! Fuzz-style tests for the binary frame decoder: adversarial and
//! random byte streams must error cleanly — never panic, never
//! over-allocate, never mis-frame — and valid streams must decode
//! identically under any chunking.
//!
//! The decoder's safety contract:
//!
//! - every header byte is validated as it arrives, so garbage fails
//!   fast and an announced length is bounds-checked **before** any
//!   payload buffer is sized to it;
//! - a strict prefix of a valid frame is always `Ok(None)` (need more
//!   bytes), never an error;
//! - the first error poisons the decoder — the stream has no
//!   recoverable framing — and repeats verbatim forever after.

use magseven::serve::frame::{
    encode_request, encode_response, FrameDecoder, FrameError, HEADER_BYTES, MAGIC, MAX_PAYLOAD,
    VERSION,
};
use magseven::serve::key::EvalRequest;
use magseven::serve::wire::{Request, Response};
use proptest::prelude::*;

/// Drains everything the decoder will currently give, counting frames,
/// and returns the first error (if any). Panics here are test failures.
fn drain_requests(dec: &mut FrameDecoder) -> (usize, Option<FrameError>) {
    let mut frames = 0;
    loop {
        match dec.next_request() {
            Ok(Some(_)) => frames += 1,
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

/// A small deterministic pool of workloads for generated requests.
fn workload(pick: usize) -> &'static str {
    ["uav-mission", "square", "w", "a-rather-long-workload-name-for-framing"][pick % 4]
}

proptest! {
    /// Arbitrary byte soup, fed in arbitrary chunks: the decoder never
    /// panics, never buffers more than it was fed, and once it errors
    /// the error is sticky and verbatim-stable.
    #[test]
    fn random_bytes_never_panic_and_errors_are_sticky(
        bytes in prop::collection::vec(0u8..=255, 0..600),
        splits in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut dec = FrameDecoder::new();
        let mut fed = 0usize;
        let mut first_err: Option<FrameError> = None;
        let mut cursor = 0usize;
        for &n in &splits {
            if cursor >= bytes.len() {
                break;
            }
            let end = (cursor + n).min(bytes.len());
            dec.feed(&bytes[cursor..end]);
            fed += end - cursor;
            cursor = end;
            prop_assert!(dec.pending_bytes() <= fed, "decoder cannot hold more than it was fed");
            let (_, err) = drain_requests(&mut dec);
            if let Some(e) = err {
                first_err = Some(e);
                break;
            }
        }
        if let Some(e) = first_err {
            // Poisoned: same error, forever, even across more feeds.
            for _ in 0..3 {
                dec.feed(&[MAGIC, VERSION]);
                prop_assert_eq!(dec.next_request().unwrap_err(), e.clone());
            }
        }
    }

    /// A generated request round-trips bit-exactly through
    /// encode → any-chunking → decode → re-encode, for any split
    /// pattern (NaN costs and negative zeros included via raw bits).
    #[test]
    fn valid_frames_survive_any_chunking(
        pick in 0usize..4,
        value_bits in prop::collection::vec(0u64..=u64::MAX, 0..6),
        seed in 0u64..=u64::MAX,
        splits in prop::collection::vec(1usize..16, 1..64),
    ) {
        let values: Vec<f64> = value_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let request = Request::Eval(EvalRequest::new(workload(pick), values, seed));
        let encoded = encode_request(&request);

        let mut dec = FrameDecoder::new();
        let mut cursor = 0usize;
        let mut decoded = None;
        for &n in splits.iter().cycle() {
            if cursor >= encoded.len() {
                break;
            }
            let end = (cursor + n).min(encoded.len());
            dec.feed(&encoded[cursor..end]);
            cursor = end;
            match dec.next_request() {
                Ok(Some(req)) => {
                    prop_assert_eq!(cursor, encoded.len(), "frame completed early");
                    decoded = Some(req);
                }
                Ok(None) => prop_assert!(cursor < encoded.len(), "full frame must decode"),
                Err(e) => prop_assert!(false, "valid frame errored: {}", e),
            }
        }
        let decoded = decoded.expect("frame decodes once fully fed");
        prop_assert_eq!(encode_request(&decoded), encoded, "re-encode must be bit-identical");
    }

    /// Every strict prefix of a valid frame is `Ok(None)` — truncation
    /// at any boundary asks for more bytes, it never errors and never
    /// yields a frame.
    #[test]
    fn every_truncation_boundary_is_incomplete_not_an_error(
        pick in 0usize..4,
        nvalues in 0usize..5,
        seed in 0u64..1 << 48,
    ) {
        let values: Vec<f64> = (0..nvalues).map(|i| i as f64 * 1.5 - 2.0).collect();
        let request = Request::Eval(EvalRequest::new(workload(pick), values, seed));
        let encoded = encode_request(&request);
        for cut in 0..encoded.len() {
            let mut dec = FrameDecoder::new();
            dec.feed(&encoded[..cut]);
            match dec.next_request() {
                Ok(None) => {}
                Ok(Some(_)) => prop_assert!(false, "decoded from a {cut}-byte prefix"),
                Err(e) => prop_assert!(false, "prefix of {} bytes errored: {}", cut, e),
            }
            // The remainder completes the frame.
            dec.feed(&encoded[cut..]);
            prop_assert!(dec.next_request().unwrap().is_some(), "cut at {}", cut);
            prop_assert_eq!(dec.pending_bytes(), 0);
        }
    }

    /// Mutating any single header byte of a valid frame never panics:
    /// the decoder returns an error or (for a kind that remains valid)
    /// a cleanly decoded message — and never both mis-frames and
    /// continues.
    #[test]
    fn single_byte_header_mutations_fail_cleanly(
        byte in 0usize..8,
        xor in 1u8..=255,
        seed in 0u64..1 << 48,
    ) {
        let request = Request::Eval(EvalRequest::new("uav-mission", vec![1.0, 2.0], seed));
        let mut encoded = encode_request(&request);
        encoded[byte] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        match dec.next_request() {
            Err(_) => {
                // Poisoned from here on.
                prop_assert!(dec.next_request().is_err());
            }
            Ok(_) => {
                // A length mutation can leave a well-formed-but-short
                // stream (Ok(None)) or re-frame into a smaller valid
                // message; both are clean outcomes, not mis-frames.
            }
        }
    }

    /// Responses fuzz the same way requests do: encode → chunk →
    /// decode → re-encode is bit-identical (NaN costs included).
    #[test]
    fn response_frames_survive_any_chunking(
        cost_bits in 0u64..=u64::MAX,
        cached in prop::bool::ANY,
        split in 1usize..16,
    ) {
        let response = Response::Cost { cost: f64::from_bits(cost_bits), cached };
        let encoded = encode_response(&response);
        let mut dec = FrameDecoder::new();
        for chunk in encoded.chunks(split) {
            dec.feed(chunk);
        }
        let decoded = dec.next_response().unwrap().expect("complete response");
        prop_assert_eq!(encode_response(&decoded), encoded);
    }
}

/// Hand-picked adversarial corpus: each case must error (or stay
/// incomplete) without panicking, and an oversized announced length
/// must be rejected from the 8 header bytes alone — the decoder never
/// sizes a buffer to an attacker-chosen length.
#[test]
fn adversarial_corpus_errors_cleanly() {
    // (name, bytes, expect_error)
    let max = u32::try_from(MAX_PAYLOAD).unwrap();
    let corpus: Vec<(&str, Vec<u8>, bool)> = vec![
        ("empty", vec![], false),
        ("wrong magic", vec![0x00], true),
        ("text protocol leaks in", b"op = eval\n\n".to_vec(), true),
        ("magic only", vec![MAGIC], false),
        ("bad version", vec![MAGIC, 0x7f], true),
        ("bad reserved", vec![MAGIC, VERSION, 0x01, 0xff], true),
        ("unknown kind", vec![MAGIC, VERSION, 0x42, 0, 0, 0, 0, 0], true),
        (
            "huge length",
            {
                let mut v = vec![MAGIC, VERSION, 0x01, 0];
                v.extend_from_slice(&u32::MAX.to_le_bytes());
                v
            },
            true,
        ),
        (
            "length just over the cap",
            {
                let mut v = vec![MAGIC, VERSION, 0x01, 0];
                v.extend_from_slice(&(max + 1).to_le_bytes());
                v
            },
            true,
        ),
        (
            "length at the cap, body missing",
            {
                let mut v = vec![MAGIC, VERSION, 0x01, 0];
                v.extend_from_slice(&max.to_le_bytes());
                v
            },
            false,
        ), // incomplete, not an error
        ("response kind on the request path", encode_response(&Response::Busy), true),
        (
            "eval with truncated payload",
            {
                let mut v = encode_request(&Request::Eval(EvalRequest::new("w", vec![1.0], 7)));
                let shorter = u32::try_from(v.len() - HEADER_BYTES - 4).unwrap();
                v[4..8].copy_from_slice(&shorter.to_le_bytes());
                v.truncate(HEADER_BYTES + shorter as usize);
                v
            },
            true,
        ),
        (
            "eval with trailing garbage",
            {
                let mut v = encode_request(&Request::Stats);
                let longer = 4u32;
                v[4..8].copy_from_slice(&longer.to_le_bytes());
                v.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
                v
            },
            true,
        ),
        ("all magic bytes", vec![MAGIC; 64], true), // byte 2 (= MAGIC) is no valid version
    ];
    for (name, bytes, expect_error) in corpus {
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let result = dec.next_request();
        if expect_error {
            assert!(result.is_err(), "{name}: wanted an error, got {result:?}");
        } else {
            assert_eq!(
                result.as_ref().ok().map(Option::as_ref),
                Some(None),
                "{name}: wanted incomplete, got {result:?}"
            );
        }
        // Over-allocation guard: whatever happened, the decoder holds
        // only the bytes it was fed — an announced length is never
        // turned into capacity.
        assert!(dec.pending_bytes() <= bytes.len(), "{name}: decoder grew past its input");
    }
}

/// A stream of many back-to-back frames decodes completely and in
/// order, for every chunk size from 1 byte up.
#[test]
fn multi_frame_streams_decode_in_order_at_every_chunk_size() {
    let requests: Vec<Request> = (0..5)
        .map(|i| {
            Request::Eval(EvalRequest::new(workload(i), vec![i as f64, -1.0 / i as f64], i as u64))
        })
        .chain([Request::Stats, Request::Shutdown])
        .collect();
    let stream: Vec<u8> = requests.iter().flat_map(encode_request).collect();
    for chunk in 1..=stream.len() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(req) = dec.next_request().unwrap() {
                got.push(req);
            }
        }
        assert_eq!(got.len(), requests.len(), "chunk size {chunk}");
        for (g, w) in got.iter().zip(&requests) {
            assert_eq!(encode_request(g), encode_request(w), "chunk size {chunk}");
        }
        assert_eq!(dec.pending_bytes(), 0, "chunk size {chunk}");
    }
}
