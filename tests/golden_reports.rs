//! Golden-report regression suite: the seed-42, cost-modeled report text
//! of every experiment (E1–E12) is pinned under `tests/golden/`, one file
//! per slug. Any drift in a model, a kernel, the fault layer, or the
//! report renderer fails the diff with a first-divergence pointer.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! The snapshots are taken with [`Timing::Modeled`] so E6 reports its
//! cost-model numbers instead of host wall clock — every byte is a pure
//! function of the seed.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use magseven::par::ParConfig;
use magseven::serve::{recover_snapshot, FlightJournal};
use magseven::suite::experiments::{run_all_parallel, run_all_serial, ExperimentId, Timing};
use magseven::trace::{HubConfig, TelemetryHub};

const ROOT_SEED: u64 = 42;

fn golden_path(slug: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{slug}.txt"))
}

fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Renders the first point of divergence between two texts, with a line
/// of context, so a golden failure reads like a diff hunk instead of two
/// multi-kilobyte blobs.
fn first_divergence(expected: &str, actual: &str) -> String {
    let mut out = String::new();
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            let _ = writeln!(out, "first divergence at line {}:", i + 1);
            let _ = writeln!(out, "  golden: {e}");
            let _ = writeln!(out, "  actual: {a}");
            return out;
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    let _ = writeln!(
        out,
        "texts agree for {} lines, then lengths differ: golden {el} lines, actual {al} lines",
        el.min(al)
    );
    out
}

fn check_against_golden(id: ExperimentId, rendered: &str) {
    let path = golden_path(id.slug());
    if update_requested() {
        std::fs::write(&path, rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `UPDATE_GOLDEN=1 cargo test --test golden_reports` to create it",
            path.display()
        )
    });
    assert!(
        golden == rendered,
        "{id} report drifted from {}\n{}\
         if the change is intentional, re-bless with `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
        path.display(),
        first_divergence(&golden, rendered)
    );
}

/// Every experiment's seed-42 modeled report matches its pinned snapshot.
///
/// Reports are generated exactly as `run_all_serial(42, Modeled)` does,
/// so the snapshots double as a regression net for the per-experiment
/// seed derivation: reordering `ExperimentId::ALL` or changing
/// `derive_seed` shows up as drift here, not just as silent re-seeding.
#[test]
fn every_report_matches_its_golden_snapshot() {
    let reports = run_all_serial(ROOT_SEED, Timing::Modeled);
    assert_eq!(reports.len(), ExperimentId::ALL.len(), "one snapshot per experiment");
    for (id, report) in &reports {
        check_against_golden(*id, &report.to_string());
    }
}

/// There is exactly one snapshot per experiment slug — a deleted or
/// renamed experiment must not leave a stale golden file behind.
#[test]
fn golden_directory_has_no_strays() {
    let dir = golden_path("").parent().map(PathBuf::from).expect("golden dir");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/golden exists")
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".txt"))
        .map(|n| n.trim_end_matches(".txt").to_string())
        .collect();
    found.sort();
    let mut expected: Vec<String> =
        ExperimentId::ALL.iter().map(|id| id.slug().to_string()).collect();
    expected.sort();
    assert_eq!(found, expected, "tests/golden/ must hold exactly one .txt per experiment slug");
}

/// The telemetry hub is strictly read-only over the registry: running
/// the whole suite while it samples at an aggressive 1 ms cadence —
/// tracing force-enabled, flight journal attached and absorbing every
/// delta — reproduces every golden byte. A cadence-dependent report
/// would mean sampling leaked into modeled time or seeds.
#[test]
fn hub_sampling_at_any_cadence_leaves_goldens_byte_identical() {
    let dir = std::env::temp_dir().join(format!("m7-golden-hub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = FlightJournal::open(&dir).expect("open flight journal");
    let hub = TelemetryHub::start(
        HubConfig { interval: Duration::from_millis(1) },
        vec![Box::new(journal)],
    );

    let reports = run_all_serial(ROOT_SEED, Timing::Modeled);
    hub.stop();

    for (id, report) in &reports {
        let golden = std::fs::read_to_string(golden_path(id.slug())).unwrap_or_else(|e| {
            panic!("missing golden snapshot for {id}: {e} (run the serial golden test first)")
        });
        assert!(
            golden == report.to_string(),
            "{id} drifted with the hub sampling at 1 ms\n{}",
            first_divergence(&golden, &report.to_string())
        );
    }

    // The journal really was live during the run: it must recover to a
    // baseline (and, with the suite's registry churn, some deltas).
    let recovered = recover_snapshot(&dir).expect("recover journal");
    assert!(recovered.is_some(), "the hub must have journaled at least the baseline");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The parallel runner reproduces the same golden bytes at 1 and 8
/// threads. This re-runs the whole suite twice, so it is `#[ignore]`d in
/// the default test pass; CI's golden job includes it via
/// `cargo test --workspace -- --include-ignored`.
#[test]
#[ignore = "runs the full suite twice; CI includes it with --include-ignored"]
fn parallel_runner_reproduces_goldens_at_any_thread_count() {
    for threads in [1, 8] {
        let reports =
            run_all_parallel(ROOT_SEED, Timing::Modeled, ParConfig::with_threads(threads));
        for (id, report) in &reports {
            let golden = std::fs::read_to_string(golden_path(id.slug()))
                .expect("golden snapshot exists (run the serial golden test first)");
            assert!(
                golden == report.to_string(),
                "{id} at {threads} thread(s) drifted from its golden snapshot\n{}",
                first_divergence(&golden, &report.to_string())
            );
        }
    }
}
