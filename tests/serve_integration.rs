//! Integration tests for the serving layer: E9 memoization produces a
//! byte-identical report while saving evaluations, and the loopback
//! evaluation server round-trips requests — duplicates answered from
//! cache — identically at any pool size.
//!
//! Network-touching tests run the client under a watchdog thread so a
//! wedged server fails the test in seconds instead of hanging CI.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use magseven::par::ParConfig;
use magseven::serve::key::EvalRequest;
use magseven::serve::server::{EvalClient, EvalServer, Evaluator, ServeConfig};
use magseven::serve::wire::Response;
use magseven::suite::experiments::e9_dse;

/// The watchdog budget for one whole client session against a local
/// server — generous next to the ~ms round-trips, tight next to CI.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `work` on a helper thread and fails loudly if it does not finish
/// inside [`WATCHDOG`] — the test-level guard against a deadlocked
/// accept or dispatch loop.
fn with_watchdog<T: Send + 'static>(work: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(work());
    });
    let result = rx.recv_timeout(WATCHDOG).expect("server session wedged past the watchdog");
    worker.join().expect("worker panicked");
    result
}

/// A deliberately slow-free pure evaluator: a polynomial of the request
/// fields, deterministic and cheap, so tests exercise the transport and
/// cache rather than the objective.
struct PolyEvaluator;

impl Evaluator for PolyEvaluator {
    fn namespace_tag(&self) -> &str {
        "poly"
    }

    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String> {
        if request.workload != "poly" {
            return Err(format!("unknown workload {:?}", request.workload));
        }
        if request.values.is_empty() {
            return Err("poly needs at least one value".to_string());
        }
        let mut acc = request.seed as f64 * 0.125;
        for (i, v) in request.values.iter().enumerate() {
            acc = acc * 0.5 + v * (i as f64 + 1.0);
        }
        Ok(acc)
    }
}

/// The session's request mix: distinct points interleaved with exact
/// duplicates (every third request repeats its predecessor).
fn session_requests(n: usize) -> Vec<EvalRequest> {
    (0..n)
        .map(|i| {
            let pick = if i % 3 == 2 { i - 1 } else { i };
            EvalRequest::new("poly", vec![pick as f64, pick as f64 * 0.25 + 1.0], 7)
        })
        .collect()
}

/// One full client session: eval every request, then fetch stats and
/// shut the server down. Returns `(costs, cached flags, final stats)`.
fn run_session(par: ParConfig) -> (Vec<f64>, Vec<bool>, magseven::serve::cache::CacheStats) {
    with_watchdog(move || {
        let config = ServeConfig { par, ..ServeConfig::default() };
        let handle =
            EvalServer::spawn(config, Arc::new(PolyEvaluator)).expect("bind loopback server");
        let client = EvalClient::new(handle.addr()).with_timeout(Duration::from_secs(10));

        let mut costs = Vec::new();
        let mut cached = Vec::new();
        for request in session_requests(18) {
            match client.eval(&request).expect("eval round-trip") {
                Response::Cost { cost, cached: was_cached } => {
                    costs.push(cost);
                    cached.push(was_cached);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        let stats = handle.cache_stats();
        handle.shutdown();
        (costs, cached, stats)
    })
}

/// Served costs bit-match direct evaluation; the duplicate requests are
/// answered from the cache and the server's counters say so.
#[test]
fn loopback_round_trip_serves_exact_costs_and_caches_duplicates() {
    let (costs, cached, stats) = run_session(ParConfig::default());
    let expected: Vec<f64> = session_requests(18)
        .iter()
        .map(|r| PolyEvaluator.evaluate(r).expect("valid request"))
        .collect();
    assert_eq!(costs.len(), expected.len());
    for (i, (got, want)) in costs.iter().zip(&expected).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "request {i}: served {got}, direct {want}");
    }
    // 18 requests, every third a duplicate of its predecessor: exactly 6
    // requests repeat an already-served point.
    let dup_count = cached.iter().filter(|&&c| c).count();
    assert_eq!(dup_count, 6, "cached flags: {cached:?}");
    assert_eq!(stats.hits, 6, "server cache telemetry must agree: {stats}");
    assert_eq!(stats.misses as usize, 12, "{stats}");
}

/// A serial pool and a 4-thread pool serve byte-identical responses —
/// the server inherits `m7-par`'s determinism contract.
#[test]
fn server_responses_are_thread_count_invariant() {
    let (serial_costs, serial_cached, serial_stats) = run_session(ParConfig::serial());
    let (pooled_costs, pooled_cached, pooled_stats) = run_session(ParConfig::with_threads(4));
    assert_eq!(serial_costs.len(), pooled_costs.len());
    for (a, b) in serial_costs.iter().zip(&pooled_costs) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(serial_cached, pooled_cached);
    assert_eq!(serial_stats.hits, pooled_stats.hits);
    assert_eq!(serial_stats.misses, pooled_stats.misses);
}

/// Invalid requests come back as `error` responses — and, being
/// deterministic, are themselves cached — without disturbing the
/// well-formed traffic around them.
#[test]
fn invalid_requests_answer_with_errors_not_hangs() {
    with_watchdog(|| {
        let handle = EvalServer::spawn(ServeConfig::default(), Arc::new(PolyEvaluator))
            .expect("bind loopback server");
        let client = EvalClient::new(handle.addr()).with_timeout(Duration::from_secs(10));

        let bad = EvalRequest::new("nope", vec![1.0], 7);
        match client.eval(&bad).expect("round-trip") {
            Response::Error(msg) => assert!(msg.contains("unknown workload"), "{msg}"),
            other => panic!("expected an error response, got {other:?}"),
        }
        // The valid request after a rejected one is served normally.
        let good = EvalRequest::new("poly", vec![2.0, 3.0], 7);
        match client.eval(&good).expect("round-trip") {
            Response::Cost { cost, .. } => {
                let direct = PolyEvaluator.evaluate(&good).expect("valid");
                assert_eq!(cost.to_bits(), direct.to_bits());
            }
            other => panic!("expected a cost, got {other:?}"),
        }
        handle.shutdown();
    });
}

/// E9 through the shared evaluation cache: the result and the rendered
/// report are byte-identical to the uncached run, and the cache saves a
/// strictly positive number of objective evaluations.
#[test]
fn e9_memoized_report_is_byte_identical_and_saves_work() {
    let seed = 42;
    let plain = e9_dse::run(seed);
    let (cached, saved) = e9_dse::run_cached(seed);
    assert_eq!(plain, cached, "memoization must not change E9's result");
    assert_eq!(
        plain.report().to_string(),
        cached.report().to_string(),
        "rendered reports must match byte for byte"
    );
    assert!(saved > 0, "E9's budgeted strategies revisit exhaustively-scored designs");
}
