//! Crash-recovery property suite for the on-disk segment store and the
//! tiered cache over it.
//!
//! The contract under test: an entry is **acked** once `append` (or a
//! tiered insert) returns, and recovery after a crash at *any* byte
//! offset serves exactly the complete prefix of acked records — every
//! record wholly before the cut survives with its exact bytes, nothing
//! at or after the cut is ever served, and the torn tail is physically
//! truncated so the store is immediately writable again. Crashes are
//! simulated by truncating or corrupting the segment file between
//! process-equivalents (open → drop → reopen), which exercises the same
//! recovery path a killed process would.

use magseven::serve::key::{CacheKey, KeyHasher};
use magseven::serve::segment::{
    SegmentConfig, SegmentStore, FILE_HEADER, RECORD_HEADER_BYTES, RECORD_TRAILER_BYTES,
    SEGMENT_FILE,
};
use magseven::serve::tier::{TierConfig, TieredCache};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every proptest case gets its own directory: cases run back-to-back
/// in one process, so pid+thread tags alone would collide.
static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "m7rec-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic payload bytes for record `i`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i.wrapping_mul(31) ^ j.wrapping_mul(7)) as u8).collect()
}

fn record_len(payload_len: usize) -> u64 {
    RECORD_HEADER_BYTES + payload_len as u64 + RECORD_TRAILER_BYTES
}

fn key_of(raw: u64) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u64(raw);
    h.finish()
}

/// Truncates the file at `path` to `len` bytes — the crash.
fn truncate_file(path: &std::path::Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
}

proptest! {
    /// The torn-write property. Append N records, cut the file at an
    /// arbitrary byte offset — anywhere from zero (mid-header) to the
    /// full length — and reopen:
    ///
    /// - exactly the records wholly before the cut are recovered,
    /// - each with byte-identical payload,
    /// - the torn tail is physically truncated,
    /// - the reopened store accepts new appends that survive a further
    ///   reopen with zero torn bytes (recovery is idempotent).
    #[test]
    fn truncation_at_any_offset_keeps_exactly_the_acked_prefix(
        lens in prop::collection::vec(0usize..48, 1..16),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = temp_dir("cut");
        let path = dir.join(SEGMENT_FILE);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                store.append(i as u64, &payload(i, len)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap().len() as u64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = (cut_frac * full as f64).round().min(full as f64) as u64;
        truncate_file(&path, cut);

        // The expected complete prefix, computed from record framing
        // alone — the model the store must match.
        let header = FILE_HEADER.len() as u64;
        let (survivors, good_end, torn) = if cut < header {
            // The header itself is torn: everything present is garbage,
            // and recovery rewrites a fresh 8-byte header.
            (0usize, header, cut)
        } else {
            let mut end = header;
            let mut n = 0usize;
            for &len in &lens {
                let next = end + record_len(len);
                if next > cut {
                    break;
                }
                end = next;
                n += 1;
            }
            (n, end, cut - end)
        };

        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        let rec = store.recovery();
        prop_assert_eq!(rec.records, survivors, "recovered record count");
        prop_assert_eq!(rec.live_entries, survivors, "keys are unique here");
        prop_assert_eq!(rec.torn_bytes, torn, "torn tail size");
        prop_assert_eq!(store.file_bytes(), good_end, "tail physically truncated");
        for (i, &len) in lens.iter().enumerate() {
            let got = store.get(i as u64).unwrap();
            if i < survivors {
                prop_assert_eq!(got.as_deref(), Some(&payload(i, len)[..]), "record {} bytes", i);
            } else {
                prop_assert_eq!(got, None, "record {} is past the cut and must not serve", i);
            }
        }

        // The recovered store is immediately writable, and the repair
        // sticks: a further reopen finds a clean file.
        store.append(0xdead_beef, b"post-crash append").unwrap();
        drop(store);
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        prop_assert_eq!(store.recovery().torn_bytes, 0, "recovery must be idempotent");
        prop_assert_eq!(store.recovery().live_entries, survivors + 1);
        let post = store.get(0xdead_beef).unwrap();
        prop_assert_eq!(post.as_deref(), Some(&b"post-crash append"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single post-header byte stops replay at the damaged
    /// record: everything before it survives byte-identical, the
    /// damaged record and everything after are dropped, and the store
    /// never serves corrupt data or panics. (CRC-32 detects every
    /// single-byte error, so the damaged record is always rejected.)
    #[test]
    fn corruption_at_any_offset_never_serves_damaged_data(
        lens in prop::collection::vec(1usize..32, 1..12),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let dir = temp_dir("flip");
        let path = dir.join(SEGMENT_FILE);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                store.append(i as u64, &payload(i, len)).unwrap();
            }
        }
        let mut raw = std::fs::read(&path).unwrap();
        let header = FILE_HEADER.len();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let pos = header + ((pos_frac * (raw.len() - header) as f64) as usize)
            .min(raw.len() - header - 1);
        raw[pos] ^= xor;
        std::fs::write(&path, &raw).unwrap();

        // Which record owns the flipped byte?
        let mut end = header as u64;
        let mut damaged = lens.len();
        for (i, &len) in lens.iter().enumerate() {
            let next = end + record_len(len);
            if (pos as u64) < next {
                damaged = i;
                break;
            }
            end = next;
        }

        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        prop_assert_eq!(store.recovery().records, damaged, "replay stops at the damage");
        for (i, &len) in lens.iter().enumerate() {
            let got = store.get(i as u64).unwrap();
            if i < damaged {
                prop_assert_eq!(got.as_deref(), Some(&payload(i, len)[..]));
            } else {
                prop_assert_eq!(got, None, "record {} is at/after the damage", i);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same durability contract one level up, through the tiered
    /// cache: values inserted through [`TieredCache`] and recovered
    /// after an arbitrary-offset crash are served **bit-identical** or
    /// not at all — never wrong — and the survivor set is exactly the
    /// complete on-disk prefix.
    #[test]
    fn tiered_cache_recovers_exact_values_after_any_cut(
        bits in prop::collection::vec(0u64..=u64::MAX, 1..20),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = temp_dir("tier");
        let path = dir.join(SEGMENT_FILE);
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        {
            let cache: TieredCache<f64> = TieredCache::open(4, TierConfig::disk(&dir)).unwrap();
            for (i, &v) in values.iter().enumerate() {
                cache.insert(key_of(i as u64), v);
            }
            cache.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap().len() as u64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = (cut_frac * full as f64).round().min(full as f64) as u64;
        truncate_file(&path, cut);

        // f64 payloads are fixed-size, so the survivor count follows
        // from the cut alone.
        let header = FILE_HEADER.len() as u64;
        let per_record = record_len(8);
        #[allow(clippy::cast_possible_truncation)]
        let survivors = (cut.saturating_sub(header) / per_record) as usize;

        let cache: TieredCache<f64> = TieredCache::open(4, TierConfig::disk(&dir)).unwrap();
        let rec = cache.recovery().expect("disk tier is configured");
        prop_assert_eq!(rec.live_entries, survivors.min(values.len()));
        for (i, &v) in values.iter().enumerate() {
            match cache.get(key_of(i as u64)) {
                Some(got) => {
                    prop_assert!(i < survivors, "value {} served from past the cut", i);
                    prop_assert_eq!(got.to_bits(), v.to_bits(), "value {} must be bit-exact", i);
                }
                None => prop_assert!(i >= survivors, "acked value {} lost before the cut", i),
            }
        }
        prop_assert_eq!(cache.stats().disk_errors, 0, "no decode failures on a clean prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic (non-random) sweep: cut a two-record file at **every**
/// byte offset. The record boundary is the exact durability edge:
/// offsets inside record 2 keep record 1 only; offsets inside record 1
/// (or the header) keep nothing; no offset anywhere loses record 1 once
/// the cut is past its last byte.
#[test]
fn every_single_byte_cut_of_a_small_file_recovers_cleanly() {
    let lens = [5usize, 9];
    let header = FILE_HEADER.len() as u64;
    let r1_end = header + record_len(lens[0]);
    let r2_end = r1_end + record_len(lens[1]);

    for cut in 0..=r2_end {
        let dir = temp_dir("sweep");
        let path = dir.join(SEGMENT_FILE);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            store.append(0, &payload(0, lens[0])).unwrap();
            store.append(1, &payload(1, lens[1])).unwrap();
        }
        truncate_file(&path, cut);
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        let expect = usize::from(cut >= r1_end) + usize::from(cut >= r2_end);
        assert_eq!(store.recovery().live_entries, expect, "cut at byte {cut}");
        assert_eq!(store.get(0).unwrap().is_some(), cut >= r1_end, "cut at byte {cut}");
        assert_eq!(store.get(1).unwrap().is_some(), cut >= r2_end, "cut at byte {cut}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
