//! Equivalence oracle for the dataflow backend of `m7_sim::Pipeline`.
//!
//! `Pipeline::simulate_with_faults` now runs on the `m7-flow` graph
//! engine. This suite pins that migration three ways:
//!
//! 1. **Oracle equivalence** — the pre-migration event loop (arrival /
//!    done on a hand-rolled queue, reproduced verbatim below) must
//!    produce *equal* [`PipelineStats`] — every field, bit for bit —
//!    across randomized sensors, platforms, kernels, marshalling paths,
//!    queue capacities, durations, fault schedules, and seeds.
//! 2. **Legacy-vs-Result API** — `try_simulate_with_faults` agrees with
//!    the panicking wrapper on every valid configuration.
//! 3. **Thread-count invariance** — the E15 fusion report renders
//!    byte-identically on 1 and 8 threads.

use magseven::par::ParConfig;
use magseven::sim::des::EventQueue;
use magseven::sim::faults::{Fault, FaultSchedule};
use magseven::sim::pipeline::{Pipeline, PipelineStats};
use magseven::sim::sensor::{SensorKind, SensorSpec};
use magseven::suite::experiments::e15_fusion;
use magseven::units::{Bytes, BytesPerSecond, Hertz, Seconds};
use magseven::{
    arch::platform::{Platform, PlatformKind},
    arch::workload::KernelProfile,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The pre-migration `simulate_with_faults` event loop, verbatim (minus
/// the trace emission, which does not touch the returned stats). This is
/// the oracle the graph backend must match bit for bit.
fn legacy_oracle(
    p: &Pipeline,
    queue_capacity: usize,
    duration: Seconds,
    faults: &FaultSchedule,
    seed: u64,
) -> PipelineStats {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Event {
        Arrival,
        Done,
    }

    let budget = p.latency_budget();
    let service = budget.ingest + budget.compute;
    let actuation_latency = budget.actuate;
    let period = p.sensor().rate().period();

    let mut q: EventQueue<Event> = EventQueue::new();
    q.schedule(Seconds::ZERO, Event::Arrival);

    let mut waiting: VecDeque<Seconds> = VecDeque::new();
    let mut busy = false;
    let mut in_service_arrival = Seconds::ZERO;
    let mut frames_in = 0u64;
    let mut frames_processed = 0u64;
    let mut frames_dropped = 0u64;
    let mut frames_lost = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut link = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x1155_D20B_5EED_0003);

    while let Some((now, event)) = q.pop() {
        if now > duration {
            break;
        }
        match event {
            Event::Arrival => {
                frames_in += 1;
                let drop_rate = faults.message_drop_rate(now);
                if drop_rate > 0.0 && link.gen_bool(drop_rate) {
                    frames_lost += 1;
                    q.schedule(now + period, Event::Arrival);
                    continue;
                }
                if busy {
                    if waiting.len() >= queue_capacity {
                        frames_dropped += 1;
                    } else {
                        waiting.push_back(now);
                    }
                } else {
                    busy = true;
                    in_service_arrival = now;
                    q.schedule(now + service, Event::Done);
                }
                q.schedule(now + period, Event::Arrival);
            }
            Event::Done => {
                frames_processed += 1;
                let end_to_end = now + actuation_latency - in_service_arrival;
                latencies.push(end_to_end.value());
                match waiting.pop_front() {
                    Some(arrival) => {
                        in_service_arrival = arrival;
                        q.schedule(now + service, Event::Done);
                    }
                    None => busy = false,
                }
            }
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let p99 = if latencies.is_empty() {
        0.0
    } else {
        latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)]
    };
    PipelineStats {
        frames_in,
        frames_processed,
        frames_dropped,
        frames_lost,
        mean_latency: Seconds::new(mean),
        p99_latency: Seconds::new(p99),
        throughput: Hertz::new(frames_processed as f64 / duration.value().max(1e-12)),
    }
}

const KINDS: [PlatformKind; 5] = [
    PlatformKind::CpuScalar,
    PlatformKind::CpuSimd,
    PlatformKind::Gpu,
    PlatformKind::Fpga,
    PlatformKind::Asic,
];

fn kernel_strategy() -> impl Strategy<Value = KernelProfile> {
    prop_oneof![
        (64usize..800, 64usize..600).prop_map(|(w, h)| KernelProfile::feature_extract(w, h)),
        (16usize..384).prop_map(KernelProfile::gemm),
        (32usize..512, 32usize..512).prop_map(|(r, c)| KernelProfile::gemv(r, c)),
    ]
}

#[derive(Debug, Clone)]
struct RandomConfig {
    rate_hz: f64,
    payload: f64,
    kind: usize,
    kernel: KernelProfile,
    bandwidth_gbps: f64,
    overhead_ms: f64,
    actuation_ms: f64,
    speedup: f64,
    capacity: usize,
    duration_s: f64,
    windows: Vec<(f64, f64, f64)>,
    seed: u64,
}

fn config_strategy() -> impl Strategy<Value = RandomConfig> {
    (
        (
            5.0f64..120.0,
            1e3f64..2e6,
            0usize..KINDS.len(),
            kernel_strategy(),
            0.05f64..8.0,
            0.0f64..5.0,
            0.0f64..10.0,
            0.5f64..100.0,
        ),
        (
            1usize..8,
            0.05f64..2.5,
            proptest::collection::vec((0.0f64..2.5, 0.01f64..1.5, 0.0f64..0.9), 0..3),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                (
                    rate_hz,
                    payload,
                    kind,
                    kernel,
                    bandwidth_gbps,
                    overhead_ms,
                    actuation_ms,
                    speedup,
                ),
                (capacity, duration_s, windows, seed),
            )| RandomConfig {
                rate_hz,
                payload,
                kind,
                kernel,
                bandwidth_gbps,
                overhead_ms,
                actuation_ms,
                speedup,
                capacity,
                duration_s,
                windows,
                seed,
            },
        )
}

fn build(c: &RandomConfig) -> (Pipeline, FaultSchedule) {
    let pipeline = Pipeline::new(
        SensorSpec::new(SensorKind::Camera, Hertz::new(c.rate_hz), Bytes::new(c.payload), 2.0),
        Platform::preset(KINDS[c.kind]),
        c.kernel.clone(),
    )
    .with_marshalling(
        BytesPerSecond::from_gigabytes_per_second(c.bandwidth_gbps),
        Seconds::from_millis(c.overhead_ms),
    )
    .with_actuation(Seconds::from_millis(c.actuation_ms))
    .with_kernel_speedup(c.speedup)
    .with_queue_capacity(c.capacity);
    let faults = FaultSchedule::new(
        c.windows
            .iter()
            .map(|&(start, dur, rate)| Fault::MessageDrop {
                start: Seconds::new(start),
                duration: Seconds::new(dur),
                drop_rate: rate,
            })
            .collect(),
    );
    (pipeline, faults)
}

proptest! {
    /// The graph backend reproduces the legacy event loop exactly:
    /// every counter and every latency statistic, across the whole
    /// randomized configuration space.
    #[test]
    fn graph_backend_matches_the_legacy_event_loop(c in config_strategy()) {
        let (pipeline, faults) = build(&c);
        let duration = Seconds::new(c.duration_s);
        let expected = legacy_oracle(&pipeline, c.capacity, duration, &faults, c.seed);
        let actual = pipeline.simulate_with_faults(duration, &faults, c.seed);
        prop_assert_eq!(&actual, &expected, "config: {:?}", c);
    }

    /// The fallible API returns exactly what the panicking wrapper
    /// computes on every valid configuration.
    #[test]
    fn try_simulate_agrees_with_the_legacy_api(c in config_strategy()) {
        let (pipeline, faults) = build(&c);
        let duration = Seconds::new(c.duration_s);
        let fallible = pipeline
            .try_simulate_with_faults(duration, &faults, c.seed)
            .expect("configuration is valid");
        let legacy = pipeline.simulate_with_faults(duration, &faults, c.seed);
        prop_assert_eq!(fallible, legacy);
    }
}

/// E15's report is a pure function of the seed — 1 thread and 8 threads
/// must render byte-identical text.
#[test]
fn e15_report_is_thread_count_invariant() {
    let narrow = e15_fusion::run(42, ParConfig::with_threads(1)).report().to_string();
    let wide = e15_fusion::run(42, ParConfig::with_threads(8)).report().to_string();
    assert_eq!(narrow, wide);
}
