//! Tri-mode determinism regression: the memoized experiments (E9, E12)
//! must render **byte-identical** reports whether their shared result
//! store is (a) memory-only, (b) a cold disk-backed tier, or (c) a disk
//! tier pre-warmed by a previous run over the same directory — and all
//! three must match the pinned golden snapshots byte-for-byte.
//!
//! Memoization may only change *how much work runs*, never *what the
//! answer is*: cached values are pure functions of their keys, so the
//! only figure allowed to move across modes is the saved-evaluations
//! count — equal for memory and cold disk (write-through changes no hit
//! path), and strictly larger once the disk tier is warm.

use std::path::PathBuf;

use magseven::serve::tier::{TierConfig, TieredCache};
use magseven::suite::experiments::{
    run_selected_serial_cached, run_selected_serial_cached_in, ExperimentId, Timing,
};

const ROOT_SEED: u64 = 42;
const HOT_CAPACITY: usize = 1 << 14;
const IDS: [ExperimentId; 2] = [ExperimentId::E9Dse, ExperimentId::E12Scenarios];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("m7golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden_text(id: ExperimentId) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{}.txt", id.slug()));
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run the golden_reports suite first",
            path.display()
        )
    })
}

/// One run of the memoized experiments over `store`:
/// `(rendered reports, saved-evaluation counts)` in `IDS` order.
fn run_in<S: magseven::serve::tier::ResultStore<f64>>(store: &S) -> (Vec<String>, Vec<u64>) {
    let rows = run_selected_serial_cached_in(&IDS, ROOT_SEED, Timing::Modeled, store)
        .expect("non-empty selection");
    let reports = rows.iter().map(|(_, report, _)| report.to_string()).collect();
    let saved = rows.iter().map(|(_, _, saved)| *saved).collect();
    (reports, saved)
}

#[test]
fn reports_are_byte_identical_across_disabled_cold_and_warm_disk() {
    // Baseline: the pre-existing per-experiment cache path.
    let baseline =
        run_selected_serial_cached(&IDS, ROOT_SEED, Timing::Modeled).expect("non-empty selection");

    // Mode 1 — disabled disk: one shared memory-only tier.
    let memory: TieredCache<f64> = TieredCache::memory_only(HOT_CAPACITY);
    let (memory_reports, memory_saved) = run_in(&memory);

    // Mode 2 — cold disk: fresh directory, write-through as it runs.
    let dir = temp_dir("trimode");
    let (cold_reports, cold_saved) = {
        let cold: TieredCache<f64> =
            TieredCache::open(HOT_CAPACITY, TierConfig::disk(&dir)).expect("open cold tier");
        let out = run_in(&cold);
        cold.sync().expect("sync segment store");
        out
    };

    // Mode 3 — warm disk: a *new* store over the same directory, as a
    // restarted process would see it.
    let warm: TieredCache<f64> =
        TieredCache::open(HOT_CAPACITY, TierConfig::disk(&dir)).expect("reopen warm tier");
    let recovered = warm.recovery().expect("disk tier configured");
    assert!(recovered.live_entries > 0, "the cold run must have persisted its evaluations");
    assert_eq!(recovered.torn_bytes, 0, "a clean shutdown leaves no torn tail");
    let (warm_reports, warm_saved) = run_in(&warm);

    for (i, &id) in IDS.iter().enumerate() {
        let golden = golden_text(id);
        let base = baseline[i].1.to_string();
        assert_eq!(base, golden, "{id}: baseline cached runner drifted from its golden snapshot");
        assert_eq!(memory_reports[i], golden, "{id}: memory-only tier changed the report bytes");
        assert_eq!(cold_reports[i], golden, "{id}: cold disk tier changed the report bytes");
        assert_eq!(warm_reports[i], golden, "{id}: warm disk tier changed the report bytes");

        // Savings bookkeeping: memory and cold disk see the identical
        // hit sequence; a warm tier answers the formerly-cold first
        // evaluations too, so it must save strictly more. (The absolute
        // count can exceed the baseline's — the shared tier is larger
        // than the per-experiment cache, so it evicts less — which is
        // exactly why the *reports* being byte-identical above is the
        // real invariant.)
        assert!(
            memory_saved[i] >= baseline[i].2,
            "{id}: a larger shared store saved {} < baseline {}",
            memory_saved[i],
            baseline[i].2
        );
        assert_eq!(cold_saved[i], memory_saved[i], "{id}: write-through altered the hit path");
        assert!(
            warm_saved[i] > cold_saved[i],
            "{id}: warm disk saved {} which is not more than cold {}",
            warm_saved[i],
            cold_saved[i]
        );
    }
    assert_eq!(warm.stats().disk_errors, 0, "no decode failures against a cleanly synced store");
    let _ = std::fs::remove_dir_all(&dir);
}
