//! The m7-par determinism contract, checked end to end: the same seed
//! must produce bit-identical results whether work runs serially, on the
//! deterministic pool, or at any thread count.

use magseven::dse::explorer::{Explorer, SearchBudget};
use magseven::dse::moga::{nsga2, nsga2_with};
use magseven::dse::space::{DesignSpace, Dimension};
use magseven::par::ParConfig;
use magseven::suite::experiments::{run_all_parallel, run_all_serial, Timing};

fn rugged_space() -> DesignSpace {
    DesignSpace::new(vec![
        Dimension::new("x", (0..24).map(f64::from).collect()),
        Dimension::new("y", (0..24).map(f64::from).collect()),
        Dimension::new("z", (0..8).map(f64::from).collect()),
    ])
}

fn rugged(v: &[f64]) -> f64 {
    let dx = v[0] - 17.0;
    let dy = v[1] - 5.0;
    let dz = v[2] - 3.0;
    dx * dx + dy * dy + 2.0 * dz * dz + 3.0 * ((v[0] * 0.9).sin() + (v[1] * 1.3).cos())
}

/// Satellite requirement: identical `Report` output from the parallel
/// runner vs. the serial loop for the same seed.
#[test]
fn run_all_parallel_matches_serial_loop_byte_for_byte() {
    let serial = run_all_serial(42, Timing::Modeled);
    let parallel = run_all_parallel(42, Timing::Modeled, ParConfig::default());
    assert_eq!(serial.len(), parallel.len());
    for ((sid, sreport), (pid, preport)) in serial.iter().zip(&parallel) {
        assert_eq!(sid, pid, "paper order must be preserved");
        assert_eq!(
            sreport.to_string(),
            preport.to_string(),
            "{sid}: parallel report must be byte-identical to serial"
        );
    }
}

/// Satellite requirement: identical `SearchResult` from every DSE
/// strategy at 1 vs. 8 threads (the `M7_THREADS=1` CI job exercises the
/// same path through the env override).
#[test]
fn dse_strategies_identical_at_1_vs_8_threads() {
    let space = rugged_space();
    let budget = SearchBudget::new(60);
    let strategies =
        [Explorer::Exhaustive, Explorer::Random, Explorer::genetic(), Explorer::surrogate()];
    for strategy in &strategies {
        let one = strategy.run_with(&space, &rugged, budget, 7, ParConfig::with_threads(1));
        let eight = strategy.run_with(&space, &rugged, budget, 7, ParConfig::with_threads(8));
        assert_eq!(one, eight, "{} must not depend on thread count", strategy.name());
        let bitwise = one.trace.iter().zip(&eight.trace).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bitwise, "{}: traces must match bit for bit", strategy.name());
    }
}

#[test]
fn moga_front_identical_at_1_vs_8_threads() {
    let space = rugged_space();
    let objective = |v: &[f64]| vec![v[0] + 0.2 * v[2], (23.0 - v[0]) + 0.1 * v[1]];
    let default = nsga2(&space, &objective, 12, 16, 3);
    let one = nsga2_with(&space, &objective, 12, 16, 3, ParConfig::with_threads(1));
    let eight = nsga2_with(&space, &objective, 12, 16, 3, ParConfig::with_threads(8));
    assert_eq!(one, eight);
    assert_eq!(default, one, "the default config must agree with explicit threads");
}
