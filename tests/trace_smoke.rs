//! Trace-output smoke test: run one experiment with tracing enabled,
//! export the chrome://tracing JSON, and validate its shape — every
//! Begin paired with a same-name End in LIFO order per track, monotone
//! timestamps, non-negative Complete durations — plus the presence of
//! the key metrics in the `key=value` dump.

use magseven::suite::experiments::{e7_endtoend, ExperimentId, Timing};
use magseven::units::Seconds;

#[test]
fn chrome_trace_of_one_experiment_validates_and_metrics_dump_has_keys() {
    magseven::trace::enable();
    magseven::trace::reset();

    let report = ExperimentId::E7EndToEnd.run_with(42, Timing::Modeled);
    assert!(!report.to_string().is_empty());
    // One closed-loop run of E7's pipeline, for modeled-clock stage spans.
    let stats = e7_endtoend::lean_pipeline().simulate(Seconds::new(1.0));
    assert!(stats.frames_processed > 0);

    let json = magseven::trace::chrome_trace_json();
    let summary = magseven::trace::validate_chrome_trace(&json)
        .expect("exported chrome trace must satisfy the shape validator");
    assert!(summary.wall_spans > 0, "E7 must record at least one wall span");
    assert!(summary.modeled_spans > 0, "the pipeline must record modeled stage spans");

    let dump = magseven::trace::kv_dump();
    for key in [
        "suite.experiments = 1",
        "e7_endtoend.spans = 1",
        "sim.pipeline.ingest_ns.count",
        "sim.pipeline.compute_ns.count",
        "sim.pipeline.actuate_ns.count",
        "trace.dropped_events = 0",
    ] {
        assert!(dump.contains(key), "kv dump must contain {key:?}; got:\n{dump}");
    }
}
