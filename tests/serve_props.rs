//! Property tests for the serving layer: cache-key canonicalization,
//! the cache's hard capacity bound and exact telemetry, and the batched
//! memoized evaluator's thread-count and warming-order invariance.

use std::collections::HashMap;

use magseven::par::ParConfig;
use magseven::serve::batch::evaluate_batch_memo;
use magseven::serve::cache::EvalCache;
use magseven::serve::key::{namespace, CacheKey, EvalRequest, KeyHasher};
use proptest::prelude::*;

/// Spreads a small integer key over the full 64-bit space, so shard
/// selection (high bits) behaves as it does for real content hashes.
fn key_of(raw: u64) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u64(raw);
    h.finish()
}

proptest! {
    /// Structurally equal requests always produce the same key — the
    /// canonicalization is a pure function of field content, not of
    /// allocation or construction order.
    #[test]
    fn equal_requests_hash_equal(
        seed in 0u64..1 << 48,
        ns in 0u64..1 << 48,
        values in prop::collection::vec(-1e6..1e6f64, 0..8),
    ) {
        let a = EvalRequest::new("uav-mission", values.clone(), seed);
        let b = EvalRequest::new("uav-mission", values, seed);
        prop_assert_eq!(a.cache_key(ns), b.cache_key(ns));
    }

    /// Perturbing any single field — one value, the workload, the seed,
    /// the namespace, or the value-vector length — changes the key.
    #[test]
    fn perturbing_any_single_field_changes_the_key(
        seed in 0u64..1 << 48,
        ns in 0u64..1 << 48,
        values in prop::collection::vec(-1e6..1e6f64, 1..8),
        which in 0usize..16,
    ) {
        let base = EvalRequest::new("uav-mission", values.clone(), seed);
        let key = base.cache_key(ns);

        let mut bumped = values.clone();
        let i = which % bumped.len();
        bumped[i] += 1.0;
        prop_assert_ne!(EvalRequest::new("uav-mission", bumped, seed).cache_key(ns), key);

        let mut extended = values.clone();
        extended.push(0.0);
        prop_assert_ne!(EvalRequest::new("uav-mission", extended, seed).cache_key(ns), key);

        prop_assert_ne!(
            EvalRequest::new("uav-missionx", values.clone(), seed).cache_key(ns),
            key
        );
        prop_assert_ne!(
            EvalRequest::new("uav-mission", values.clone(), seed ^ 1).cache_key(ns),
            key
        );
        prop_assert_ne!(base.cache_key(ns ^ 1), key);
    }

    /// The capacity bound is hard: through any interleaving of inserts
    /// and lookups over a key universe far larger than the cache, `len`
    /// never exceeds `capacity`, and the telemetry stays self-consistent.
    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 1usize..48,
        ops in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..300),
    ) {
        let cache: EvalCache<f64> = EvalCache::new(capacity);
        for &(raw, is_insert) in &ops {
            if is_insert {
                cache.insert(key_of(raw), raw as f64);
            } else {
                let _ = cache.get(key_of(raw));
            }
            prop_assert!(cache.len() <= capacity, "len {} > capacity {capacity}", cache.len());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.entries, cache.len());
        prop_assert_eq!(stats.insertions, ops.iter().filter(|(_, ins)| *ins).count() as u64);
        prop_assert!(stats.evictions <= stats.insertions);
    }

    /// When no shard can evict (capacity comfortably above the distinct
    /// key count), hit and miss counters match a plain `HashMap` model
    /// exactly, op for op.
    #[test]
    fn counters_match_a_map_model_when_nothing_evicts(
        raws in prop::collection::vec(0u64..40, 1..200),
    ) {
        // 16 shards over capacity 1024 leaves >= 64 slots per shard for
        // at most 40 distinct keys: eviction is impossible even if every
        // key landed in one shard.
        let cache: EvalCache<f64> = EvalCache::new(1024);
        let mut model: HashMap<u64, f64> = HashMap::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &raw in &raws {
            let already = model.contains_key(&raw);
            let (value, was_hit) = cache.get_or_insert_with(key_of(raw), || raw as f64 * 0.5);
            let modeled = *model.entry(raw).or_insert(raw as f64 * 0.5);
            prop_assert_eq!(value.to_bits(), modeled.to_bits());
            prop_assert_eq!(was_hit, already, "hit iff the model already held the key");
            if was_hit {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, misses);
        prop_assert_eq!(stats.evictions, 0);
        prop_assert_eq!(stats.entries, model.len());
        prop_assert_eq!(stats.misses, model.len() as u64, "each distinct key misses exactly once");
    }

    /// The memoized batch evaluator returns bit-identical results at any
    /// thread count and from any cache warming state — caching changes
    /// how much work runs, never what comes back.
    #[test]
    fn memoized_batches_are_thread_and_warming_invariant(
        seed in 0u64..1 << 48,
        raws in prop::collection::vec(0u64..24, 1..40),
        warm in prop::collection::vec(0u64..24, 0..12),
    ) {
        let ns = namespace("prop-batch", seed);
        let requests: Vec<EvalRequest> = raws
            .iter()
            .map(|&r| EvalRequest::new("w", vec![r as f64, (r * r) as f64 * 0.25], seed))
            .collect();
        let eval = |r: &EvalRequest| r.values.iter().sum::<f64>() * 1.0625 + seed as f64;
        let expected: Vec<f64> = requests.iter().map(eval).collect();

        for threads in [1usize, 4] {
            // A cold cache, and one pre-warmed with an arbitrary subset.
            for warmed in [false, true] {
                let cache: EvalCache<f64> = EvalCache::new(256);
                if warmed {
                    for &r in &warm {
                        let req =
                            EvalRequest::new("w", vec![r as f64, (r * r) as f64 * 0.25], seed);
                        cache.insert(req.cache_key(ns), eval(&req));
                    }
                }
                let (results, outcome) = evaluate_batch_memo(
                    &cache,
                    ParConfig::with_threads(threads),
                    &requests,
                    |r| r.cache_key(ns),
                    eval,
                );
                for (got, want) in results.iter().zip(&expected) {
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                }
                prop_assert_eq!(
                    outcome.computed + outcome.saved(),
                    requests.len(),
                    "every slot is either computed or saved"
                );
            }
        }
    }
}
