//! Loopback stress tests for the readiness-loop server: many
//! concurrent clients — persistent binary-framed and legacy
//! one-shot text mixed together — hammer one server with overlapping,
//! duplicate-heavy request schedules, and every response must be
//! bit-identical to a serial oracle while the cache counters balance
//! exactly.
//!
//! The exact accounting relied on below follows from the dispatch
//! design: batches are evaluated serially inside the event loop, so the
//! *first* probe of each unique key is the only probe that can miss —
//! every later probe hits, and in-batch duplicates coalesce without
//! touching the hit/miss counters at all. Hence, regardless of thread
//! interleaving:
//!
//! - `misses == insertions == entries == unique keys`,
//! - exactly one response per unique key carries `cached: false`,
//! - `hits + misses + coalesced == total requests`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use magseven::serve::key::EvalRequest;
use magseven::serve::server::{
    EvalClient, EvalServer, Evaluator, FramedClient, ServeConfig, ServerHandle,
};
use magseven::serve::wire::Response;

/// Watchdog budget for one whole stress scenario.
const WATCHDOG: Duration = Duration::from_secs(60);

const CLIENTS: usize = 10;
const PER_CLIENT: usize = 40;
const UNIQUE_KEYS: usize = 30;

/// Runs `work` on a helper thread and fails loudly if it wedges.
fn with_watchdog<T: Send + 'static>(work: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(work());
    });
    let result = rx.recv_timeout(WATCHDOG).expect("stress scenario wedged past the watchdog");
    worker.join().expect("stress worker panicked");
    result
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "m7stress-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pure polynomial evaluator with a deliberate micro-stall so batches
/// genuinely overlap with client submission under load.
struct StallPoly;

impl Evaluator for StallPoly {
    fn namespace_tag(&self) -> &str {
        "stress-poly"
    }

    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String> {
        std::thread::sleep(Duration::from_micros(200));
        let mut acc = request.seed as f64 * 0.375;
        for (i, v) in request.values.iter().enumerate() {
            acc = acc * 0.5 + v * (i as f64 + 1.0);
        }
        Ok(acc)
    }
}

/// The request each (client, step) pair sends. The modulus folds every
/// client's schedule onto [`UNIQUE_KEYS`] shared points, so duplicates
/// occur both within one client and *across* clients racing each other.
fn request_for(client: usize, step: usize) -> EvalRequest {
    let pick = (client * 7 + step * 3) % UNIQUE_KEYS;
    EvalRequest::new("stress-poly", vec![pick as f64, pick as f64 * 0.5 - 3.0], 11)
}

/// What the server *must* answer for that request, computed serially.
fn oracle(client: usize, step: usize) -> f64 {
    StallPoly.evaluate(&request_for(client, step)).expect("pure evaluator")
}

/// Drives one client session and returns `(cost_bits, cached)` per
/// step. Even client ids hold one persistent binary connection; odd ids
/// reconnect per request over the legacy text protocol.
fn run_client(handle: &ServerHandle, client: usize) -> Vec<(u64, bool)> {
    let addr = handle.addr();
    let mut out = Vec::with_capacity(PER_CLIENT);
    let mut framed = if client.is_multiple_of(2) {
        Some(FramedClient::connect_timeout(addr, Duration::from_secs(10)).expect("connect framed"))
    } else {
        None
    };
    for step in 0..PER_CLIENT {
        let request = request_for(client, step);
        let response = match framed.as_mut() {
            Some(fc) => fc.eval(&request),
            None => EvalClient::new(addr).with_timeout(Duration::from_secs(10)).eval(&request),
        }
        .unwrap_or_else(|e| panic!("client {client} step {step}: {e}"));
        match response {
            Response::Cost { cost, cached } => out.push((cost.to_bits(), cached)),
            other => panic!("client {client} step {step}: unexpected {other:?}"),
        }
    }
    out
}

fn spawn_clients(handle: &Arc<ServerHandle>) -> Vec<Vec<(u64, bool)>> {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let handle = Arc::clone(handle);
            std::thread::spawn(move || run_client(&handle, client))
        })
        .collect();
    threads.into_iter().map(|t| t.join().expect("client thread panicked")).collect()
}

/// 10 concurrent clients (5 framed + 5 legacy), duplicate-heavy mix:
/// every answer matches the serial oracle bit-for-bit, exactly one
/// `cached: false` per unique key, and the counters balance exactly.
#[test]
fn concurrent_mixed_clients_agree_with_the_serial_oracle() {
    with_watchdog(|| {
        // The hot tier is sharded 16 ways with a per-shard bound, so
        // give it headroom well past UNIQUE_KEYS even under a worst-case
        // hash skew — this test is about accounting, not eviction.
        let config =
            ServeConfig { cache_capacity: 1024, max_pending: 4096, ..ServeConfig::default() };
        let handle =
            Arc::new(EvalServer::spawn(config, Arc::new(StallPoly)).expect("bind stress server"));
        let sessions = spawn_clients(&handle);

        let mut computed = 0usize;
        for (client, session) in sessions.iter().enumerate() {
            assert_eq!(session.len(), PER_CLIENT, "client {client} dropped responses");
            for (step, &(bits, cached)) in session.iter().enumerate() {
                assert_eq!(
                    bits,
                    oracle(client, step).to_bits(),
                    "client {client} step {step}: answer differs from the serial oracle"
                );
                if !cached {
                    computed += 1;
                }
            }
        }
        assert_eq!(computed, UNIQUE_KEYS, "each unique key is computed exactly once");

        let total = (CLIENTS * PER_CLIENT) as u64;
        let stats = handle.cache_stats();
        assert_eq!(stats.misses, UNIQUE_KEYS as u64, "only first probes can miss");
        assert_eq!(stats.insertions, UNIQUE_KEYS as u64);
        assert_eq!(stats.entries, UNIQUE_KEYS);
        assert_eq!(stats.evictions, 0);
        assert!(
            stats.hits + stats.misses <= total,
            "hits {} + misses {} cannot exceed {} requests (rest coalesced)",
            stats.hits,
            stats.misses,
            total
        );
        assert_eq!(handle.shed_count(), 0, "nothing may be shed under the connection limit");

        let handle = Arc::into_inner(handle).expect("all clients joined");
        handle.shutdown();
    });
}

/// Live telemetry rides alongside the full concurrent eval mix without
/// stalling either side: two pollers — one per protocol — interleave
/// introspection queries with the 10-client duplicate-heavy eval storm.
/// Telemetry is answered inline from the parse phase, so every query
/// completes even while dispatch is stalled inside the evaluator; the
/// observed request counter must be monotone across polls, the eval
/// answers still match the serial oracle bit-for-bit, and the final
/// sample agrees exactly with the cache accounting.
#[test]
fn telemetry_queries_ride_alongside_the_eval_storm() {
    with_watchdog(|| {
        const POLLS: usize = 40;
        let config =
            ServeConfig { cache_capacity: 1024, max_pending: 4096, ..ServeConfig::default() };
        let handle = Arc::new(
            EvalServer::spawn(config, Arc::new(StallPoly)).expect("bind telemetry stress server"),
        );

        let pollers: Vec<_> = (0..2)
            .map(|poller| {
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || {
                    let addr = handle.addr();
                    let mut last_requests = 0u64;
                    for poll in 0..POLLS {
                        let response = if poller == 0 {
                            FramedClient::connect_timeout(addr, Duration::from_secs(10))
                                .and_then(|mut c| c.telemetry())
                        } else {
                            EvalClient::new(addr).with_timeout(Duration::from_secs(10)).telemetry()
                        }
                        .unwrap_or_else(|e| panic!("poller {poller} poll {poll}: {e}"));
                        let stats = match response {
                            Response::Telemetry(stats) => stats,
                            other => panic!("poller {poller} poll {poll}: unexpected {other:?}"),
                        };
                        assert!(
                            stats.requests >= last_requests,
                            "poller {poller} poll {poll}: dispatched-request count went backwards"
                        );
                        last_requests = stats.requests;
                    }
                    last_requests
                })
            })
            .collect();

        let sessions = spawn_clients(&handle);
        for result in pollers {
            result.join().expect("telemetry poller panicked");
        }

        // The eval traffic under interleaved introspection is untouched.
        for (client, session) in sessions.iter().enumerate() {
            assert_eq!(session.len(), PER_CLIENT, "client {client} dropped responses");
            for (step, &(bits, _)) in session.iter().enumerate() {
                assert_eq!(
                    bits,
                    oracle(client, step).to_bits(),
                    "client {client} step {step}: answer differs from the serial oracle"
                );
            }
        }

        // A final quiesced sample must agree exactly with the cache
        // accounting: telemetry itself never dispatches, so only the
        // eval requests count.
        let final_stats = match FramedClient::connect_timeout(handle.addr(), WATCHDOG)
            .and_then(|mut c| c.telemetry())
            .expect("final telemetry query")
        {
            Response::Telemetry(stats) => stats,
            other => panic!("final telemetry query answered {other:?}"),
        };
        let total = (CLIENTS * PER_CLIENT) as u64;
        assert_eq!(final_stats.requests, total, "every eval was dispatched, nothing else");
        assert_eq!(final_stats.misses, UNIQUE_KEYS as u64, "only first probes can miss");
        assert_eq!(final_stats.shed, 0, "nothing may be shed under the connection limit");
        assert!(final_stats.dispatch.count >= 1, "dispatch latency must have samples");
        assert!(
            final_stats.parse.p99_ns >= final_stats.parse.p50_ns,
            "phase quantiles must be ordered"
        );

        let handle = Arc::into_inner(handle).expect("all clients joined");
        handle.shutdown();
    });
}

/// The disk-tier restart scenario: a stressed server persists its
/// cache, a *new* server over the same directory answers the identical
/// concurrent mix bit-for-bit with **zero** misses and **zero**
/// recomputation — the warm start is observable in the tier counters.
#[test]
fn disk_tier_restart_answers_the_whole_mix_without_recomputing() {
    with_watchdog(|| {
        let dir = temp_dir("restart");
        let config = ServeConfig {
            cache_capacity: 8, // smaller than the key set: the disk tier must carry it
            max_pending: 4096,
            disk_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        let first = Arc::new(
            EvalServer::spawn(config.clone(), Arc::new(StallPoly)).expect("bind first server"),
        );
        let round1 = spawn_clients(&first);
        let computed: usize = round1.iter().flatten().filter(|&&(_, cached)| !cached).count();
        assert_eq!(computed, UNIQUE_KEYS, "round 1 computes each key once");
        Arc::into_inner(first).expect("clients joined").shutdown(); // syncs the segment store

        let second =
            Arc::new(EvalServer::spawn(config, Arc::new(StallPoly)).expect("bind second server"));
        let recovered = second.recovery().expect("disk tier configured").live_entries;
        assert_eq!(recovered, UNIQUE_KEYS, "every acked key survives the restart");

        let round2 = spawn_clients(&second);
        for (client, (s1, s2)) in round1.iter().zip(&round2).enumerate() {
            for (step, (&(b1, _), &(b2, cached))) in s1.iter().zip(s2).enumerate() {
                assert_eq!(b1, b2, "client {client} step {step}: restart changed the answer");
                assert!(cached, "client {client} step {step}: warm server recomputed");
            }
        }

        let tier = second.tier_stats();
        let total = (CLIENTS * PER_CLIENT) as u64;
        assert_eq!(tier.misses, 0, "a fully warm disk tier never misses");
        assert_eq!(tier.insertions, 0, "nothing recomputed, nothing re-inserted");
        assert!(tier.disk_hits >= 1, "the warm start must be served from disk");
        assert_eq!(
            tier.hot_hits + tier.disk_hits,
            total,
            "every round-2 request is answered by one of the two tiers"
        );

        Arc::into_inner(second).expect("clients joined").shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}
