//! Integration sweep over the whole experiment suite: every experiment
//! runs, renders, and reproduces its paper-anchored headline shape.

use magseven::suite::experiments::{
    e2_bridges, e3_metrics, e4_widgetism, e5_brakes, e7_endtoend, e8_global, ExperimentId,
};

#[test]
fn every_experiment_runs_and_renders() {
    for id in ExperimentId::ALL {
        let report = id.run(42);
        assert!(!report.tables().is_empty(), "{id} must produce tables");
        let text = report.to_string();
        assert!(text.len() > 100, "{id} report too small");
        assert!(text.contains('|'), "{id} report should contain tables");
    }
}

#[test]
fn headline_shapes_hold_together() {
    // E2: the widget's deployed-stack speedup collapses versus its
    // benchmark speedup; the expert design wins where it matters.
    let e2 = e2_bridges::run();
    let widget = &e2.rows[0];
    let expert = &e2.rows[1];
    assert!(widget.1 > 2.0 && widget.2 < widget.1 / 2.0);
    assert!(expert.2 > widget.2);

    // E3: metric inversion.
    let e3 = e3_metrics::run(42);
    assert_ne!(e3.throughput_winner, e3.time_to_accuracy_winner);

    // E4: widget loses the suite geomean to the cross-cutting design.
    let e4 = e4_widgetism::run();
    let widget_idx = e4.designs.iter().position(|d| d == "widget-prm-asic").unwrap();
    let cross_idx = e4.designs.iter().position(|d| d == "crosscutting-asic").unwrap();
    assert!(e4.suite_geomean[cross_idx] > e4.suite_geomean[widget_idx]);

    // E5: U-shape with a middle-tier winner.
    let e5 = e5_brakes::run(42);
    assert!(e5.best_tier == "embedded" || e5.best_tier == "embedded-gpu");

    // E7: the 1000x kernel gain is Amdahl-capped.
    let e7 = e7_endtoend::run();
    let (_, lean_1000, taxed_1000) = *e7.rows.last().unwrap();
    assert!(lean_1000 < 1000.0 / 10.0);
    assert!(taxed_1000 < lean_1000);

    // E8: edge training dirtier; big fleets rival datacenters.
    let e8 = e8_global::run();
    assert!(e8.edge_cloud_ratio > 10.0);
    assert!(e8.fleet_rows.last().unwrap().2 > 100.0);
}

#[test]
fn experiments_are_deterministic() {
    for id in [ExperimentId::E1Growth, ExperimentId::E5Brakes, ExperimentId::E9Dse] {
        let a = id.run(7).to_string();
        let b = id.run(7).to_string();
        assert_eq!(a, b, "{id} must be reproducible");
    }
}

#[test]
fn different_seeds_change_stochastic_experiments() {
    let a = ExperimentId::E1Growth.run(1).to_string();
    let b = ExperimentId::E1Growth.run(2).to_string();
    assert_ne!(a, b, "the bibliometric draw is stochastic across seeds");
}

#[test]
fn experiment_descriptions_reference_paper_sections() {
    for id in ExperimentId::ALL {
        let d = id.description();
        assert!(
            d.contains('§') || d.contains("Fig."),
            "{id} description should carry its paper anchor: {d}"
        );
    }
}
