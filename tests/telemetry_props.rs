//! Property suite for the live-telemetry snapshot codec and the flight
//! journal built on it.
//!
//! Three contracts under test, matching the module docs of
//! `m7_trace::snapshot` and `m7_serve::journal`:
//!
//! - **Codec round-trip:** `decode_record(encode(x)) == x` for full and
//!   delta records over arbitrary registries, and every truncated prefix
//!   decodes to `None` (never panics, never mis-parses).
//! - **Delta algebra:** `prev.apply(&next.delta_from(&prev)) == next`
//!   along an arbitrary metric history, unchanged metrics stay out of
//!   deltas, and [`SnapshotDelta::merge`] is commutative and associative
//!   so a folded delta replays a whole chain in one hop.
//! - **Journal durability:** a record is acked once `publish` returns;
//!   cutting the segment file at *any* byte offset (the on-disk state a
//!   `kill -9` mid-write leaves behind) and recovering yields exactly
//!   the snapshot reconstructed from the wholly-surviving record prefix
//!   — never a torn or reordered state. A live end-to-end test runs a
//!   real [`TelemetryHub`] into a [`FlightJournal`] and checks recovery
//!   lands on the final published registry state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use magseven::serve::segment::{
    FILE_HEADER, RECORD_HEADER_BYTES, RECORD_TRAILER_BYTES, SEGMENT_FILE,
};
use magseven::serve::{recover_snapshot, FlightJournal};
use magseven::trace::{
    decode_record, HistogramSnapshot, HubConfig, MetricClass, MetricEntry, MetricValue,
    MetricsSnapshot, Snapshot, SnapshotRecord, SnapshotSink, TelemetryHub, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// Snapshots per generated history (seq 0 ..= STEPS-1).
const STEPS: usize = 4;

/// Every proptest case gets its own directory: cases run back-to-back
/// in one process, so pid+thread tags alone would collide.
static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "m7tel-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One synthetic metric's whole history: its kind, the step it first
/// appears (the registry only grows), and a per-step increment.
#[derive(Debug, Clone)]
struct Spec {
    kind: usize,
    first: usize,
    incs: Vec<u64>,
}

/// Generates 1..8 metric histories plus a heartbeat metric that changes
/// every step, so no interval is quiet and deltas stay non-empty — the
/// same invariant the hub enforces by skipping quiet intervals.
fn specs() -> impl Strategy<Value = Vec<Spec>> {
    prop::collection::vec((0..3usize, 0..STEPS, prop::collection::vec(0u64..40, STEPS)), 1..8)
        .prop_map(|raw| {
            let mut specs = vec![Spec { kind: 0, first: 0, incs: vec![1; STEPS] }];
            specs.extend(raw.into_iter().map(|(kind, first, incs)| Spec { kind, first, incs }));
            specs
        })
}

/// The cumulative value of metric `i` at step `t`, or `None` before the
/// metric first appears. Counters and gauges carry the running sum of
/// increments (monotone, like real registry traffic); histograms spread
/// each step's increment over a step-dependent bucket so multi-bucket
/// deltas get exercised.
fn value_at(i: usize, spec: &Spec, t: usize) -> Option<MetricValue> {
    if t < spec.first {
        return None;
    }
    let total: u64 = spec.incs[spec.first..=t].iter().sum();
    Some(match spec.kind {
        0 => MetricValue::Counter(total),
        1 => MetricValue::Gauge(total),
        _ => {
            let mut buckets: Vec<(usize, u64)> = Vec::new();
            let mut sum = 0u64;
            for (step, &inc) in spec.incs.iter().enumerate().take(t + 1).skip(spec.first) {
                if inc == 0 {
                    continue;
                }
                let idx = (i * 5 + step * 11) % HISTOGRAM_BUCKETS;
                match buckets.binary_search_by_key(&idx, |&(b, _)| b) {
                    Ok(at) => buckets[at].1 += inc,
                    Err(at) => buckets.insert(at, (idx, inc)),
                }
                sum += inc * (step as u64 + 1);
            }
            MetricValue::Histogram(HistogramSnapshot { count: total, sum, buckets })
        }
    })
}

/// Materializes the registry state at step `t`: entries sorted by name
/// (the registry invariant), classes alternating so both halves of the
/// deterministic/diagnostic split ride through the codec.
fn snap_at(specs: &[Spec], t: usize) -> Snapshot {
    let entries = specs
        .iter()
        .enumerate()
        .filter_map(|(i, spec)| {
            value_at(i, spec, t).map(|value| MetricEntry {
                name: format!("telprops.m{i:02}"),
                class: if i % 2 == 0 {
                    MetricClass::Deterministic
                } else {
                    MetricClass::Diagnostic
                },
                value,
            })
        })
        .collect();
    Snapshot { seq: t as u64, wall_ms: t as u64 * 17, metrics: MetricsSnapshot { entries } }
}

fn record_len(payload_len: usize) -> u64 {
    RECORD_HEADER_BYTES + payload_len as u64 + RECORD_TRAILER_BYTES
}

/// Truncates the file at `path` to `len` bytes — the crash.
fn truncate_file(path: &std::path::Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
}

proptest! {
    /// Full and delta records decode back to exactly what was encoded,
    /// and every strict prefix of the encoding is rejected (`None`)
    /// rather than mis-parsed or panicking — the journal's torn-record
    /// guard depends on this.
    #[test]
    fn records_round_trip_and_reject_every_truncation(specs in specs()) {
        for t in 0..STEPS {
            let snap = snap_at(&specs, t);
            let bytes = snap.encode();
            prop_assert_eq!(decode_record(&bytes), Some(SnapshotRecord::Full(snap.clone())));
            for cut in 0..bytes.len() {
                prop_assert_eq!(decode_record(&bytes[..cut]), None, "full cut at {}", cut);
            }
        }
        for t in 1..STEPS {
            let delta = snap_at(&specs, t).delta_from(&snap_at(&specs, t - 1));
            let bytes = delta.encode();
            prop_assert_eq!(decode_record(&bytes), Some(SnapshotRecord::Delta(delta.clone())));
            for cut in 0..bytes.len() {
                prop_assert_eq!(decode_record(&bytes[..cut]), None, "delta cut at {}", cut);
            }
        }
    }

    /// Applying each step's delta reconstructs the next snapshot
    /// exactly, and a metric only appears in a delta when it actually
    /// changed (or newly appeared) — the property that makes journal
    /// records cost bytes proportional to activity.
    #[test]
    fn delta_chain_reconstructs_every_snapshot(specs in specs()) {
        let mut current = snap_at(&specs, 0);
        for t in 1..STEPS {
            let next = snap_at(&specs, t);
            let delta = next.delta_from(&current);
            for change in &delta.changes {
                let before = current.metrics.get(&change.name);
                let after = next.metrics.get(&change.name).expect("changes name an entry");
                prop_assert!(
                    before != Some(after),
                    "unchanged metric {} appeared in a delta",
                    change.name
                );
            }
            current = current.apply(&delta);
            prop_assert_eq!(&current, &next, "apply must land on the sampled snapshot");
        }
    }

    /// Delta merge is commutative and associative, and the fold of a
    /// whole chain replays it in one hop: counters and histogram
    /// buckets add, gauges keep the high-water value (which equals the
    /// final value here because registry traffic is monotone).
    #[test]
    fn merge_is_order_invariant_and_replays_the_chain(specs in specs()) {
        let snaps: Vec<Snapshot> = (0..STEPS).map(|t| snap_at(&specs, t)).collect();
        let deltas: Vec<_> =
            (1..STEPS).map(|t| snaps[t].delta_from(&snaps[t - 1])).collect();

        let mut ab = deltas[0].clone();
        ab.merge(&deltas[1]);
        let mut ba = deltas[1].clone();
        ba.merge(&deltas[0]);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut left = ab.clone();
        left.merge(&deltas[2]);
        let mut bc = deltas[1].clone();
        bc.merge(&deltas[2]);
        let mut right = deltas[0].clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        prop_assert_eq!(
            snaps[0].apply(&left),
            snaps[STEPS - 1].clone(),
            "the folded delta must replay the chain in one hop"
        );
    }

    /// The kill -9 property. Publish a baseline plus delta chain
    /// through the journal, cut the segment file at an arbitrary byte
    /// offset, and recover: the result is exactly the snapshot
    /// reconstructed from the records wholly before the cut — the acked
    /// prefix — and nothing else. (Crashes are simulated by truncation,
    /// the same on-disk state a mid-write kill leaves; the CI
    /// telemetry-smoke job runs the real `kill -9` end to end.)
    #[test]
    fn journal_cut_at_any_offset_recovers_exactly_the_acked_prefix(
        specs in specs(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = temp_dir("cut");
        let snaps: Vec<Snapshot> = (0..STEPS).map(|t| snap_at(&specs, t)).collect();
        let mut payload_lens = vec![snaps[0].encode().len()];
        {
            let mut journal = FlightJournal::open(&dir).unwrap();
            journal.publish(&snaps[0], None);
            for t in 1..STEPS {
                let delta = snaps[t].delta_from(&snaps[t - 1]);
                prop_assert!(!delta.is_empty(), "the heartbeat keeps every delta non-empty");
                payload_lens.push(delta.encode().len());
                journal.publish(&snaps[t], Some(&delta));
            }
            prop_assert_eq!(journal.write_errors(), 0);
        }

        let path = dir.join(SEGMENT_FILE);
        let full = std::fs::read(&path).unwrap().len() as u64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = (cut_frac * full as f64).round().min(full as f64) as u64;
        truncate_file(&path, cut);

        // The expected survivor count, from record framing alone.
        let header = FILE_HEADER.len() as u64;
        let mut end = header;
        let mut survivors = 0usize;
        if cut >= header {
            for &len in &payload_lens {
                let next = end + record_len(len);
                if next > cut {
                    break;
                }
                end = next;
                survivors += 1;
            }
        }

        match recover_snapshot(&dir).unwrap() {
            None => prop_assert_eq!(survivors, 0, "a surviving baseline must recover"),
            Some((snapshot, records)) => {
                prop_assert_eq!(records, survivors, "recovery folds exactly the acked prefix");
                prop_assert_eq!(
                    snapshot,
                    snaps[survivors - 1].clone(),
                    "recovery must land on the last acked snapshot"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End to end with a *real* hub: sample the live registry on a 1 ms
/// cadence into a journal, then recover and check the journal's fold
/// lands on the final published registry state — seqs contiguous, the
/// stop-time flush included.
#[test]
fn live_hub_streams_into_the_journal_and_recovery_matches() {
    let dir = temp_dir("live");
    let ticks =
        magseven::trace::registry().counter("telprops.live_ticks", MetricClass::Deterministic);
    let journal = FlightJournal::open(&dir).unwrap();
    let hub = TelemetryHub::start(
        HubConfig { interval: Duration::from_millis(1) },
        vec![Box::new(journal)],
    );
    for _ in 0..5 {
        ticks.add(3);
        std::thread::sleep(Duration::from_millis(3));
    }
    let final_value = ticks.get();
    hub.stop(); // flushes one final sample before joining

    let (snapshot, records) =
        recover_snapshot(&dir).unwrap().expect("the baseline must reach the journal");
    assert!(records >= 1);
    assert_eq!(
        snapshot.metrics.counter("telprops.live_ticks"),
        Some(final_value),
        "recovery must see the last pre-stop counter value"
    );
    assert_eq!(snapshot.seq + 1, records as u64, "journal seqs are contiguous from the baseline");
    let _ = std::fs::remove_dir_all(&dir);
}
