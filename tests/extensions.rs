//! Integration of the extension surface: the spec DSL, DVFS, thermal
//! throttling, the planner-in-the-loop rover, localization stacks, and
//! the benchmark suite — chained the way a design study would use them.

use magseven::arch::dvfs::{ladder_sweep, OperatingPoint};
use magseven::prelude::*;
use magseven::suite::workloads::{m7bench, score};

/// Spec text → platform → M7Bench → DVFS: the agile-design round trip.
#[test]
fn spec_to_benchmark_to_dvfs() {
    let platform = parse_platform(
        "kind = asic\nname = study-accel\npeak_tops = 3.0\nbandwidth_gbps = 200\n\
         serial_gops = 1.5\nactive_w = 8\n\
         specialize = families collision-geometry dense-linear-algebra stencil\nfallback = 0.05\n",
    )
    .expect("valid spec");
    // It must pass the suite workloads its families cover.
    let passes = m7bench().iter().filter(|w| score(&platform, w).passes()).count();
    assert!(passes >= 4, "the specified accelerator passes most of M7Bench: {passes}");

    // DVFS ladder preserves the specialization.
    for (_, scaled) in ladder_sweep(&platform) {
        assert_eq!(
            scaled.match_factor(&KernelProfile::collision_batch(100, 10)),
            1.0,
            "specialization must survive scaling"
        );
    }
    // Downclocking a compute-bound kernel saves energy.
    let kernel = KernelProfile::gemm(256);
    let slow = magseven::arch::dvfs::scaled_platform(
        &platform,
        OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 },
    );
    assert!(slow.estimate(&kernel).energy < platform.estimate(&kernel).energy);
}

/// Thermal envelope: burst throughput claims must not survive sustained
/// operation above the package's sustainable power.
#[test]
fn thermal_envelope_gates_sustained_throughput() {
    let mut state = ThermalState::new(ThermalConfig::default());
    let sustainable = state.sustainable_power();
    assert!(sustainable.value() > 0.0);
    // Run well above sustainable for 15 minutes.
    for _ in 0..900 {
        state.step(Watts::new(sustainable.value() * 1.5), Seconds::new(1.0));
    }
    assert!(state.performance_scale() < 1.0);
    assert!(state.throttled_time().value() > 0.0);
}

/// The rover exercises kernels (RRT), sim (battery/kinematics), and the
/// tier model together; its compute trade-off matches the UAV's story.
#[test]
fn rover_and_uav_agree_on_compute_tradeoff() {
    let mut world = CollisionWorld::new(40.0, 40.0);
    // World seed chosen so the scattered obstacles leave the start and
    // goal reachable (both tiers complete for every patrol seed 0..8).
    world.scatter_circles(15, 0.4, 1.0, 4);
    let goals = [Vec2::new(35.0, 35.0)];
    let embedded =
        Rover::new(RoverConfig { tier: ComputeTier::Embedded, ..RoverConfig::default() }).patrol(
            &world,
            Vec2::new(1.0, 1.0),
            &goals,
            5,
        );
    let server = Rover::new(RoverConfig { tier: ComputeTier::Server, ..RoverConfig::default() })
        .patrol(&world, Vec2::new(1.0, 1.0), &goals, 5);
    assert!(embedded.completed && server.completed);
    assert!(
        server.energy > embedded.energy,
        "over-provisioned rover burns more energy, like the UAV in E5"
    );
}

/// Localization stack interop: the particle filter localizes in a map
/// built by the dense matcher, and the pose graph cleans up a drifted
/// trajectory — three SLAM formulations over shared geometry types.
#[test]
fn localization_stacks_interoperate() {
    use magseven::kernels::grid::OccupancyGrid;
    use magseven::kernels::slam::{synthetic_room_scan, ParticleFilterConfig, PoseConstraint};

    // Build a map with raw ray integration.
    let center = Vec2::new(10.0, 10.0);
    let mut map = OccupancyGrid::new(20.0, 20.0, 0.25);
    let scan = synthetic_room_scan(Pose2::new(center, 0.0), center, 7.0, 5.0, 180);
    for _ in 0..3 {
        for (b, r) in scan.bearings.iter().zip(&scan.ranges) {
            let end = center + Vec2::new(r * b.cos(), r * b.sin());
            map.integrate_ray(center, end, true);
        }
    }
    // MCL localizes in it.
    let mut pf =
        ParticleFilter::new(ParticleFilterConfig::default(), &map, Pose2::new(center, 0.0), 1.0, 2);
    pf.update(&map, &scan);
    assert!(pf.estimate().position.distance(center) < 1.0);

    // Pose graph fixes an inconsistent two-node chain.
    let mut graph = PoseGraph::new();
    let a = graph.add_node(Pose2::identity());
    let b = graph.add_node(Pose2::new(Vec2::new(2.0, 0.5), 0.2));
    graph
        .add_constraint(PoseConstraint {
            from: a,
            to: b,
            measurement: Pose2::new(Vec2::new(1.0, 0.0), 0.0),
            information: [1.0; 3],
        })
        .expect("valid nodes");
    assert!(graph.optimize(10).expect("solvable") < 1e-9);
}

/// A* and RRT agree on reachability over equivalent obstacle fields.
#[test]
fn astar_and_rrt_agree_on_reachability() {
    use magseven::kernels::grid::OccupancyGrid;

    // Same wall, two representations.
    let mut world = CollisionWorld::new(20.0, 20.0);
    world.add_rect(Vec2::new(9.0, 0.0), Vec2::new(11.0, 20.0));
    let mut grid = OccupancyGrid::new(20.0, 20.0, 0.5);
    for i in 0..40 {
        let y = 0.25 + 0.5 * i as f64;
        for x in [9.25, 9.75, 10.25, 10.75] {
            for _ in 0..20 {
                grid.integrate_ray(Vec2::new(x, y), Vec2::new(x, y), true);
            }
        }
    }
    let start = Vec2::new(2.0, 10.0);
    let goal = Vec2::new(18.0, 10.0);
    let rrt = Rrt::new(RrtConfig { max_iterations: 3000, ..RrtConfig::default() }, 1)
        .plan(&world, start, goal);
    let grid_path = astar(&grid, start, goal, AstarConfig::default());
    assert!(rrt.is_none(), "full wall blocks RRT");
    assert!(grid_path.is_none(), "full wall blocks A*");
}

/// Challenge taxonomy is wired to the experiments it claims as evidence.
#[test]
fn challenge_coverage_is_complete() {
    let covered: usize = Challenge::ALL.iter().map(|c| c.experiments().len()).sum();
    assert!(covered >= 7);
    for c in Challenge::ALL {
        for &e in c.experiments() {
            let report = e.run(1);
            assert!(!report.tables().is_empty(), "{c} evidence {e} must run");
        }
    }
}
