//! Thread-count invariance of the observability layer: with tracing
//! enabled, running the full experiment suite (E1–E12) on a 1-thread
//! and an 8-thread pool must produce byte-identical reports AND
//! identical deterministic-class aggregate metrics.
//!
//! Scheduling-dependent metrics (`sched.*`, wall-clock histograms) are
//! explicitly diagnostic-class and excluded — that split is the
//! contract this test pins down.

use magseven::par::ParConfig;
use magseven::suite::experiments::{run_all_parallel, Timing};
use magseven::trace::{MetricValue, MetricsSnapshot};

const ROOT_SEED: u64 = 42;

fn run_suite(threads: usize) -> (String, MetricsSnapshot) {
    magseven::trace::reset();
    let reports = run_all_parallel(ROOT_SEED, Timing::Modeled, ParConfig::with_threads(threads));
    let mut text = String::new();
    for (id, report) in reports {
        text.push_str(id.slug());
        text.push('\n');
        text.push_str(&report.to_string());
        text.push('\n');
    }
    (text, magseven::trace::snapshot().deterministic_only())
}

#[test]
fn aggregate_metrics_are_thread_count_invariant_over_the_suite() {
    magseven::trace::enable();
    let (text_1, snap_1) = run_suite(1);
    let (text_8, snap_8) = run_suite(8);

    assert_eq!(text_1, text_8, "reports must be byte-identical across thread counts");
    assert!(
        snap_1.entries.iter().any(|e| e.name == "suite.experiments"),
        "the suite must have recorded metrics while tracing was on"
    );

    let names_1: Vec<&str> = snap_1.entries.iter().map(|e| e.name.as_str()).collect();
    let names_8: Vec<&str> = snap_8.entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names_1, names_8, "both runs must register the same deterministic metrics");

    for (a, b) in snap_1.entries.iter().zip(&snap_8.entries) {
        assert_eq!(
            a.value, b.value,
            "deterministic metric {:?} must not depend on the thread count",
            a.name
        );
    }

    // Spot-check a few load-bearing aggregates so an accidentally empty
    // snapshot cannot pass.
    for key in ["suite.experiments", "par.batches", "par.items", "dse.evaluations"] {
        match snap_1.get(key).map(|e| &e.value) {
            Some(MetricValue::Counter(v)) => {
                assert!(*v > 0, "{key} should be nonzero after a full suite run")
            }
            other => panic!("{key} missing or not a counter: {other:?}"),
        }
    }
}
