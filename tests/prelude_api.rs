//! The facade prelude exposes a coherent, minimal surface: everything a
//! downstream user needs for the common workflows, importable with one
//! glob.

use magseven::prelude::*;

#[test]
fn kernel_workflow_via_prelude() {
    let mut world = CollisionWorld::new(10.0, 10.0);
    world.add_circle(Vec2::new(5.0, 5.0), 1.0);
    let path = Rrt::new(RrtConfig::default(), 1)
        .plan(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0))
        .expect("solvable world");
    assert!(path.is_valid(&world));
}

#[test]
fn arch_workflow_via_prelude() {
    let roof = Roofline::new(
        OpsPerSecond::from_teraops(1.0),
        magseven::units::BytesPerSecond::from_gigabytes_per_second(100.0),
    );
    assert!(roof.ridge_point().value() > 0.0);
    let cost: CostEstimate =
        Platform::preset(PlatformKind::Fpga).estimate(&KernelProfile::gemm(64));
    assert!(cost.latency > Seconds::ZERO);
    let bus = SharedBus::new(magseven::units::BytesPerSecond::from_gigabytes_per_second(10.0));
    assert!(bus.capacity().value() > 0.0);
}

#[test]
fn sim_and_lca_workflow_via_prelude() {
    let outcome: MissionOutcome = Uav::new(UavConfig::default().with_tier(ComputeTier::Embedded))
        .fly(&MissionSpec::survey(500.0), 1);
    assert!(outcome.completed);

    let footprint =
        CarbonFootprint::new(DieSpec::new(SquareMillimeters::new(80.0), 7.0).embodied_carbon())
            .add_operation(Joules::from_kilowatt_hours(10.0), GridIntensity::EuropeanUnion);
    assert!(footprint.total().value() > 0.0);
    let fleet = FleetModel::new(1000, Watts::new(500.0), 6.0);
    assert!(fleet.annual_emissions().value() > 0.0);
}

#[test]
fn dse_and_suite_workflow_via_prelude() {
    let space = DesignSpace::new(vec![m7_dse_dim("x", 5), m7_dse_dim("y", 5)]);
    let result =
        Explorer::Exhaustive.run(&space, &|v: &[f64]| v[0] + v[1], SearchBudget::new(25), 0);
    assert_eq!(result.best_values, vec![0.0, 0.0]);
    let front = pareto_front(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]]);
    assert_eq!(front, vec![0, 1]);

    let report: Report = ExperimentId::E1Growth.run(1);
    assert_eq!(report.tables().len(), 1);
    // The alias is usable too.
    let _e: Experiment = ExperimentId::E1Growth;
}

#[test]
fn controllers_and_models_via_prelude() {
    let mut pid = Pid::new(1.0, 0.0, 0.0);
    assert_eq!(pid.update(2.0, 0.1), 2.0);
    let mlp = Mlp::new(&[2, 4, 2], 0);
    assert_eq!(mlp.classes(), 2);
    let _ = Precision::Int8;
    let _ = Vec3::new(1.0, 2.0, 3.0);
    let _ = Pose2::identity();
    let _ = EkfSlam::new(Default::default());
    let _: Lqr; // the type is nameable from the prelude
}

/// Small helper building a dimension of `n` integer levels.
fn m7_dse_dim(name: &str, n: usize) -> magseven::dse::space::Dimension {
    magseven::dse::space::Dimension::new(name, (0..n).map(|i| i as f64).collect())
}
