//! Property tests for the fault-injection layer: interval arithmetic,
//! outage merging, sampler invariants, and campaign thread-invariance,
//! each checked over hundreds of sampled schedules rather than a few
//! hand-picked ones.

use magseven::par::ParConfig;
use magseven::prelude::*;
use proptest::prelude::*;

fn harsh_schedule(seed: u64) -> FaultSchedule {
    FaultSchedule::sample(&FaultProfile::harsh(), Seconds::new(300.0), seed)
}

proptest! {
    /// `active_at` is exactly the half-open interval test on
    /// `interval()`, for every fault kind the sampler can draw —
    /// including the degenerate zero-length crash window, which is
    /// never "active".
    #[test]
    fn active_at_agrees_with_interval_arithmetic(seed in 0u64..1 << 48, t in -10.0..400.0f64) {
        let t = Seconds::new(t);
        for fault in harsh_schedule(seed).faults() {
            let (start, end) = fault.interval();
            prop_assert!(start <= end, "interval must be ordered: {fault:?}");
            prop_assert_eq!(
                fault.active_at(t),
                t >= start && t < end,
                "{:?} at t={:?}", fault, t
            );
            if let Fault::ComputeCrash { .. } = fault {
                prop_assert!(!fault.active_at(start), "point events are never active");
            }
        }
    }

    /// `merged_sensor_outages` is the exact union of the dropout and
    /// stuck windows: sorted, disjoint, and membership-equivalent to
    /// "some perception-degrading fault is active".
    #[test]
    fn merged_outages_are_the_exact_union(seed in 0u64..1 << 48, t in 0.0..320.0f64) {
        let schedule = harsh_schedule(seed);
        let merged = schedule.merged_sensor_outages();
        for pair in merged.windows(2) {
            prop_assert!(
                pair[0].1 < pair[1].0,
                "merged windows must be sorted and disjoint: {pair:?}"
            );
        }
        let t = Seconds::new(t);
        let in_union = merged.iter().any(|&(s, e)| t >= s && t < e);
        let raw_active = schedule.faults().iter().any(|f| {
            matches!(f, Fault::SensorDropout { .. } | Fault::SensorStuck { .. })
                && f.active_at(t)
        });
        prop_assert_eq!(in_union, raw_active, "union membership must match raw faults at {:?}", t);
        let raw_total: f64 = schedule
            .faults()
            .iter()
            .filter(|f| matches!(f, Fault::SensorDropout { .. } | Fault::SensorStuck { .. }))
            .map(|f| { let (s, e) = f.interval(); (e - s).value() })
            .sum();
        let merged_total: f64 = merged.iter().map(|&(s, e)| (e - s).value()).sum();
        prop_assert!(
            merged_total <= raw_total + 1e-9,
            "coalescing can only shrink covered time: {merged_total} > {raw_total}"
        );
    }

    /// The sampler's output is always a valid schedule: sorted by onset,
    /// every window inside `[0, horizon)`, and every severity parameter
    /// inside the range `FaultSchedule::new` enforces.
    #[test]
    fn sampled_schedules_are_sorted_and_in_range(seed in 0u64..1 << 48, horizon in 30.0..300.0f64) {
        let horizon = Seconds::new(horizon);
        let schedule = FaultSchedule::sample(&FaultProfile::harsh(), horizon, seed);
        let onsets: Vec<f64> = schedule.faults().iter().map(|f| f.interval().0.value()).collect();
        for pair in onsets.windows(2) {
            prop_assert!(pair[0] <= pair[1], "onsets must be sorted: {onsets:?}");
        }
        for fault in schedule.faults() {
            let (start, end) = fault.interval();
            prop_assert!(start >= Seconds::ZERO && start < horizon, "onset in horizon: {fault:?}");
            prop_assert!(end.value().is_finite() && end >= start);
            match *fault {
                Fault::SensorBias { bias_m, .. } => prop_assert!(bias_m >= 0.0),
                Fault::ComputeBrownout { slowdown, .. } => prop_assert!(slowdown >= 1.0),
                Fault::BatterySag { efficiency, .. } => {
                    prop_assert!(efficiency > 0.0 && efficiency <= 1.0);
                }
                Fault::MessageDrop { drop_rate, .. } => {
                    prop_assert!((0.0..1.0).contains(&drop_rate));
                }
                _ => {}
            }
        }
        // Re-sampling the same (profile, horizon, seed) is bit-identical.
        prop_assert_eq!(
            &schedule,
            &FaultSchedule::sample(&FaultProfile::harsh(), horizon, seed)
        );
    }

    /// A campaign aggregates to the same report on the serial path and
    /// on an 8-thread pool, for any root seed — the contract that lets
    /// E11 fan out across `M7_THREADS` without changing a byte.
    #[test]
    fn campaigns_are_thread_count_invariant(seed in 0u64..1 << 48) {
        let runner = CampaignRunner::new(
            Uav::new(UavConfig::default()),
            MissionSpec::survey(150.0),
            DegradationPolicy::full(),
            CampaignConfig::new(3, FaultProfile::harsh(), Seconds::new(60.0)),
        );
        let serial = runner.run(seed, &ParConfig::serial());
        let pooled = runner.run(seed, &ParConfig::with_threads(8));
        prop_assert_eq!(serial, pooled, "campaign must not depend on thread count");
    }
}
