//! The campaign determinism contract, end to end: the E14 report must
//! be byte-identical at 1 vs 8 threads, and a campaign checkpointed
//! through the disk-backed tiered cache must produce the byte-identical
//! report on a cold run, a resumed run, and a thread-count change —
//! with the warm resume re-evaluating nothing.

use magseven::camp::{run_campaign, CampaignPlan};
use magseven::par::ParConfig;
use magseven::serve::cache::EvalCache;
use magseven::serve::tier::{TierConfig, TieredCache};
use magseven::sim::uav::ComputeTier;
use magseven::suite::experiments::e14_campaign;

/// Tentpole requirement: the full E14 report — both tiers, curves,
/// importance tables, notes — is byte-identical at 1 vs 8 threads.
#[test]
fn e14_report_identical_at_1_vs_8_threads() {
    let one = e14_campaign::run_with_par(42, ParConfig::with_threads(1));
    let eight = e14_campaign::run_with_par(42, ParConfig::with_threads(8));
    assert_eq!(one, eight, "E14 campaign outcomes must not depend on thread count");
    assert_eq!(
        one.report().to_string(),
        eight.report().to_string(),
        "E14 report must be byte-identical at 1 vs 8 threads"
    );
}

fn small_plan() -> CampaignPlan {
    let mut plan = CampaignPlan::new(ComputeTier::Micro, 120);
    plan.chunk = 8;
    plan
}

/// Cold (memory-only) and checkpointed (disk-backed) campaigns agree
/// byte for byte, and the resumed run replays every unit from disk.
#[test]
fn cold_and_resumed_campaigns_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("m7camp-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = small_plan();

    let reference = {
        let (units, falsify) = (EvalCache::new(256), EvalCache::new(256));
        run_campaign(&plan, 7, ParConfig::with_threads(2), &units, &falsify)
    };

    let cold = {
        let units: TieredCache<magseven::camp::StratumSketch> =
            TieredCache::open(256, TierConfig::disk(dir.join("units"))).unwrap();
        let falsify: TieredCache<f64> =
            TieredCache::open(256, TierConfig::disk(dir.join("falsify"))).unwrap();
        let out = run_campaign(&plan, 7, ParConfig::with_threads(2), &units, &falsify);
        units.sync().unwrap();
        falsify.sync().unwrap();
        out
    };
    assert_eq!(cold.units_from_store, 0, "an empty store cannot replay units");
    assert_eq!(cold.strata, reference.strata);
    assert_eq!(cold.rounds, reference.rounds);
    assert_eq!(cold.coverage, reference.coverage);

    // Resume in a "fresh process": reopen the stores from disk, run at a
    // different thread count, and require zero re-evaluations.
    let resumed = {
        let units: TieredCache<magseven::camp::StratumSketch> =
            TieredCache::open(256, TierConfig::disk(dir.join("units"))).unwrap();
        let falsify: TieredCache<f64> =
            TieredCache::open(256, TierConfig::disk(dir.join("falsify"))).unwrap();
        assert!(
            units.recovery().is_some_and(|r| r.live_entries > 0),
            "the resumed store must recover the cold run's checkpoints"
        );
        run_campaign(&plan, 7, ParConfig::with_threads(8), &units, &falsify)
    };
    assert_eq!(
        resumed.units_from_store, resumed.units,
        "a warm resume must replay every unit and re-evaluate none"
    );
    assert_eq!(resumed.strata, cold.strata);
    assert_eq!(resumed.rounds, cold.rounds);
    assert_eq!(resumed.coverage, cold.coverage);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoints are keyed by the plan fingerprint: a different plan
/// sharing the same store must never replay the other plan's units.
#[test]
fn different_plans_never_share_checkpoints() {
    let units = EvalCache::new(512);
    let falsify = EvalCache::new(512);
    let a = small_plan();
    let mut b = small_plan();
    b.budget = 96;
    let _ = run_campaign(&a, 7, ParConfig::serial(), &units, &falsify);
    let out_b = run_campaign(&b, 7, ParConfig::serial(), &units, &falsify);
    assert_eq!(
        out_b.units_from_store, 0,
        "plan B must not replay plan A's units despite the shared store"
    );
}
