//! Cross-crate integration: kernels → arch → sim → dse → lca, exercised
//! together the way a designer would chain them.

use magseven::kernels::planning::{Prm, PrmConfig};
use magseven::lca::carbon::operational_carbon;
use magseven::prelude::*;
use magseven::units::{Joules, Seconds, Watts};

/// Plan with the kernels crate, profile the planner's collision workload
/// with the arch crate, and check that the modeled platform ordering is
/// consistent with the measured algorithmic behaviour.
#[test]
fn planner_workload_flows_into_cost_model() {
    let mut world = CollisionWorld::new(30.0, 30.0);
    world.scatter_circles(30, 0.4, 1.2, 11);
    let prm = Prm::build(&world, PrmConfig::default(), 3);
    assert!(prm.edge_checks() > 500);

    let workload = KernelProfile::collision_batch(prm.edge_checks(), world.len());
    let scalar = Platform::preset(PlatformKind::CpuScalar).estimate(&workload);
    let simd = Platform::preset(PlatformKind::CpuSimd).estimate(&workload);
    let asic = Platform::preset(PlatformKind::Asic).estimate(&workload);
    assert!(simd.latency < scalar.latency);
    assert!(asic.latency < simd.latency);
    assert!(asic.energy < scalar.energy);
}

/// The full co-design loop: mission simulation drives platform choice,
/// and the chosen platform's operational carbon closes the loop.
#[test]
fn mission_to_carbon_pipeline() {
    // Fly the same mission on two tiers.
    let mission = MissionSpec::survey(2000.0);
    let small = Uav::new(UavConfig::default().with_tier(ComputeTier::Embedded)).fly(&mission, 1);
    let large = Uav::new(UavConfig::default().with_tier(ComputeTier::Desktop)).fly(&mission, 1);
    assert!(small.completed && large.completed);
    assert!(small.energy < large.energy, "right-sizing saves mission energy");

    // Scale the per-mission energy difference to a fleet-year of carbon.
    let missions_per_day = 20.0;
    let annual_missions = missions_per_day * 365.0;
    let waste: Joules = (large.energy - small.energy) * annual_missions;
    let grid = GridIntensity::WorldAverage;
    let per_vehicle = operational_carbon(Watts::new(1.0), Seconds::new(waste.value()), grid, 1.0);
    assert!(
        per_vehicle.value() > 1.0,
        "over-provisioning costs kilograms of CO2e per vehicle-year: {per_vehicle}"
    );
}

/// DSE over the mission simulator lands on a design whose simulated
/// outcome actually delivers the predicted cost.
#[test]
fn dse_result_is_reproducible_in_the_simulator() {
    use magseven::suite::experiments::e9_dse;
    let space = e9_dse::uav_design_space();
    let objective = |v: &[f64]| e9_dse::mission_cost(v, 4);
    let best = Explorer::surrogate().run(&space, &objective, SearchBudget::new(30), 4);
    // Re-evaluating the chosen point yields exactly the recorded cost.
    let replay = e9_dse::mission_cost(&best.best_values, 4);
    assert_eq!(replay, best.best_cost);
}

/// The perception kernels and the pipeline simulator agree about who can
/// keep up with a camera.
#[test]
fn pipeline_keepup_matches_sustainable_rate() {
    use magseven::sim::pipeline::Pipeline;
    use magseven::sim::sensor::SensorSpec;

    let sensor = SensorSpec::camera_vga(30.0);
    let kernel = KernelProfile::feature_extract(640, 480);
    for kind in [PlatformKind::CpuScalar, PlatformKind::CpuSimd, PlatformKind::Gpu] {
        let platform = Platform::preset(kind);
        let sustainable = platform.sustainable_input_rate(&kernel, sensor.payload());
        let stats =
            Pipeline::new(sensor.clone(), platform, kernel.clone()).simulate(Seconds::new(5.0));
        let keeps_up_model = sustainable.value() > sensor.data_rate().value();
        let keeps_up_sim = stats.drop_rate() < 0.05;
        // The analytic rate check and the discrete-event simulation agree
        // except exactly at the boundary; none of these presets sit there.
        assert_eq!(keeps_up_model, keeps_up_sim, "{kind}");
    }
}

/// Units flow correctly across crate boundaries (a compile-time property
/// exercised at runtime for sanity).
#[test]
fn units_compose_across_crates() {
    let kernel = KernelProfile::gemm(128);
    let cost = Platform::preset(PlatformKind::Gpu).estimate(&kernel);
    let battery = magseven::sim::battery::Battery::new(Joules::from_watt_hours(10.0));
    // Invocations until the battery would be empty at this cost.
    let invocations = battery.capacity() / cost.energy;
    assert!(invocations > 1000.0, "a 10 Wh battery runs many GEMMs: {invocations}");
}
