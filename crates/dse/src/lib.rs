//! Design-space exploration for accelerator and system co-design.
//!
//! Implements the "Machine Learning for System Design" opportunity of the
//! paper (§3.1): given a [`space::DesignSpace`] and an
//! [`explorer::Objective`] (typically a mission-level metric from
//! `m7-sim`), search strategies from exhaustive enumeration to
//! surrogate-model-guided acquisition find good designs, and
//! [`pareto::pareto_front`] summarizes multi-objective trade-offs.
//!
//! Experiment E9 compares the strategies' sample efficiency.
//!
//! # Examples
//!
//! ```
//! use m7_dse::explorer::{Explorer, SearchBudget};
//! use m7_dse::space::{DesignSpace, Dimension};
//!
//! let space = DesignSpace::new(vec![
//!     Dimension::new("pe_count", vec![8.0, 16.0, 32.0, 64.0]),
//!     Dimension::new("sram_kib", vec![64.0, 128.0, 256.0]),
//! ]);
//! // A toy cost: prefer 32 PEs and 128 KiB.
//! let cost = |v: &[f64]| (v[0] - 32.0).abs() + (v[1] - 128.0).abs() / 10.0;
//! let best = Explorer::Exhaustive.run(&space, &cost, SearchBudget::new(12), 0);
//! assert_eq!(best.best_values, vec![32.0, 128.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explorer;
pub mod memo;
pub mod moga;
pub mod pareto;
pub mod space;
pub mod surrogate;
