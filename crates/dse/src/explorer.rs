//! Search strategies over discrete design spaces: exhaustive, random,
//! simulated annealing, genetic, and surrogate-guided (the ML-for-design
//! strategy of paper §3.1).
//!
//! Every strategy that evaluates designs in batches (exhaustive, random,
//! genetic generations, surrogate candidate scoring) runs those batches
//! through the [`m7_par`] deterministic pool: results are bit-identical
//! for any thread count, so a search seeded with `s` returns the same
//! [`SearchResult`] at `M7_THREADS=1` and `M7_THREADS=64`.

use crate::memo::{dedup_indices, EvalMemo};
use crate::space::{DesignSpace, PointIndex};
use crate::surrogate::Forest;
use m7_par::ParConfig;
use m7_serve::tier::ResultStore;
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceHistogram};
use rand::{Rng, SeedableRng};

// Search-lifecycle observability (no-ops until `m7_trace::enable()`).
// Every search decision — which points are evaluated, which batches are
// deduped, which memo probes hit — is a pure function of (space,
// objective, budget, seed), so all DSE metrics are deterministic.
static SEARCH_SPAN: SpanSite = SpanSite::new("dse.search", MetricClass::Deterministic);
static SEARCHES: TraceCounter = TraceCounter::new("dse.searches", MetricClass::Deterministic);
static EVALUATIONS: TraceCounter = TraceCounter::new("dse.evaluations", MetricClass::Deterministic);
static GENERATIONS: TraceCounter = TraceCounter::new("dse.generations", MetricClass::Deterministic);
static BATCH_ITEMS: TraceHistogram =
    TraceHistogram::new("dse.batch_items", MetricClass::Deterministic);
static MEMO_HITS: TraceCounter = TraceCounter::new("dse.memo.hits", MetricClass::Deterministic);
static MEMO_COALESCED: TraceCounter =
    TraceCounter::new("dse.memo.coalesced", MetricClass::Deterministic);

/// A design objective to *minimize* (e.g. mission energy per meter, or a
/// weighted cost).
///
/// Implementors receive the concrete level values of a design point.
pub trait Objective: Sync {
    /// Evaluates the cost of one design (lower is better).
    fn evaluate(&self, values: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64 + Sync> Objective for F {
    fn evaluate(&self, values: &[f64]) -> f64 {
        self(values)
    }
}

/// Evaluation budget for a search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
}

impl SearchBudget {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_evaluations` is zero.
    #[must_use]
    pub fn new(max_evaluations: usize) -> Self {
        assert!(max_evaluations > 0, "budget must allow at least one evaluation");
        Self { max_evaluations }
    }
}

/// The outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Index form of the best design found.
    pub best_point: PointIndex,
    /// Concrete level values of the best design.
    pub best_values: Vec<f64>,
    /// Objective value of the best design.
    pub best_cost: f64,
    /// Objective evaluations actually spent.
    pub evaluations: usize,
    /// Best-so-far cost after each evaluation — the sample-efficiency
    /// curve of experiment E9.
    pub trace: Vec<f64>,
}

/// A search strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Explorer {
    /// Evaluate every point (or the first `budget` points).
    Exhaustive,
    /// Uniform random sampling.
    Random,
    /// Simulated annealing over the neighbor graph.
    Annealing {
        /// Initial temperature (in objective units).
        initial_temperature: f64,
        /// Multiplicative cooling per step, in `(0, 1)`.
        cooling: f64,
    },
    /// A (μ + 1) genetic algorithm with tournament selection.
    Genetic {
        /// Population size.
        population: usize,
        /// Per-child probability of a mutation step.
        mutation_rate: f64,
    },
    /// Surrogate-guided search: random warm-up, then lower-confidence-bound
    /// acquisition over a bagged-tree model.
    SurrogateGuided {
        /// Random evaluations before the first model fit.
        warmup: usize,
        /// Candidate pool scored by the model per acquisition round.
        candidates: usize,
        /// Exploration weight on the model's uncertainty.
        kappa: f64,
    },
}

impl Explorer {
    /// A reasonable default annealing schedule.
    #[must_use]
    pub fn annealing() -> Self {
        Self::Annealing { initial_temperature: 1.0, cooling: 0.98 }
    }

    /// A reasonable default genetic configuration.
    #[must_use]
    pub fn genetic() -> Self {
        Self::Genetic { population: 16, mutation_rate: 0.3 }
    }

    /// A reasonable default surrogate-guided configuration.
    #[must_use]
    pub fn surrogate() -> Self {
        Self::SurrogateGuided { warmup: 10, candidates: 64, kappa: 1.0 }
    }

    /// Strategy name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Exhaustive => "exhaustive",
            Self::Random => "random",
            Self::Annealing { .. } => "annealing",
            Self::Genetic { .. } => "genetic",
            Self::SurrogateGuided { .. } => "surrogate",
        }
    }

    /// Runs the search, deterministic in `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_dse::explorer::{Explorer, SearchBudget};
    /// use m7_dse::space::{DesignSpace, Dimension};
    ///
    /// let space = DesignSpace::new(vec![
    ///     Dimension::new("x", (0..10).map(f64::from).collect()),
    ///     Dimension::new("y", (0..10).map(f64::from).collect()),
    /// ]);
    /// // Minimize distance to (7, 3).
    /// let objective = |v: &[f64]| (v[0] - 7.0).powi(2) + (v[1] - 3.0).powi(2);
    /// let result = Explorer::Exhaustive.run(&space, &objective, SearchBudget::new(100), 1);
    /// assert_eq!(result.best_values, vec![7.0, 3.0]);
    /// ```
    #[must_use]
    pub fn run(
        &self,
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
    ) -> SearchResult {
        self.run_with(space, objective, budget, seed, ParConfig::default())
    }

    /// Runs the search with an explicit parallelism configuration.
    ///
    /// The result is bit-identical for any `par` — threads change only
    /// wall-clock time — so callers may pick [`ParConfig::serial`] for
    /// latency-insensitive correctness tests and the default for sweeps.
    #[must_use]
    pub fn run_with(
        &self,
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        par: ParConfig,
    ) -> SearchResult {
        self.run_inner::<m7_serve::cache::EvalCache<f64>>(space, objective, budget, seed, par, None)
    }

    /// Runs the search with objective evaluations memoized through a
    /// content-addressed cache.
    ///
    /// The returned [`SearchResult`] is **bit-identical** to
    /// [`Explorer::run_with`] for the same arguments — objectives are
    /// pure, so the cache changes only how many times the objective is
    /// invoked (read the savings off the store's hit counters).
    /// Successive searches sharing one memo (as in experiment E9) reuse
    /// each other's evaluations — and with a disk-backed
    /// [`m7_serve::tier::TieredCache`] behind the memo, so do successive
    /// *processes*.
    #[must_use]
    pub fn run_memoized<S: ResultStore<f64>>(
        &self,
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        par: ParConfig,
        memo: &EvalMemo<'_, S>,
    ) -> SearchResult {
        self.run_inner(space, objective, budget, seed, par, Some(memo))
    }

    fn run_inner<S: ResultStore<f64>>(
        &self,
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let _span = SEARCH_SPAN.enter();
        SEARCHES.incr();
        let result = match self {
            Self::Exhaustive => Self::run_exhaustive(space, objective, budget, par, memo),
            Self::Random => Self::run_random(space, objective, budget, seed, par, memo),
            Self::Annealing { initial_temperature, cooling } => Self::run_annealing(
                space,
                objective,
                budget,
                seed,
                *initial_temperature,
                *cooling,
                memo,
            ),
            Self::Genetic { population, mutation_rate } => Self::run_genetic(
                space,
                objective,
                budget,
                seed,
                *population,
                *mutation_rate,
                par,
                memo,
            ),
            Self::SurrogateGuided { warmup, candidates, kappa } => Self::run_surrogate(
                space,
                objective,
                budget,
                seed,
                *warmup,
                *candidates,
                *kappa,
                par,
                memo,
            ),
        };
        EVALUATIONS.add(result.evaluations as u64);
        result
    }

    /// Evaluates a batch of points through the deterministic pool,
    /// dispatching each *distinct* design exactly once.
    ///
    /// Duplicate genotypes within the batch (common in late GA
    /// generations) are coalesced onto the first occurrence before
    /// dispatch; with a memo, previously seen designs are answered from
    /// the cache. Each design's cost still lands in the slot of its
    /// input index, so the output is identical to the serial
    /// `points.iter().map(...)` loop for any thread count, with or
    /// without the cache.
    fn evaluate_batch<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        points: &[PointIndex],
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> Vec<f64> {
        let (unique, assign) = dedup_indices(points);
        BATCH_ITEMS.record(points.len() as u64);
        let unique_costs: Vec<f64> = match memo {
            None => par.par_map(&unique, |&i| objective.evaluate(&space.values(&points[i]))),
            Some(memo) => {
                let (costs, outcome) = m7_serve::batch::evaluate_batch_memo(
                    memo.cache(),
                    par,
                    &unique,
                    |&i| memo.key(&space.values(&points[i])),
                    |&i| objective.evaluate(&space.values(&points[i])),
                );
                MEMO_HITS.add(outcome.cache_hits as u64);
                MEMO_COALESCED.add(outcome.coalesced as u64);
                costs
            }
        };
        assign.into_iter().map(|u| unique_costs[u]).collect()
    }

    /// Evaluates one point, through the memo when present.
    fn eval_one<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        point: &[usize],
        memo: Option<&EvalMemo<'_, S>>,
    ) -> f64 {
        let values = space.values(point);
        match memo {
            None => objective.evaluate(&values),
            Some(memo) => memo.cost_or_insert_with(&values, || objective.evaluate(&values)),
        }
    }

    fn collect(points: Vec<PointIndex>, costs: Vec<f64>, space: &DesignSpace) -> SearchResult {
        let mut best = 0usize;
        let mut trace = Vec::with_capacity(costs.len());
        let mut best_so_far = f64::INFINITY;
        for (i, &c) in costs.iter().enumerate() {
            if c < costs[best] {
                best = i;
            }
            best_so_far = best_so_far.min(c);
            trace.push(best_so_far);
        }
        SearchResult {
            best_values: space.values(&points[best]),
            best_point: points[best].clone(),
            best_cost: costs[best],
            evaluations: costs.len(),
            trace,
        }
    }

    fn run_exhaustive<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let mut points = space.enumerate();
        points.truncate(budget.max_evaluations);
        let costs = Self::evaluate_batch(space, objective, &points, par, memo);
        Self::collect(points, costs, space)
    }

    fn run_random<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<PointIndex> =
            (0..budget.max_evaluations).map(|_| space.sample(&mut rng)).collect();
        let costs = Self::evaluate_batch(space, objective, &points, par, memo);
        Self::collect(points, costs, space)
    }

    fn run_annealing<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        t0: f64,
        cooling: f64,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut current = space.sample(&mut rng);
        let mut current_cost = Self::eval_one(space, objective, &current, memo);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut trace = vec![best_cost];
        let mut temperature = t0 * current_cost.abs().max(1e-9);
        for _ in 1..budget.max_evaluations {
            let candidate = space.neighbor(&current, &mut rng);
            let cost = Self::eval_one(space, objective, &candidate, memo);
            let accept = cost <= current_cost || {
                let delta = cost - current_cost;
                rng.gen_bool((-delta / temperature.max(1e-12)).exp().clamp(0.0, 1.0))
            };
            if accept {
                current = candidate;
                current_cost = cost;
            }
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            }
            trace.push(best_cost);
            temperature *= cooling;
        }
        SearchResult {
            best_values: space.values(&best),
            best_point: best,
            best_cost,
            evaluations: trace.len(),
            trace,
        }
    }

    /// A (μ + λ) generational genetic algorithm.
    ///
    /// Each generation breeds a full batch of `population` children
    /// (RNG-driven selection runs serially so the child set is a pure
    /// function of the seed), evaluates the batch through the
    /// deterministic pool, then folds the results back into the parent
    /// pool in index order. Parallelism changes wall-clock only.
    #[allow(clippy::too_many_arguments)]
    fn run_genetic<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        population: usize,
        mutation_rate: f64,
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let population = population.max(2).min(budget.max_evaluations);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

        let seeds: Vec<PointIndex> = (0..population).map(|_| space.sample(&mut rng)).collect();
        let seed_costs = Self::evaluate_batch(space, objective, &seeds, par, memo);
        let mut pool: Vec<(PointIndex, f64)> = seeds.into_iter().zip(seed_costs).collect();

        let mut trace: Vec<f64> = Vec::with_capacity(budget.max_evaluations);
        let mut best_so_far = f64::INFINITY;
        for (_, c) in &pool {
            best_so_far = best_so_far.min(*c);
            trace.push(best_so_far);
        }

        while trace.len() < budget.max_evaluations {
            GENERATIONS.incr();
            let lambda = population.min(budget.max_evaluations - trace.len());
            // Breed the whole generation serially: the child set depends
            // only on the seed, never on evaluation scheduling.
            let pick = |rng: &mut rand_chacha::ChaCha8Rng| {
                let a = rng.gen_range(0..pool.len());
                let b = rng.gen_range(0..pool.len());
                if pool[a].1 <= pool[b].1 {
                    a
                } else {
                    b
                }
            };
            let children: Vec<PointIndex> = (0..lambda)
                .map(|_| {
                    let pa = pick(&mut rng);
                    let pb = pick(&mut rng);
                    let mut child = space.crossover(&pool[pa].0, &pool[pb].0, &mut rng);
                    if rng.gen_bool(mutation_rate.clamp(0.0, 1.0)) {
                        child = space.neighbor(&child, &mut rng);
                    }
                    child
                })
                .collect();

            let costs = Self::evaluate_batch(space, objective, &children, par, memo);

            // Fold children back in deterministic index order.
            for (child, cost) in children.into_iter().zip(costs) {
                best_so_far = best_so_far.min(cost);
                trace.push(best_so_far);
                let worst = (0..pool.len())
                    .max_by(|&a, &b| pool[a].1.partial_cmp(&pool[b].1).expect("finite costs"))
                    .expect("pool is nonempty");
                if cost < pool[worst].1 {
                    pool[worst] = (child, cost);
                }
            }
        }
        let best = pool
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("pool is nonempty");
        SearchResult {
            best_values: space.values(&best.0),
            best_point: best.0.clone(),
            best_cost: best.1,
            evaluations: trace.len(),
            trace,
        }
    }

    #[allow(clippy::too_many_arguments)]
    /// Surrogate-guided search with parallel candidate scoring.
    ///
    /// Candidate points are sampled serially (the RNG stream is a pure
    /// function of the seed); forest predictions over the pool are
    /// evaluated through the deterministic pool; the min-LCB winner is
    /// chosen by a serial first-index scan, so ties break identically
    /// at any thread count.
    #[allow(clippy::too_many_arguments)]
    fn run_surrogate<S: ResultStore<f64>>(
        space: &DesignSpace,
        objective: &dyn Objective,
        budget: SearchBudget,
        seed: u64,
        warmup: usize,
        candidates: usize,
        kappa: f64,
        par: ParConfig,
        memo: Option<&EvalMemo<'_, S>>,
    ) -> SearchResult {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let warmup = warmup.clamp(2, budget.max_evaluations);
        let mut evaluated: Vec<(PointIndex, Vec<f64>, f64)> = Vec::new();
        let mut trace = Vec::with_capacity(budget.max_evaluations);
        let mut best_so_far = f64::INFINITY;
        let spend = |point: PointIndex,
                     evaluated: &mut Vec<(PointIndex, Vec<f64>, f64)>,
                     trace: &mut Vec<f64>,
                     best_so_far: &mut f64| {
            let values = space.values(&point);
            let cost = match memo {
                None => objective.evaluate(&values),
                Some(memo) => memo.cost_or_insert_with(&values, || objective.evaluate(&values)),
            };
            *best_so_far = best_so_far.min(cost);
            trace.push(*best_so_far);
            evaluated.push((point, values, cost));
        };
        for _ in 0..warmup {
            let p = space.sample(&mut rng);
            spend(p, &mut evaluated, &mut trace, &mut best_so_far);
        }
        while trace.len() < budget.max_evaluations {
            GENERATIONS.incr();
            let xs: Vec<Vec<f64>> = evaluated.iter().map(|(_, v, _)| v.clone()).collect();
            let ys: Vec<f64> = evaluated.iter().map(|(_, _, c)| *c).collect();
            let forest = Forest::fit(&xs, &ys, 16, 6, seed ^ trace.len() as u64);
            // Sample the candidate pool serially (same RNG stream as the
            // serial path), then score it in parallel by lower confidence
            // bound. The winner is the first index attaining the minimum.
            let pool: Vec<PointIndex> = (0..candidates)
                .map(|_| space.sample(&mut rng))
                .filter(|p| !evaluated.iter().any(|(q, _, _)| q == p))
                .collect();
            let scores = par.par_map(&pool, |p| {
                let (mean, std) = forest.predict_with_uncertainty(&space.values(p));
                mean - kappa * std
            });
            let mut best_candidate: Option<(usize, f64)> = None;
            for (i, lcb) in scores.iter().enumerate() {
                if best_candidate.as_ref().is_none_or(|(_, s)| lcb < s) {
                    best_candidate = Some((i, *lcb));
                }
            }
            let next = match best_candidate {
                Some((i, _)) => pool[i].clone(),
                None => space.sample(&mut rng),
            };
            spend(next, &mut evaluated, &mut trace, &mut best_so_far);
        }
        let best = evaluated
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite costs"))
            .expect("warmup guarantees evaluations");
        SearchResult {
            best_point: best.0.clone(),
            best_values: best.1.clone(),
            best_cost: best.2,
            evaluations: trace.len(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dimension;

    fn grid_space(n: usize) -> DesignSpace {
        DesignSpace::new(vec![
            Dimension::new("x", (0..n).map(|i| i as f64).collect()),
            Dimension::new("y", (0..n).map(|i| i as f64).collect()),
        ])
    }

    /// A rugged objective with global minimum at (12, 4).
    fn rugged(v: &[f64]) -> f64 {
        let dx = v[0] - 12.0;
        let dy = v[1] - 4.0;
        dx * dx + dy * dy + 3.0 * ((v[0] * 0.9).sin() + (v[1] * 1.3).cos())
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let space = grid_space(16);
        let full = Explorer::Exhaustive.run(&space, &rugged, SearchBudget::new(256), 0);
        assert_eq!(full.evaluations, 256);
        // Verify optimality against a manual scan.
        let manual = space
            .enumerate()
            .into_iter()
            .map(|p| rugged(&space.values(&p)))
            .fold(f64::INFINITY, f64::min);
        assert!((full.best_cost - manual).abs() < 1e-12);
    }

    #[test]
    fn traces_are_monotone_nonincreasing() {
        let space = grid_space(16);
        for explorer in
            [Explorer::Random, Explorer::annealing(), Explorer::genetic(), Explorer::surrogate()]
        {
            let r = explorer.run(&space, &rugged, SearchBudget::new(60), 3);
            assert_eq!(r.evaluations, 60, "{}", explorer.name());
            for w in r.trace.windows(2) {
                assert!(w[1] <= w[0], "{} trace must be non-increasing", explorer.name());
            }
            assert_eq!(*r.trace.last().unwrap(), r.best_cost);
        }
    }

    #[test]
    fn all_strategies_approach_the_optimum() {
        let space = grid_space(16);
        let optimum =
            Explorer::Exhaustive.run(&space, &rugged, SearchBudget::new(256), 0).best_cost;
        for explorer in [Explorer::annealing(), Explorer::genetic(), Explorer::surrogate()] {
            let r = explorer.run(&space, &rugged, SearchBudget::new(120), 5);
            assert!(
                r.best_cost < optimum + 25.0,
                "{} landed too far from optimum: {} vs {optimum}",
                explorer.name(),
                r.best_cost
            );
        }
    }

    #[test]
    fn surrogate_beats_random_on_average() {
        // With a modest budget on a larger space, model guidance should win
        // on average across seeds.
        let space = grid_space(32);
        let budget = SearchBudget::new(40);
        let mut surrogate_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..8 {
            surrogate_total += Explorer::surrogate().run(&space, &rugged, budget, seed).best_cost;
            random_total += Explorer::Random.run(&space, &rugged, budget, seed).best_cost;
        }
        assert!(
            surrogate_total < random_total,
            "surrogate {surrogate_total} should beat random {random_total}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = grid_space(16);
        for explorer in [Explorer::Random, Explorer::annealing(), Explorer::genetic()] {
            let a = explorer.run(&space, &rugged, SearchBudget::new(50), 9);
            let b = explorer.run(&space, &rugged, SearchBudget::new(50), 9);
            assert_eq!(a, b, "{}", explorer.name());
        }
    }

    #[test]
    fn memoized_results_are_bit_identical_to_unmemoized() {
        use m7_serve::cache::EvalCache;
        use m7_serve::key::namespace;

        let space = grid_space(16);
        let budget = SearchBudget::new(60);
        for explorer in [
            Explorer::Exhaustive,
            Explorer::Random,
            Explorer::annealing(),
            Explorer::genetic(),
            Explorer::surrogate(),
        ] {
            let plain = explorer.run(&space, &rugged, budget, 11);
            let cache = EvalCache::new(4096);
            let memo = EvalMemo::new(&cache, namespace("rugged", 11));
            let memoized =
                explorer.run_memoized(&space, &rugged, budget, 11, ParConfig::default(), &memo);
            assert_eq!(plain, memoized, "{} diverged under memoization", explorer.name());
            // A bitwise check on the trace, not just PartialEq.
            let identical =
                plain.trace.iter().zip(&memoized.trace).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{} trace diverged bitwise", explorer.name());
        }
    }

    #[test]
    fn memoized_rerun_invokes_the_objective_strictly_less() {
        use m7_serve::cache::EvalCache;
        use m7_serve::key::namespace;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let space = grid_space(8);
        let budget = SearchBudget::new(50);
        let calls = AtomicUsize::new(0);
        let counting = |v: &[f64]| {
            calls.fetch_add(1, Ordering::Relaxed);
            rugged(v)
        };

        let baseline = Explorer::genetic().run(&space, &counting, budget, 3);
        let uncached_calls = calls.swap(0, Ordering::Relaxed);

        let cache = EvalCache::new(4096);
        let memo = EvalMemo::new(&cache, namespace("rugged", 3));
        // Warm the cache with the exhaustive sweep, as E9 does.
        let _ = Explorer::Exhaustive.run_memoized(
            &space,
            &counting,
            SearchBudget::new(space.cardinality()),
            3,
            ParConfig::default(),
            &memo,
        );
        calls.store(0, Ordering::Relaxed);
        let memoized = Explorer::genetic().run_memoized(
            &space,
            &counting,
            budget,
            3,
            ParConfig::default(),
            &memo,
        );
        let cached_calls = calls.load(Ordering::Relaxed);
        assert_eq!(baseline, memoized);
        assert_eq!(cached_calls, 0, "a warm cache answers every design");
        assert!(uncached_calls > 0);
        assert!(cache.stats().hits > 0, "savings must be visible in the counters");
    }

    #[test]
    fn duplicate_genotypes_are_dispatched_once_per_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A 1-point-wide space forces every sample to the same genotype:
        // any batch is 100% duplicates.
        let space = DesignSpace::new(vec![Dimension::new("only", vec![1.0])]);
        let calls = AtomicUsize::new(0);
        let counting = |_: &[f64]| {
            calls.fetch_add(1, Ordering::Relaxed);
            0.0
        };
        let r = Explorer::Random.run(&space, &counting, SearchBudget::new(30), 0);
        assert_eq!(r.evaluations, 30, "budget accounting is unchanged by dedup");
        assert_eq!(calls.load(Ordering::Relaxed), 1, "one dispatch for 30 identical designs");
    }

    #[test]
    fn budget_is_respected() {
        let space = grid_space(8);
        for explorer in [
            Explorer::Exhaustive,
            Explorer::Random,
            Explorer::annealing(),
            Explorer::genetic(),
            Explorer::surrogate(),
        ] {
            let r = explorer.run(&space, &rugged, SearchBudget::new(25), 1);
            assert!(r.evaluations <= 25, "{} overspent", explorer.name());
        }
    }
}
