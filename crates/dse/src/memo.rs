//! Memoized objective evaluation for search strategies.
//!
//! [`EvalMemo`] binds an [`EvalCache`] to a key namespace (one objective
//! function at one root seed), so that [`Explorer`](crate::explorer::Explorer)
//! runs — and successive runs sharing a cache, like E9's five strategies
//! over the same mission objective — stop re-scoring duplicate designs.
//!
//! Because objectives are pure, memoization never changes a result: a
//! memoized search returns a [`SearchResult`](crate::explorer::SearchResult)
//! bit-identical to the unmemoized one, it just invokes the objective
//! fewer times.

use crate::space::PointIndex;
use m7_serve::cache::EvalCache;
use m7_serve::key::{CacheKey, KeyHasher};
use m7_serve::tier::ResultStore;

/// A cache handle scoped to one objective: keys mix the namespace with
/// the design's concrete values (bit-exact, via `to_bits`).
///
/// Generic over the backing store: the default is the in-memory
/// [`EvalCache`], and any [`ResultStore`] — notably the disk-backed
/// [`m7_serve::tier::TieredCache`] — slots in unchanged, so a search can
/// reuse results across *processes*, not just across strategies.
///
/// # Examples
///
/// ```
/// use m7_dse::memo::EvalMemo;
/// use m7_serve::cache::EvalCache;
/// use m7_serve::key::namespace;
///
/// let cache = EvalCache::new(1024);
/// let memo = EvalMemo::new(&cache, namespace("my-objective", 42));
/// assert_eq!(memo.key(&[1.0, 2.0]), memo.key(&[1.0, 2.0]));
/// assert_ne!(memo.key(&[1.0, 2.0]), memo.key(&[1.0, 2.5]));
/// ```
pub struct EvalMemo<'a, S: ResultStore<f64> = EvalCache<f64>> {
    cache: &'a S,
    namespace: u64,
}

// Derived Clone/Copy would require `S: Clone`; the handle is only a
// reference plus a u64, so implement them directly.
impl<S: ResultStore<f64>> Clone for EvalMemo<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: ResultStore<f64>> Copy for EvalMemo<'_, S> {}

impl<'a, S: ResultStore<f64>> EvalMemo<'a, S> {
    /// Binds `cache` under `namespace` (derive one with
    /// [`m7_serve::key::namespace`]).
    #[must_use]
    pub fn new(cache: &'a S, namespace: u64) -> Self {
        Self { cache, namespace }
    }

    /// The content-addressed key for a design's concrete values.
    #[must_use]
    pub fn key(&self, values: &[f64]) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_u64(self.namespace);
        h.write_f64_slice(values);
        h.finish()
    }

    /// The underlying store.
    #[must_use]
    pub fn cache(&self) -> &'a S {
        self.cache
    }

    /// Returns the memoized cost of `values`, computing and storing it on
    /// a miss.
    pub fn cost_or_insert_with(&self, values: &[f64], compute: impl FnOnce() -> f64) -> f64 {
        self.cache.get_or_insert_with(self.key(values), compute).0
    }
}

impl<S: ResultStore<f64>> core::fmt::Debug for EvalMemo<'_, S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EvalMemo").field("namespace", &self.namespace).finish()
    }
}

/// Coalesces duplicate design points within one evaluation batch.
///
/// Returns `(unique, assign)` where `unique` holds the index of the
/// first occurrence of each distinct point (in first-seen order, so the
/// mapping is deterministic and insertion-order stable) and
/// `assign[i]` is the position in `unique` owning point `i`'s result.
/// Population scoring uses this so a GA generation never dispatches the
/// same genotype twice in one batch — independent of any cache.
#[must_use]
pub fn dedup_indices(points: &[PointIndex]) -> (Vec<usize>, Vec<usize>) {
    let mut first: std::collections::HashMap<&[usize], usize> = std::collections::HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    let mut assign: Vec<usize> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let pos = match first.get(p.as_slice()) {
            Some(&pos) => pos,
            None => {
                let pos = unique.len();
                first.insert(p.as_slice(), pos);
                unique.push(i);
                pos
            }
        };
        assign.push(pos);
    }
    (unique, assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_maps_every_slot_to_its_first_occurrence() {
        let points: Vec<PointIndex> =
            vec![vec![0, 1], vec![2, 2], vec![0, 1], vec![3, 0], vec![2, 2], vec![0, 1]];
        let (unique, assign) = dedup_indices(&points);
        assert_eq!(unique, vec![0, 1, 3]);
        assert_eq!(assign, vec![0, 1, 0, 2, 1, 0]);
        // Reconstruction covers every slot.
        for (i, &u) in assign.iter().enumerate() {
            assert_eq!(points[unique[u]], points[i]);
        }
    }

    #[test]
    fn dedup_of_distinct_points_is_identity() {
        let points: Vec<PointIndex> = (0..5).map(|i| vec![i]).collect();
        let (unique, assign) = dedup_indices(&points);
        assert_eq!(unique, vec![0, 1, 2, 3, 4]);
        assert_eq!(assign, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dedup_of_empty_batch() {
        let (unique, assign) = dedup_indices(&[]);
        assert!(unique.is_empty() && assign.is_empty());
    }

    #[test]
    fn memo_returns_cached_cost_without_recompute() {
        let cache = EvalCache::new(16);
        let memo = EvalMemo::new(&cache, 7);
        assert_eq!(memo.cost_or_insert_with(&[1.0], || 5.0), 5.0);
        assert_eq!(memo.cost_or_insert_with(&[1.0], || unreachable!("cached")), 5.0);
        assert_eq!(cache.stats().hits, 1);
    }
}
