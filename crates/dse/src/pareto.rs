//! Pareto-front extraction for multi-objective design comparison.
//!
//! The paper's Challenge 2 insists that accelerator quality is
//! multi-dimensional (latency *and* energy *and* accuracy *and* cost); the
//! Pareto front is the honest summary of such trade spaces.

/// Indices of the non-dominated points among `points`, where every
/// objective is minimized.
///
/// A point dominates another if it is no worse in every objective and
/// strictly better in at least one. Ties (identical points) are all kept.
///
/// # Examples
///
/// ```
/// use m7_dse::pareto::pareto_front;
///
/// let designs = vec![
///     vec![1.0, 10.0], // fast but hungry — on the front
///     vec![5.0, 2.0],  // slow but frugal — on the front
///     vec![4.0, 11.0], // dominated by the first
/// ];
/// let front = pareto_front(&designs);
/// assert_eq!(front, vec![0, 1]);
/// ```
///
/// # Panics
///
/// Panics if points have inconsistent dimensionality.
#[must_use]
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "inconsistent objective dimensionality");
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = q.iter().zip(p).all(|(a, b)| a <= b);
            let strictly_better = q.iter().zip(p).any(|(a, b)| a < b);
            if no_worse && strictly_better {
                continue 'outer; // p is dominated by q
            }
        }
        front.push(i);
    }
    front
}

/// The hypervolume indicator in 2D (area dominated by the front up to a
/// reference point), a scalar front-quality metric. Minimization in both
/// objectives.
///
/// # Panics
///
/// Panics if any point is not 2-dimensional.
#[must_use]
pub fn hypervolume_2d(points: &[Vec<f64>], reference: (f64, f64)) -> f64 {
    assert!(points.iter().all(|p| p.len() == 2), "hypervolume_2d requires 2-D points");
    let front_idx = pareto_front(points);
    let mut front: Vec<(f64, f64)> = front_idx
        .into_iter()
        .map(|i| (points[i][0], points[i][1]))
        .filter(|&(x, y)| x <= reference.0 && y <= reference.1)
        .collect();
    front.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite objectives"));
    front.dedup();
    let mut area = 0.0;
    let mut prev_y = reference.1;
    for &(x, y) in &front {
        if y < prev_y {
            area += (reference.0 - x) * (prev_y - y);
            prev_y = y;
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn single_point_is_front() {
        assert_eq!(pareto_front(&[vec![3.0, 4.0]]), vec![0]);
    }

    #[test]
    fn identical_points_all_kept() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn clear_domination() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
        assert_eq!(pareto_front(&pts), vec![0, 2]);
    }

    #[test]
    fn three_objectives() {
        let pts = vec![
            vec![1.0, 5.0, 5.0],
            vec![5.0, 1.0, 5.0],
            vec![5.0, 5.0, 1.0],
            vec![6.0, 6.0, 6.0], // dominated by all
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn hypervolume_of_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], (3.0, 3.0));
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_grows_with_better_front() {
        let worse = hypervolume_2d(&[vec![2.0, 2.0]], (4.0, 4.0));
        let better = hypervolume_2d(&[vec![2.0, 2.0], vec![1.0, 3.0]], (4.0, 4.0));
        assert!(better > worse);
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        let hv = hypervolume_2d(&[vec![5.0, 5.0]], (4.0, 4.0));
        assert_eq!(hv, 0.0);
    }

    proptest! {
        #[test]
        fn prop_front_members_are_mutually_nondominated(
            pts in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 2), 1..30),
        ) {
            let front = pareto_front(&pts);
            prop_assert!(!front.is_empty());
            for &i in &front {
                for &j in &front {
                    if i == j { continue; }
                    let dominates = pts[j].iter().zip(&pts[i]).all(|(a, b)| a <= b)
                        && pts[j].iter().zip(&pts[i]).any(|(a, b)| a < b);
                    prop_assert!(!dominates, "front member {j} dominates front member {i}");
                }
            }
        }

        #[test]
        fn prop_every_point_dominated_by_some_front_member_or_on_front(
            pts in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 2), 1..30),
        ) {
            let front = pareto_front(&pts);
            for (i, p) in pts.iter().enumerate() {
                if front.contains(&i) { continue; }
                let covered = front.iter().any(|&j| {
                    pts[j].iter().zip(p).all(|(a, b)| a <= b)
                        && pts[j].iter().zip(p).any(|(a, b)| a < b)
                });
                prop_assert!(covered, "non-front point {i} not dominated by any front member");
            }
        }
    }
}
