//! Discrete design spaces: named dimensions with enumerated levels.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dimension of a design space: a name plus its discrete levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimension {
    name: String,
    levels: Vec<f64>,
}

impl Dimension {
    /// Creates a dimension.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "a dimension needs at least one level");
        Self { name: name.into(), levels }
    }

    /// Dimension name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The discrete levels.
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }
}

/// A point in a design space, stored as one level index per dimension.
pub type PointIndex = Vec<usize>;

/// A discrete, enumerable design space.
///
/// # Examples
///
/// ```
/// use m7_dse::space::{DesignSpace, Dimension};
///
/// let space = DesignSpace::new(vec![
///     Dimension::new("lanes", vec![1.0, 4.0, 16.0]),
///     Dimension::new("sram_kib", vec![64.0, 256.0]),
/// ]);
/// assert_eq!(space.cardinality(), 6);
/// let values = space.values(&[2, 1]);
/// assert_eq!(values, vec![16.0, 256.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    dimensions: Vec<Dimension>,
}

impl DesignSpace {
    /// Creates a space from its dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions` is empty.
    #[must_use]
    pub fn new(dimensions: Vec<Dimension>) -> Self {
        assert!(!dimensions.is_empty(), "a design space needs at least one dimension");
        Self { dimensions }
    }

    /// The dimensions.
    #[must_use]
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dimensions.len()
    }

    /// Returns `true` if the space has no dimensions (never true for a
    /// constructed space).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Total number of design points.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.dimensions.iter().map(|d| d.levels().len()).product()
    }

    /// The concrete level values at `point`.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong arity or an index is out of range.
    #[must_use]
    pub fn values(&self, point: &[usize]) -> Vec<f64> {
        assert_eq!(point.len(), self.len(), "point arity mismatch");
        point
            .iter()
            .zip(&self.dimensions)
            .map(|(&i, d)| {
                assert!(i < d.levels().len(), "level index out of range for {}", d.name());
                d.levels()[i]
            })
            .collect()
    }

    /// Enumerates every point in row-major order.
    #[must_use]
    pub fn enumerate(&self) -> Vec<PointIndex> {
        let mut out = Vec::with_capacity(self.cardinality());
        let mut current = vec![0usize; self.len()];
        loop {
            out.push(current.clone());
            // Odometer increment.
            let mut dim = self.len();
            loop {
                if dim == 0 {
                    return out;
                }
                dim -= 1;
                current[dim] += 1;
                if current[dim] < self.dimensions[dim].levels().len() {
                    break;
                }
                current[dim] = 0;
                if dim == 0 {
                    return out;
                }
            }
        }
    }

    /// Draws a uniformly random point.
    #[must_use]
    pub fn sample(&self, rng: &mut impl Rng) -> PointIndex {
        self.dimensions.iter().map(|d| rng.gen_range(0..d.levels().len())).collect()
    }

    /// Returns a neighbor of `point`: one dimension nudged by ±1 level
    /// (clamped). Used by annealing and genetic mutation.
    #[must_use]
    pub fn neighbor(&self, point: &[usize], rng: &mut impl Rng) -> PointIndex {
        let mut out = point.to_vec();
        let dim = rng.gen_range(0..self.len());
        let max = self.dimensions[dim].levels().len() - 1;
        if max == 0 {
            return out;
        }
        let up = rng.gen_bool(0.5);
        out[dim] = if up { (out[dim] + 1).min(max) } else { out[dim].saturating_sub(1) };
        out
    }

    /// Uniform crossover of two parents.
    ///
    /// # Panics
    ///
    /// Panics if the parents have the wrong arity.
    #[must_use]
    pub fn crossover(&self, a: &[usize], b: &[usize], rng: &mut impl Rng) -> PointIndex {
        assert_eq!(a.len(), self.len(), "parent arity mismatch");
        assert_eq!(b.len(), self.len(), "parent arity mismatch");
        a.iter().zip(b).map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Dimension::new("a", vec![1.0, 2.0, 3.0]),
            Dimension::new("b", vec![10.0, 20.0]),
            Dimension::new("c", vec![0.5]),
        ])
    }

    #[test]
    fn cardinality_and_enumeration() {
        let s = space();
        assert_eq!(s.cardinality(), 6);
        let all = s.enumerate();
        assert_eq!(all.len(), 6);
        // All distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        // First and last in row-major order.
        assert_eq!(all[0], vec![0, 0, 0]);
        assert_eq!(all[5], vec![2, 1, 0]);
    }

    #[test]
    fn values_lookup() {
        let s = space();
        assert_eq!(s.values(&[1, 0, 0]), vec![2.0, 10.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn values_rejects_wrong_arity() {
        let _ = space().values(&[0, 0]);
    }

    #[test]
    fn sample_is_in_range() {
        let s = space();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let p = s.sample(&mut rng);
            for (i, d) in s.dimensions().iter().enumerate() {
                assert!(p[i] < d.levels().len());
            }
        }
    }

    #[test]
    fn neighbor_moves_one_step() {
        let s = space();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let p = vec![1, 0, 0];
        for _ in 0..50 {
            let n = s.neighbor(&p, &mut rng);
            let moved: usize = p.iter().zip(&n).filter(|(a, b)| a != b).count();
            assert!(moved <= 1, "at most one dimension moves");
            for (i, d) in s.dimensions().iter().enumerate() {
                assert!(n[i] < d.levels().len());
            }
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let s = space();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a = vec![0, 0, 0];
        let b = vec![2, 1, 0];
        for _ in 0..20 {
            let child = s.crossover(&a, &b, &mut rng);
            for (i, &g) in child.iter().enumerate() {
                assert!(g == a[i] || g == b[i]);
            }
        }
    }
}
