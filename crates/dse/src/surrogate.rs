//! A bagged regression-tree surrogate model — the "ML for system design"
//! component (paper §3.1) that guides sample-efficient exploration in
//! experiment E9.

use rand::{Rng, SeedableRng};

/// A binary regression tree (CART) with variance-reduction splits.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf { prediction: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

impl RegressionTree {
    /// Fits a tree to `(features, targets)` with the given depth and
    /// minimum leaf size.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or rows have unequal lengths.
    #[must_use]
    pub fn fit(features: &[Vec<f64>], targets: &[f64], max_depth: usize, min_leaf: usize) -> Self {
        assert!(!features.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(features.len(), targets.len(), "feature/target length mismatch");
        let dim = features[0].len();
        assert!(features.iter().all(|f| f.len() == dim), "ragged feature rows");
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..features.len()).collect();
        Self::build(&mut nodes, features, targets, &indices, max_depth, min_leaf.max(1));
        Self { nodes }
    }

    fn build(
        nodes: &mut Vec<TreeNode>,
        features: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64;
        if depth == 0 || indices.len() < 2 * min_leaf {
            nodes.push(TreeNode::Leaf { prediction: mean });
            return nodes.len() - 1;
        }
        // Best split by sum-of-squares reduction.
        let dim = features[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        #[allow(clippy::needless_range_loop)]
        for f in 0..dim {
            let mut values: Vec<f64> = indices.iter().map(|&i| features[i][f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            values.dedup();
            for w in values.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
                for &i in indices {
                    if features[i][f] <= threshold {
                        ls += targets[i];
                        lc += 1;
                    } else {
                        rs += targets[i];
                        rc += 1;
                    }
                }
                if lc < min_leaf || rc < min_leaf {
                    continue;
                }
                // Maximizing between-group sum of squares.
                let score = ls * ls / lc as f64 + rs * rs / rc as f64;
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((f, threshold, score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            nodes.push(TreeNode::Leaf { prediction: mean });
            return nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| features[i][feature] <= threshold);
        let slot = nodes.len();
        nodes.push(TreeNode::Leaf { prediction: mean }); // placeholder
        let left = Self::build(nodes, features, targets, &left_idx, depth - 1, min_leaf);
        let right = Self::build(nodes, features, targets, &right_idx, depth - 1, min_leaf);
        nodes[slot] = TreeNode::Split { feature, threshold, left, right };
        slot
    }

    /// Predicts the target for one feature vector.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { prediction } => return *prediction,
                TreeNode::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A bagged ensemble of regression trees with prediction uncertainty.
///
/// # Examples
///
/// ```
/// use m7_dse::surrogate::Forest;
///
/// // y = x0 + 10·x1 on a small grid.
/// let xs: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0] + 10.0 * x[1]).collect();
/// let forest = Forest::fit(&xs, &ys, 20, 6, 42);
/// let (mean, _std) = forest.predict_with_uncertainty(&[4.0, 2.0]);
/// assert!((mean - 24.0).abs() < 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<RegressionTree>,
}

impl Forest {
    /// Fits `n_trees` trees on bootstrap resamples, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `n_trees == 0`.
    #[must_use]
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        n_trees: usize,
        max_depth: usize,
        seed: u64,
    ) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        assert!(!features.is_empty(), "cannot fit to an empty dataset");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = features.len();
        let trees = (0..n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let fs: Vec<Vec<f64>> = sample.iter().map(|&i| features[i].clone()).collect();
                let ts: Vec<f64> = sample.iter().map(|&i| targets[i]).collect();
                RegressionTree::fit(&fs, &ts, max_depth, 2)
            })
            .collect();
        Self { trees }
    }

    /// Ensemble size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Returns `true` if the ensemble is empty (never true once fitted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Mean prediction across trees.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    /// Mean and standard deviation across trees — the uncertainty the
    /// acquisition function exploits.
    #[must_use]
    pub fn predict_with_uncertainty(&self, features: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(features)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_dataset(f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64, j as f64);
                xs.push(vec![a, b]);
                ys.push(f(a, b));
            }
        }
        (xs, ys)
    }

    #[test]
    fn tree_fits_step_function() {
        let (xs, ys) = grid_dataset(|a, _| if a < 5.0 { 0.0 } else { 100.0 });
        let tree = RegressionTree::fit(&xs, &ys, 4, 2);
        assert!(tree.predict(&[2.0, 3.0]) < 10.0);
        assert!(tree.predict(&[8.0, 3.0]) > 90.0);
    }

    #[test]
    fn tree_depth_zero_is_constant() {
        let (xs, ys) = grid_dataset(|a, b| a + b);
        let tree = RegressionTree::fit(&xs, &ys, 0, 2);
        let p1 = tree.predict(&[0.0, 0.0]);
        let p2 = tree.predict(&[9.0, 9.0]);
        assert_eq!(p1, p2, "depth-0 tree predicts the global mean everywhere");
        assert!((p1 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn forest_approximates_linear_function() {
        let (xs, ys) = grid_dataset(|a, b| 3.0 * a - 2.0 * b);
        let forest = Forest::fit(&xs, &ys, 30, 8, 7);
        let mut total_err = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            total_err += (forest.predict(x) - y).abs();
        }
        let mae = total_err / xs.len() as f64;
        assert!(mae < 2.0, "forest MAE {mae} too high");
    }

    #[test]
    fn uncertainty_is_higher_off_grid() {
        let (xs, ys) = grid_dataset(|a, b| a * b);
        let forest = Forest::fit(&xs, &ys, 25, 6, 9);
        let (_, on_grid) = forest.predict_with_uncertainty(&[5.0, 5.0]);
        let (_, off_grid) = forest.predict_with_uncertainty(&[50.0, 50.0]);
        // Extrapolation at least should not be more confident.
        assert!(off_grid >= on_grid * 0.5);
    }

    #[test]
    fn forest_is_deterministic() {
        let (xs, ys) = grid_dataset(|a, b| a + b);
        let f1 = Forest::fit(&xs, &ys, 10, 5, 3);
        let f2 = Forest::fit(&xs, &ys, 10, 5, 3);
        for x in &xs {
            assert_eq!(f1.predict(x), f2.predict(x));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_dataset() {
        let _ = RegressionTree::fit(&[], &[], 3, 2);
    }
}
