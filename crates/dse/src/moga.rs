//! Multi-objective genetic search (NSGA-II-lite): non-dominated sorting
//! plus crowding-distance selection over a discrete design space.
//!
//! Where [`crate::explorer::Explorer`] optimizes one scalar,
//! [`nsga2`] evolves a whole latency/energy/area front at once — the
//! honest output for accelerator design studies (paper Challenge 2).

use crate::memo::dedup_indices;
use crate::pareto::pareto_front;
use crate::space::{DesignSpace, PointIndex};
use m7_par::ParConfig;
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceGauge};
use rand::{Rng, SeedableRng};

// Multi-objective search observability (no-ops until
// `m7_trace::enable()`). Selection and breeding are serial, so the
// front and generation counts are seed-deterministic.
static NSGA2_SPAN: SpanSite = SpanSite::new("dse.nsga2", MetricClass::Deterministic);
static NSGA2_GENERATIONS: TraceCounter =
    TraceCounter::new("dse.nsga2.generations", MetricClass::Deterministic);
static FRONT_SIZE: TraceGauge =
    TraceGauge::new("dse.pareto.front_size", MetricClass::Deterministic);

/// A multi-objective cost function: every objective is minimized.
pub trait MultiObjective: Sync {
    /// Evaluates all objectives for one design's level values.
    fn evaluate(&self, values: &[f64]) -> Vec<f64>;
}

impl<F: Fn(&[f64]) -> Vec<f64> + Sync> MultiObjective for F {
    fn evaluate(&self, values: &[f64]) -> Vec<f64> {
        self(values)
    }
}

/// One member of the final front.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontMember {
    /// Design point (level indices).
    pub point: PointIndex,
    /// Concrete level values.
    pub values: Vec<f64>,
    /// Objective vector.
    pub objectives: Vec<f64>,
}

/// Assigns non-domination ranks (0 = best front) to objective vectors.
fn rank_population(objectives: &[Vec<f64>]) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; objectives.len()];
    let mut remaining: Vec<usize> = (0..objectives.len()).collect();
    let mut rank = 0usize;
    while !remaining.is_empty() {
        let subset: Vec<Vec<f64>> = remaining.iter().map(|&i| objectives[i].clone()).collect();
        let front = pareto_front(&subset);
        let front_ids: Vec<usize> = front.iter().map(|&k| remaining[k]).collect();
        for &i in &front_ids {
            ranks[i] = rank;
        }
        remaining.retain(|i| !front_ids.contains(i));
        rank += 1;
    }
    ranks
}

/// Crowding distance within one rank (larger = more isolated = preferred).
fn crowding(objectives: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let mut distance = vec![0.0f64; members.len()];
    if members.len() <= 2 {
        return vec![f64::INFINITY; members.len()];
    }
    let dims = objectives[members[0]].len();
    #[allow(clippy::needless_range_loop)]
    for d in 0..dims {
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by(|&a, &b| {
            objectives[members[a]][d]
                .partial_cmp(&objectives[members[b]][d])
                .expect("finite objectives")
        });
        let lo = objectives[members[order[0]]][d];
        let hi = objectives[members[*order.last().expect("nonempty")]][d];
        let span = (hi - lo).max(1e-12);
        distance[order[0]] = f64::INFINITY;
        distance[*order.last().expect("nonempty")] = f64::INFINITY;
        for w in 1..order.len() - 1 {
            let prev = objectives[members[order[w - 1]]][d];
            let next = objectives[members[order[w + 1]]][d];
            distance[order[w]] += (next - prev) / span;
        }
    }
    distance
}

/// Runs NSGA-II-lite for `generations` over a population of `population`,
/// returning the final non-dominated front (deduplicated by design
/// point). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `population < 4`.
///
/// # Examples
///
/// ```
/// use m7_dse::moga::nsga2;
/// use m7_dse::space::{DesignSpace, Dimension};
///
/// let space = DesignSpace::new(vec![
///     Dimension::new("x", (0..16).map(|i| i as f64).collect()),
/// ]);
/// // Trade-off: f0 = x, f1 = 15 - x. Every point is Pareto-optimal.
/// let front = nsga2(&space, &|v: &[f64]| vec![v[0], 15.0 - v[0]], 20, 24, 1);
/// assert!(front.len() > 8, "most of the trade-off line should be found");
/// ```
#[must_use]
pub fn nsga2(
    space: &DesignSpace,
    objective: &dyn MultiObjective,
    generations: usize,
    population: usize,
    seed: u64,
) -> Vec<FrontMember> {
    nsga2_with(space, objective, generations, population, seed, ParConfig::default())
}

/// [`nsga2`] with an explicit parallel-execution configuration.
///
/// Objective vectors for the parent seeding and every generation's
/// offspring are evaluated through the deterministic pool; selection and
/// breeding stay serial so the front is bit-identical at any thread
/// count.
///
/// # Panics
///
/// Panics if `population < 4`.
#[must_use]
pub fn nsga2_with(
    space: &DesignSpace,
    objective: &dyn MultiObjective,
    generations: usize,
    population: usize,
    seed: u64,
    par: ParConfig,
) -> Vec<FrontMember> {
    assert!(population >= 4, "population must be at least 4");
    let _span = NSGA2_SPAN.enter();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    // Duplicate genotypes within a generation (common once the front
    // converges) are scored once and the vector is scattered back — the
    // returned batch is identical, only fewer objective calls run.
    let evaluate_batch = |ps: &[PointIndex]| -> Vec<Vec<f64>> {
        let (unique, assign) = dedup_indices(ps);
        let unique_objs = par.par_map(&unique, |&i| objective.evaluate(&space.values(&ps[i])));
        assign.into_iter().map(|u| unique_objs[u].clone()).collect()
    };

    let mut points: Vec<PointIndex> = (0..population).map(|_| space.sample(&mut rng)).collect();
    let mut objs: Vec<Vec<f64>> = evaluate_batch(&points);

    for _ in 0..generations {
        NSGA2_GENERATIONS.incr();
        // Produce offspring: binary tournament on (rank, crowding).
        let ranks = rank_population(&objs);
        let mut crowd = vec![0.0f64; points.len()];
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        for r in 0..=max_rank {
            let members: Vec<usize> = (0..points.len()).filter(|&i| ranks[i] == r).collect();
            for (k, &m) in members.iter().enumerate() {
                crowd[m] = crowding(&objs, &members)[k];
            }
        }
        let pick = |rng: &mut rand_chacha::ChaCha8Rng| {
            let a = rng.gen_range(0..points.len());
            let b = rng.gen_range(0..points.len());
            if (ranks[a], std::cmp::Reverse(ordered(crowd[a])))
                < (ranks[b], std::cmp::Reverse(ordered(crowd[b])))
            {
                a
            } else {
                b
            }
        };
        let mut children: Vec<PointIndex> = Vec::with_capacity(population);
        while children.len() < population {
            let pa = pick(&mut rng);
            let pb = pick(&mut rng);
            let mut child = space.crossover(&points[pa], &points[pb], &mut rng);
            if rng.gen_bool(0.4) {
                child = space.neighbor(&child, &mut rng);
            }
            children.push(child);
        }
        let child_objs: Vec<Vec<f64>> = evaluate_batch(&children);

        // Environmental selection over parents + children.
        points.extend(children);
        objs.extend(child_objs);
        let ranks = rank_population(&objs);
        let mut order: Vec<usize> = (0..points.len()).collect();
        // Precompute crowding per rank.
        let mut crowd = vec![0.0f64; points.len()];
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        for r in 0..=max_rank {
            let members: Vec<usize> = (0..points.len()).filter(|&i| ranks[i] == r).collect();
            for (k, &m) in members.iter().enumerate() {
                crowd[m] = crowding(&objs, &members)[k];
            }
        }
        order.sort_by(|&a, &b| {
            ranks[a]
                .cmp(&ranks[b])
                .then_with(|| ordered(crowd[b]).partial_cmp(&ordered(crowd[a])).expect("ordered"))
        });
        order.truncate(population);
        points = order.iter().map(|&i| points[i].clone()).collect();
        objs = order.iter().map(|&i| objs[i].clone()).collect();
    }

    // Final front, deduplicated by design point.
    let front = pareto_front(&objs);
    let mut out: Vec<FrontMember> = Vec::new();
    for &i in &front {
        if out.iter().any(|m| m.point == points[i]) {
            continue;
        }
        out.push(FrontMember {
            point: points[i].clone(),
            values: space.values(&points[i]),
            objectives: objs[i].clone(),
        });
    }
    FRONT_SIZE.set(out.len() as u64);
    out
}

/// Maps possibly-infinite crowding distances to a totally ordered float.
fn ordered(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dimension;

    fn grid(n: usize) -> DesignSpace {
        DesignSpace::new(vec![
            Dimension::new("x", (0..n).map(|i| i as f64).collect()),
            Dimension::new("y", (0..n).map(|i| i as f64).collect()),
        ])
    }

    /// A classic convex two-objective problem: f0 = x, f1 distance-like.
    fn bi_objective(v: &[f64]) -> Vec<f64> {
        let x = v[0];
        let y = v[1];
        vec![x + 0.1 * y, (15.0 - x) + 0.1 * (15.0 - y)]
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let space = grid(16);
        let front = nsga2(&space, &bi_objective, 25, 20, 3);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.point == b.point {
                    continue;
                }
                let dominates = b.objectives.iter().zip(&a.objectives).all(|(x, y)| x <= y)
                    && b.objectives.iter().zip(&a.objectives).any(|(x, y)| x < y);
                assert!(!dominates, "front member dominated");
            }
        }
    }

    #[test]
    fn front_matches_exhaustive_on_small_space() {
        // f1 strictly worsens with y, so only the y = 0 row can be optimal:
        // the true front is small and fully coverable.
        fn curved(v: &[f64]) -> Vec<f64> {
            let x = v[0];
            let y = v[1];
            vec![x, (7.0 - x) * (7.0 - x) + y]
        }
        let space = grid(8);
        // Exhaustive true front.
        let all: Vec<Vec<f64>> =
            space.enumerate().iter().map(|p| curved(&space.values(p))).collect();
        let true_front = pareto_front(&all);
        let true_set: Vec<&Vec<f64>> = true_front.iter().map(|&i| &all[i]).collect();

        let found = nsga2(&space, &curved, 40, 24, 5);
        // Every found member must be on (or tie with) the true front.
        for m in &found {
            let on_true = true_set
                .iter()
                .any(|t| t.iter().zip(&m.objectives).all(|(a, b)| (a - b).abs() < 1e-12));
            assert!(on_true, "found member {:?} is not truly optimal", m.objectives);
        }
        assert!(found.len() >= true_set.len() / 2, "should recover most of the front");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let space = grid(12);
        let a = nsga2(&space, &bi_objective, 15, 16, 7);
        let b = nsga2(&space, &bi_objective, 15, 16, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn single_objective_degenerates_to_minimum() {
        let space = grid(10);
        let front = nsga2(&space, &|v: &[f64]| vec![v[0] + v[1]], 30, 16, 2);
        assert_eq!(front.len(), 1, "a scalar objective has a single optimum");
        assert_eq!(front[0].objectives, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_tiny_population() {
        let space = grid(4);
        let _ = nsga2(&space, &bi_objective, 1, 2, 0);
    }
}
