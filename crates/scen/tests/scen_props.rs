//! Property tests for scenario generation and the scenario DSL:
//! endpoint freedom, bounds invariants, seed/thread determinism, and
//! exact DSL round-tripping across the whole parameter space.

use m7_par::ParConfig;
use m7_scen::{generate, obstacles_in_bounds, parse_scenario, render_scenario, Family};
use proptest::prelude::*;

proptest! {
    /// The start and goal are always collision-free, for every family,
    /// level, and seed — an RRT query from start to goal is well-posed.
    #[test]
    fn start_and_goal_are_collision_free(
        fam in 0usize..Family::ALL.len(),
        level in 0.0f64..=1.0,
        seed in 0u64..1 << 32,
    ) {
        let family = Family::ALL[fam];
        let s = generate(family, level, seed);
        prop_assert!(!s.point_blocked(s.start), "start blocked: {family} {level} {seed}");
        prop_assert!(!s.point_blocked(s.goal), "goal blocked: {family} {level} {seed}");
        let world = s.collision_world();
        prop_assert!(world.point_free(s.start));
        prop_assert!(world.point_free(s.goal));
    }

    /// Every obstacle footprint (movers at their inflated radius) lies
    /// inside the world bounds.
    #[test]
    fn all_obstacles_are_within_grid_bounds(
        fam in 0usize..Family::ALL.len(),
        level in 0.0f64..=1.0,
        seed in 0u64..1 << 32,
    ) {
        let family = Family::ALL[fam];
        let s = generate(family, level, seed);
        prop_assert!(obstacles_in_bounds(&s), "{family} {level} {seed} leaks out of bounds");
    }

    /// The same (family, level, seed) triple yields a bit-identical
    /// scenario whether generated serially or inside a wide pool —
    /// generation is invariant to `M7_THREADS`.
    #[test]
    fn same_seed_is_bit_identical_at_any_thread_count(
        fam in 0usize..Family::ALL.len(),
        level in 0.0f64..=1.0,
        seed in 0u64..1 << 32,
    ) {
        let family = Family::ALL[fam];
        let reference = generate(family, level, seed);
        for threads in [1usize, 4, 8] {
            let pool = ParConfig::with_threads(threads);
            let clones = pool.par_map(&[seed; 4], |&s| generate(family, level, s));
            for clone in clones {
                prop_assert_eq!(&clone, &reference, "thread count {} diverged", threads);
            }
        }
    }

    /// The DSL round-trips exactly: `parse(render(s)) == s`.
    #[test]
    fn dsl_round_trips_exactly(
        fam in 0usize..Family::ALL.len(),
        level in 0.0f64..=1.0,
        seed in 0u64..1 << 32,
    ) {
        let family = Family::ALL[fam];
        let s = generate(family, level, seed);
        let text = render_scenario(&s);
        let back = parse_scenario(&text).expect("rendered scenario parses");
        prop_assert_eq!(back, s);
    }
}
