//! Adversarial scenario search (falsification).
//!
//! Reuses the `m7-dse` explorer over *scenario-parameter* space: instead
//! of searching designs that perform well, it searches for the **easiest
//! scenario that makes a platform tier fail** its mission deadline. The
//! objective rewards failing scenarios by their difficulty (lower is an
//! easier falsifier) and pushes surviving scenarios above
//! [`SURVIVED_OFFSET`], so any failure — however hard — outranks every
//! survival. Evaluations are memoized through an `m7-serve`
//! [`EvalCache`] and fanned out by the deterministic `m7-par` pool, so
//! results are bit-identical at any thread count.

use crate::eval::evaluate_uav;
use crate::generator::generate;
use crate::scenario::{Family, Scenario};
use m7_dse::explorer::{Explorer, SearchBudget};
use m7_dse::memo::EvalMemo;
use m7_dse::space::{DesignSpace, Dimension};
use m7_par::{derive_seed, ParConfig};
use m7_serve::cache::EvalCache;
use m7_serve::key::namespace;
use m7_serve::tier::ResultStore;
use m7_sim::uav::ComputeTier;
use m7_trace::span::SpanSite;
use m7_trace::{MetricClass, TraceCounter};

/// Cost floor for scenarios the tier survives. Failing scenarios score
/// their difficulty (≪ this), so minimizing cost finds the easiest
/// falsifier; survivors sort above the offset by *descending*
/// difficulty, steering the search toward the frontier even before the
/// first failure is found.
pub const SURVIVED_OFFSET: f64 = 10.0;

static FALSIFY: SpanSite = SpanSite::new("scen.falsify", MetricClass::Deterministic);
static FALSIFICATIONS: TraceCounter =
    TraceCounter::new("scen.falsifications", MetricClass::Deterministic);

/// Shape of the scenario-parameter space to search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FalsifyConfig {
    /// Generator families included in the search.
    pub families: Vec<Family>,
    /// Number of difficulty levels spanning `[0.1, 1.0]`.
    pub levels: usize,
    /// World-seed variants per (family, level) cell.
    pub variants: usize,
    /// Explorer evaluation budget.
    pub budget: usize,
}

impl Default for FalsifyConfig {
    fn default() -> Self {
        Self { families: Family::ALL.to_vec(), levels: 8, variants: 2, budget: 60 }
    }
}

impl FalsifyConfig {
    /// The searchable [`DesignSpace`] over (family, level, variant).
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or `levels < 2`.
    #[must_use]
    pub fn space(&self) -> DesignSpace {
        assert!(!self.families.is_empty(), "at least one family");
        assert!(self.levels >= 2, "at least two difficulty levels");
        assert!(self.variants >= 1, "at least one variant");
        let family = (0..self.families.len()).map(|i| i as f64).collect();
        let step = 0.9 / (self.levels - 1) as f64;
        let levels = (0..self.levels).map(|i| 0.1 + step * i as f64).collect();
        let variants = (0..self.variants).map(|i| i as f64).collect();
        DesignSpace::new(vec![
            Dimension::new("family", family),
            Dimension::new("level", levels),
            Dimension::new("variant", variants),
        ])
    }

    /// Materializes the scenario a design point denotes. The world seed
    /// is derived from `root_seed` and the (family, variant) cell, so a
    /// level sweep deforms one underlying world rather than resampling.
    #[must_use]
    pub fn scenario(&self, values: &[f64], root_seed: u64) -> Scenario {
        let family = self.families[values[0] as usize];
        let level = values[1];
        let variant = values[2] as u64;
        generate(family, level, derive_seed(root_seed, (values[0] as u64) << 8 | variant))
    }
}

/// One point on the falsification frontier: the easiest scenario found
/// that makes the tier miss its deadline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrontierPoint {
    /// Generator family of the falsifying scenario.
    pub family: Family,
    /// Difficulty level the generator was asked for.
    pub level: f64,
    /// Computed difficulty score of the concrete scenario.
    pub difficulty: f64,
    /// Mission time the tier actually took (seconds).
    pub time_s: f64,
    /// The deadline it missed (seconds).
    pub deadline_s: f64,
}

/// Result of falsifying one platform tier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Falsification {
    /// The tier under test.
    pub tier: ComputeTier,
    /// Easiest falsifier found, or `None` if the tier survived the
    /// whole probed space.
    pub frontier: Option<FrontierPoint>,
    /// Closed-loop evaluations the explorer requested.
    pub evaluations: usize,
    /// Hardest difficulty present anywhere in the probed space (from
    /// generation alone, no simulation) — the survival bound when
    /// `frontier` is `None`.
    pub max_difficulty: f64,
}

/// Searches scenario space for the easiest scenario that fails `tier`,
/// memoizing closed-loop evaluations in `cache` under a namespace
/// derived from the tier and `seed`. Deterministic in `seed` and
/// invariant to the thread count of `par`; read savings off the store's
/// hit counter ([`ResultStore::hits`]). Any [`ResultStore`] works —
/// including the disk-backed [`m7_serve::tier::TieredCache`], which
/// carries falsification evaluations across process restarts.
#[must_use]
pub fn falsify_memo<S: ResultStore<f64>>(
    tier: ComputeTier,
    cfg: &FalsifyConfig,
    seed: u64,
    par: ParConfig,
    cache: &S,
) -> Falsification {
    let _span = FALSIFY.enter();
    FALSIFICATIONS.incr();
    let space = cfg.space();
    let objective = |values: &[f64]| {
        let s = cfg.scenario(values, seed);
        let out = evaluate_uav(&s, tier, s.seed);
        if out.success {
            SURVIVED_OFFSET + (2.0 - s.difficulty())
        } else {
            s.difficulty()
        }
    };
    let memo = EvalMemo::new(cache, namespace(&format!("scen-falsify-{tier}"), seed));
    let result = Explorer::genetic().run_memoized(
        &space,
        &objective,
        SearchBudget::new(cfg.budget),
        seed,
        par,
        &memo,
    );
    let frontier = (result.best_cost < SURVIVED_OFFSET).then(|| {
        let s = cfg.scenario(&result.best_values, seed);
        let out = evaluate_uav(&s, tier, s.seed);
        FrontierPoint {
            family: s.family,
            level: s.level,
            difficulty: s.difficulty(),
            time_s: out.time_s,
            deadline_s: out.deadline_s,
        }
    });
    let max_difficulty = space
        .enumerate()
        .iter()
        .map(|p| cfg.scenario(&space.values(p), seed).difficulty())
        .fold(0.0, f64::max);
    Falsification { tier, frontier, evaluations: result.evaluations, max_difficulty }
}

/// [`falsify_memo`] with a private cache sized for the space — the
/// memoization still dedupes revisits within the search.
#[must_use]
pub fn falsify(tier: ComputeTier, cfg: &FalsifyConfig, seed: u64, par: ParConfig) -> Falsification {
    let cache = EvalCache::new(cfg.space().cardinality().max(64));
    falsify_memo(tier, cfg, seed, par, &cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FalsifyConfig {
        FalsifyConfig { levels: 5, variants: 1, budget: 24, ..FalsifyConfig::default() }
    }

    #[test]
    fn micro_tier_is_falsified_but_embedded_survives() {
        let cfg = quick_cfg();
        let par = ParConfig::with_threads(2);
        let micro = falsify(ComputeTier::Micro, &cfg, 42, par);
        let embedded = falsify(ComputeTier::Embedded, &cfg, 42, par);
        let frontier = micro.frontier.expect("micro must fail somewhere in the space");
        assert!(frontier.time_s > frontier.deadline_s);
        assert!(embedded.frontier.is_none(), "embedded survives: {:?}", embedded.frontier);
        assert!(
            embedded.max_difficulty > frontier.difficulty,
            "adequate tier survives strictly harder scenarios than micro's frontier"
        );
    }

    #[test]
    fn falsification_is_thread_count_invariant() {
        let cfg = quick_cfg();
        let serial = falsify(ComputeTier::Micro, &cfg, 7, ParConfig::with_threads(1));
        let wide = falsify(ComputeTier::Micro, &cfg, 7, ParConfig::with_threads(8));
        assert_eq!(serial, wide);
    }

    #[test]
    fn memoized_and_plain_results_agree_and_hits_are_counted() {
        let cfg = quick_cfg();
        let par = ParConfig::with_threads(2);
        let cache = EvalCache::new(256);
        let memoized = falsify_memo(ComputeTier::Micro, &cfg, 3, par, &cache);
        let plain = falsify(ComputeTier::Micro, &cfg, 3, par);
        assert_eq!(memoized, plain);
        let before = cache.stats().hits;
        let again = falsify_memo(ComputeTier::Micro, &cfg, 3, par, &cache);
        assert_eq!(again, memoized);
        assert!(cache.stats().hits > before, "second run must hit the shared cache");
    }

    #[test]
    fn space_covers_families_levels_and_variants() {
        let cfg = FalsifyConfig::default();
        let space = cfg.space();
        assert_eq!(space.cardinality(), Family::ALL.len() * 8 * 2);
        let values = space.values(&[1, 0, 1]);
        let s = cfg.scenario(&values, 9);
        assert_eq!(s.family, Family::Maze);
        assert!((s.level - 0.1).abs() < 1e-12);
    }
}
