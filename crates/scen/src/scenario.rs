//! The typed [`Scenario`] value: a parametric world plus an environment
//! profile, consumable by both closed loops in `m7-sim`.
//!
//! A scenario owns its obstacle *primitives* (circles, axis-aligned
//! rects, and moving circles) rather than a built
//! [`CollisionWorld`](m7_kernels::planning::CollisionWorld), so it is
//! cheap to clone, serialize, compare bit-for-bit, and round-trip
//! through the textual DSL ([`crate::dsl`]). The collision world — with
//! moving obstacles conservatively inflated by their motion over a
//! short planning horizon — is built on demand.

use m7_kernels::geometry::Vec2;
use m7_kernels::planning::CollisionWorld;
use serde::{Deserialize, Serialize};

/// Planning horizon (seconds) by which a moving obstacle is inflated
/// when the scenario is flattened into a static [`CollisionWorld`]: the
/// swept disk a conservative planner must avoid.
pub const MOVER_HORIZON_S: f64 = 1.5;

/// The procedural generator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// A narrow passage between two long walls, with clutter at higher
    /// difficulty.
    Corridor,
    /// Vertical walls with one gap each — the path snakes through.
    Maze,
    /// Uniformly scattered circular trees.
    Forest,
    /// Two rows of rectangular buildings around a shrinking canyon.
    UrbanCanyon,
    /// A sparse forest plus circular obstacles that move.
    MovingObstacles,
    /// A multi-room indoor floor plan: interior walls carve the world
    /// into a 3×3 room grid, every wall span pierced by one doorway
    /// whose clearance shrinks with difficulty.
    Rooms,
}

impl Family {
    /// All families, in generation order.
    pub const ALL: [Self; 6] = [
        Self::Corridor,
        Self::Maze,
        Self::Forest,
        Self::UrbanCanyon,
        Self::MovingObstacles,
        Self::Rooms,
    ];

    /// The DSL / report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Corridor => "corridor",
            Self::Maze => "maze",
            Self::Forest => "forest",
            Self::UrbanCanyon => "urban-canyon",
            Self::MovingObstacles => "moving",
            Self::Rooms => "rooms",
        }
    }

    /// Parses a DSL name back to a family.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == s)
    }
}

impl core::fmt::Display for Family {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A static circular obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleObs {
    /// Center position.
    pub center: Vec2,
    /// Radius (meters).
    pub radius: f64,
}

/// A static axis-aligned rectangular obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RectObs {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

/// A circular obstacle that moves at constant velocity, reflecting off
/// the world bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mover {
    /// Position at `t = 0`.
    pub center: Vec2,
    /// Body radius (meters).
    pub radius: f64,
    /// Velocity (m/s).
    pub velocity: Vec2,
}

impl Mover {
    /// Speed (m/s).
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }

    /// The conservative static footprint: body radius plus the distance
    /// covered over [`MOVER_HORIZON_S`].
    #[must_use]
    pub fn inflated_radius(&self) -> f64 {
        self.radius + self.speed() * MOVER_HORIZON_S
    }

    /// Position at time `t`, bouncing elastically off the walls of a
    /// `width × height` world.
    #[must_use]
    pub fn position_at(&self, t: f64, width: f64, height: f64) -> Vec2 {
        let fold = |p: f64, lo: f64, hi: f64| -> f64 {
            let span = hi - lo;
            if span <= 0.0 {
                return lo.max(hi.min(p));
            }
            let mut q = (p - lo) % (2.0 * span);
            if q < 0.0 {
                q += 2.0 * span;
            }
            if q > span {
                q = 2.0 * span - q;
            }
            lo + q
        };
        let raw = self.center + self.velocity * t;
        Vec2::new(
            fold(raw.x, self.radius, width - self.radius),
            fold(raw.y, self.radius, height - self.radius),
        )
    }
}

/// A generated (or parsed) scenario: world geometry, mission endpoints,
/// and the environment profile the closed loops consume.
///
/// Equality is bit-exact over every field, which is what the
/// determinism and DSL round-trip guarantees are stated against.
///
/// # Examples
///
/// ```
/// use m7_scen::{generate, Family};
///
/// let s = generate(Family::Forest, 0.5, 7);
/// assert!(s.collision_world().point_free(s.start));
/// assert!(s.difficulty() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which generator produced this world.
    pub family: Family,
    /// The generation seed (recorded so a scenario names its own
    /// provenance and derived evaluation streams).
    pub seed: u64,
    /// The requested difficulty knob in `[0, 1]` the generator was run
    /// at. The *realized* difficulty is [`Scenario::difficulty`].
    pub level: f64,
    /// World width (meters).
    pub width: f64,
    /// World height (meters).
    pub height: f64,
    /// Mission start point.
    pub start: Vec2,
    /// Mission goal point.
    pub goal: Vec2,
    /// Static circular obstacles.
    pub circles: Vec<CircleObs>,
    /// Static rectangular obstacles.
    pub rects: Vec<RectObs>,
    /// Moving obstacles.
    pub movers: Vec<Mover>,
    /// Gust disturbance standard deviation (fraction of commanded
    /// speed) for the UAV loop.
    pub gust_std: f64,
    /// Cargo mass carried on the mission (grams).
    pub payload_grams: f64,
    /// Sensor-noise profile as an effective range multiplier in
    /// `(0, 1]`: degraded visibility shrinks usable sensing range.
    pub sensor_derate: f64,
}

impl Scenario {
    /// Total number of obstacles (static and moving).
    #[must_use]
    pub fn obstacle_count(&self) -> usize {
        self.circles.len() + self.rects.len() + self.movers.len()
    }

    /// Straight-line start→goal distance (meters).
    #[must_use]
    pub fn straight_line(&self) -> f64 {
        self.start.distance(self.goal)
    }

    /// Returns `true` if `p` is inside any obstacle, with movers taken
    /// at their conservative inflated footprint.
    #[must_use]
    pub fn point_blocked(&self, p: Vec2) -> bool {
        self.circles.iter().any(|c| p.distance_squared(c.center) <= c.radius * c.radius)
            || self
                .rects
                .iter()
                .any(|r| p.x >= r.min.x && p.x <= r.max.x && p.y >= r.min.y && p.y <= r.max.y)
            || self.movers.iter().any(|m| {
                let r = m.inflated_radius();
                p.distance_squared(m.center) <= r * r
            })
    }

    /// Builds the static [`CollisionWorld`] the planners consume:
    /// circles and rects verbatim, movers as circles inflated by their
    /// motion over [`MOVER_HORIZON_S`].
    #[must_use]
    pub fn collision_world(&self) -> CollisionWorld {
        let mut world = CollisionWorld::new(self.width, self.height);
        for c in &self.circles {
            world.add_circle(c.center, c.radius);
        }
        for r in &self.rects {
            world.add_rect(r.min, r.max);
        }
        for m in &self.movers {
            world.add_circle(m.center, m.inflated_radius());
        }
        world
    }

    /// Rasterizes the world into a `cols × rows` boolean occupancy
    /// grid (row-major, row 0 at `y = 0`), sampling cell centers.
    #[must_use]
    pub fn rasterize(&self, cols: usize, rows: usize) -> Vec<bool> {
        assert!(cols > 0 && rows > 0, "raster needs at least one cell");
        let mut cells = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                let p = Vec2::new(
                    (col as f64 + 0.5) * self.width / cols as f64,
                    (row as f64 + 0.5) * self.height / rows as f64,
                );
                cells.push(self.point_blocked(p));
            }
        }
        cells
    }

    /// Fraction of the world area occupied by obstacles, estimated on a
    /// 1-meter sampling grid — the geometric load behind
    /// [`Scenario::difficulty`].
    #[must_use]
    pub fn occupancy_fraction(&self) -> f64 {
        let cols = (self.width.ceil() as usize).max(1);
        let rows = (self.height.ceil() as usize).max(1);
        let cells = self.rasterize(cols, rows);
        cells.iter().filter(|&&b| b).count() as f64 / cells.len() as f64
    }

    /// The computed difficulty score, a pure function of the realized
    /// scenario (not of the requested `level`): a weighted blend of
    /// geometric load (occupancy, clutter count, obstacle motion) and
    /// environment stress (gusts, payload, sensor derate), roughly in
    /// `[0, 1]`.
    #[must_use]
    pub fn difficulty(&self) -> f64 {
        let geo = (self.occupancy_fraction() / 0.35).min(1.0);
        let clutter = (self.obstacle_count() as f64 / 60.0).min(1.0);
        let top_speed = self.movers.iter().map(Mover::speed).fold(0.0f64, f64::max);
        let motion = (top_speed / 2.0).min(1.0);
        let gust = (self.gust_std / 0.35).min(1.0);
        let payload = (self.payload_grams / 700.0).min(1.0);
        let sensing = ((1.0 - self.sensor_derate) / 0.7).clamp(0.0, 1.0);
        0.25 * geo + 0.05 * clutter + 0.10 * motion + 0.15 * gust + 0.15 * payload + 0.30 * sensing
    }

    /// Renders the world as ASCII art (`#` static obstacle, `o` moving
    /// obstacle footprint, `S` start, `G` goal), `cols × rows`
    /// characters with row 0 at the *top* (max `y`). A cell is marked
    /// if an obstacle *overlaps* it at all (not just its center), so
    /// thin walls never vanish between sample rows.
    #[must_use]
    pub fn ascii_art(&self, cols: usize, rows: usize) -> String {
        assert!(cols > 0 && rows > 0, "ascii art needs at least one cell");
        let half = Vec2::new(0.5 * self.width / cols as f64, 0.5 * self.height / rows as f64);
        let mut out = String::with_capacity((cols + 1) * rows);
        let cell = |col: usize, row: usize| -> Vec2 {
            Vec2::new(
                (col as f64 + 0.5) * self.width / cols as f64,
                // Row 0 renders the top of the world.
                (rows as f64 - row as f64 - 0.5) * self.height / rows as f64,
            )
        };
        // Squared distance from a disk center to the cell around `p`:
        // zero inside, so a disk overlaps iff this is within radius².
        let disk_overlaps = |p: Vec2, center: Vec2, radius: f64| -> bool {
            let dx = ((center.x - p.x).abs() - half.x).max(0.0);
            let dy = ((center.y - p.y).abs() - half.y).max(0.0);
            dx * dx + dy * dy <= radius * radius
        };
        let rect_overlaps = |p: Vec2, r: &RectObs| -> bool {
            r.min.x <= p.x + half.x
                && r.max.x >= p.x - half.x
                && r.min.y <= p.y + half.y
                && r.max.y >= p.y - half.y
        };
        let mark = |p: Vec2, q: Vec2| -> bool {
            (p.x - q.x).abs() <= half.x && (p.y - q.y).abs() <= half.y
        };
        for row in 0..rows {
            for col in 0..cols {
                let p = cell(col, row);
                let ch = if mark(p, self.start) {
                    'S'
                } else if mark(p, self.goal) {
                    'G'
                } else if self
                    .movers
                    .iter()
                    .any(|m| disk_overlaps(p, m.center, m.inflated_radius()))
                {
                    'o'
                } else if self.circles.iter().any(|c| disk_overlaps(p, c.center, c.radius))
                    || self.rects.iter().any(|r| rect_overlaps(p, r))
                {
                    '#'
                } else {
                    '.'
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            family: Family::Forest,
            seed: 1,
            level: 0.5,
            width: 10.0,
            height: 10.0,
            start: Vec2::new(1.0, 5.0),
            goal: Vec2::new(9.0, 5.0),
            circles: vec![CircleObs { center: Vec2::new(5.0, 5.0), radius: 1.0 }],
            rects: vec![RectObs { min: Vec2::new(2.0, 8.0), max: Vec2::new(4.0, 9.0) }],
            movers: vec![Mover {
                center: Vec2::new(7.0, 2.0),
                radius: 0.5,
                velocity: Vec2::new(1.0, 0.0),
            }],
            gust_std: 0.1,
            payload_grams: 100.0,
            sensor_derate: 0.8,
        }
    }

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("warehouse"), None);
    }

    #[test]
    fn point_blocked_matches_collision_world() {
        let s = tiny();
        let world = s.collision_world();
        for col in 0..20 {
            for row in 0..20 {
                let p = Vec2::new(0.25 + col as f64 * 0.5, 0.25 + row as f64 * 0.5);
                assert_eq!(s.point_blocked(p), !world.point_free(p), "at {p:?}");
            }
        }
    }

    #[test]
    fn mover_inflation_covers_the_horizon() {
        let m = tiny().movers[0];
        assert!((m.inflated_radius() - (0.5 + MOVER_HORIZON_S)).abs() < 1e-12);
    }

    #[test]
    fn mover_reflects_off_bounds() {
        let m = tiny().movers[0];
        // After 10 s at 1 m/s in a 10 m world the mover has bounced but
        // stayed inside.
        let p = m.position_at(10.0, 10.0, 10.0);
        assert!(p.x >= m.radius && p.x <= 10.0 - m.radius);
        assert_eq!(m.position_at(0.0, 10.0, 10.0), m.center);
    }

    #[test]
    fn difficulty_is_finite_and_bounded() {
        let s = tiny();
        let d = s.difficulty();
        assert!(d.is_finite() && (0.0..=1.0).contains(&d), "difficulty {d}");
    }

    #[test]
    fn harder_env_scores_harder() {
        let easy = tiny();
        let mut hard = easy.clone();
        hard.gust_std = 0.3;
        hard.payload_grams = 600.0;
        hard.sensor_derate = 0.4;
        assert!(hard.difficulty() > easy.difficulty());
    }

    #[test]
    fn rasterize_marks_the_central_tree() {
        let s = tiny();
        let cells = s.rasterize(10, 10);
        assert!(cells[5 * 10 + 5], "cell over the central circle must be blocked");
        assert!(!cells[10], "start-side cell must be free");
    }

    #[test]
    fn ascii_art_shape_and_markers() {
        let art = tiny().ascii_art(20, 10);
        assert_eq!(art.lines().count(), 10);
        assert!(art.lines().all(|l| l.chars().count() == 20));
        for ch in ['S', 'G', '#', 'o'] {
            assert!(art.contains(ch), "missing {ch} in:\n{art}");
        }
    }
}
