//! Procedural scenario generation and adversarial scenario search.
//!
//! Autonomy stacks are judged in closed loop, and closed loops need
//! *worlds*. This crate makes scenario supply a first-class subsystem:
//!
//! - [`generator`] — deterministic, seeded procedural generators for
//!   six parametric families (corridor, maze, random forest, urban
//!   canyon, moving obstacles, multi-room indoor), each emitting a
//!   typed [`Scenario`] with
//!   an occupancy grid, start/goal, an environment profile (gusts,
//!   payload, sensor derate), and a computed difficulty score.
//! - [`dsl`] — a compact textual DSL mirroring `m7_arch::spec`, so
//!   scenarios round-trip to and from text bit-exactly.
//! - [`eval`] — couplings into the existing `m7-sim` closed loops: the
//!   UAV mission loop and the RRT-in-the-loop rover, each with a
//!   mission deadline that makes "failure" crisp.
//! - [`falsify`] — adversarial search that reuses the `m7-dse` explorer
//!   over scenario-parameter space to find the *easiest* scenario that
//!   breaks a platform tier, memoized via `m7-serve` and fanned out by
//!   the deterministic `m7-par` pool.
//!
//! Everything is deterministic in its seed and invariant to
//! `M7_THREADS`, so experiment E12's reports are byte-stable.
//!
//! # Examples
//!
//! ```
//! use m7_scen::{generate, Family};
//! use m7_sim::uav::ComputeTier;
//!
//! let scenario = generate(Family::Forest, 0.5, 7);
//! assert!(!scenario.point_blocked(scenario.start));
//! let outcome = m7_scen::evaluate_uav(&scenario, ComputeTier::Embedded, 7);
//! assert!(outcome.success);
//! ```

#![warn(missing_docs)]

pub mod dsl;
pub mod eval;
pub mod falsify;
pub mod generator;
pub mod scenario;

pub use dsl::{parse_scenario, render_scenario, ParseScenarioError, ScenErrorKind};
pub use eval::{evaluate_rover, evaluate_uav, uav_config, uav_mission, ScenOutcome};
pub use falsify::{falsify, falsify_memo, Falsification, FalsifyConfig, FrontierPoint};
pub use generator::{generate, obstacles_in_bounds, ENDPOINT_CLEARANCE, WORLD_SIZE};
pub use scenario::{CircleObs, Family, Mover, RectObs, Scenario};
