//! Deterministic, seeded procedural world generators.
//!
//! [`generate`] maps `(family, level, seed)` to a [`Scenario`], pure in
//! all three arguments: the same triple always yields a bit-identical
//! scenario, on any host and at any `M7_THREADS` setting (generation
//! never touches the pool). The `level` knob in `[0, 1]` scales both
//! the geometry (narrower passages, denser clutter, faster movers) and
//! the environment profile (gusts, payload, sensor derate).

use crate::scenario::{CircleObs, Family, Mover, RectObs, Scenario};
use m7_kernels::geometry::Vec2;
use m7_trace::span::SpanSite;
use m7_trace::{MetricClass, TraceCounter, TraceHistogram};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Side length of every generated world (meters).
pub const WORLD_SIZE: f64 = 40.0;
/// Free-space disk kept around the start and goal when placing
/// randomized obstacles.
pub const ENDPOINT_CLEARANCE: f64 = 1.5;

// Scenario observability (no-ops until `m7_trace::enable()`).
static GENERATE: SpanSite = SpanSite::new("scen.generate", MetricClass::Deterministic);
static GENERATED: TraceCounter = TraceCounter::new("scen.scenarios", MetricClass::Deterministic);
static OBSTACLES: TraceHistogram =
    TraceHistogram::new("scen.obstacles", MetricClass::Deterministic);

/// Decorrelates the per-family RNG streams for one seed.
fn family_salt(family: Family) -> u64 {
    match family {
        Family::Corridor => 0x5CE0_0001_C0FF_EE01,
        Family::Maze => 0x5CE0_0002_C0FF_EE02,
        Family::Forest => 0x5CE0_0003_C0FF_EE03,
        Family::UrbanCanyon => 0x5CE0_0004_C0FF_EE04,
        Family::MovingObstacles => 0x5CE0_0005_C0FF_EE05,
        Family::Rooms => 0x5CE0_0006_C0FF_EE06,
    }
}

/// Generates a scenario: pure in `(family, level, seed)`.
///
/// `level` is clamped to `[0, 1]`. Randomized obstacles keep
/// [`ENDPOINT_CLEARANCE`] meters clear of the start and goal, and every
/// obstacle footprint (movers at their inflated radius) stays inside
/// the `[0, WORLD_SIZE]²` world.
///
/// # Panics
///
/// Panics if `level` is not finite.
///
/// # Examples
///
/// ```
/// use m7_scen::{generate, Family};
///
/// let easy = generate(Family::Maze, 0.1, 42);
/// let hard = generate(Family::Maze, 0.9, 42);
/// assert!(hard.difficulty() > easy.difficulty());
/// assert_eq!(generate(Family::Maze, 0.1, 42), easy);
/// ```
#[must_use]
pub fn generate(family: Family, level: f64, seed: u64) -> Scenario {
    assert!(level.is_finite(), "difficulty level must be finite");
    let level = level.clamp(0.0, 1.0);
    let _span = GENERATE.enter();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ family_salt(family));

    let mid = WORLD_SIZE / 2.0;
    let start = Vec2::new(2.5, mid);
    let goal = Vec2::new(WORLD_SIZE - 2.5, mid);
    let mut scenario = Scenario {
        family,
        seed,
        level,
        width: WORLD_SIZE,
        height: WORLD_SIZE,
        start,
        goal,
        circles: Vec::new(),
        rects: Vec::new(),
        movers: Vec::new(),
        // Environment stress scales with the difficulty knob.
        gust_std: 0.05 + 0.3 * level,
        payload_grams: 600.0 * level,
        sensor_derate: 1.0 - 0.65 * level,
    };

    let clears_endpoints = |center: Vec2, footprint: f64| {
        center.distance(start) > footprint + ENDPOINT_CLEARANCE
            && center.distance(goal) > footprint + ENDPOINT_CLEARANCE
    };

    match family {
        Family::Corridor => {
            // Two long walls around a shrinking passage, plus clutter.
            let gap = 7.0 - 5.5 * level;
            let thickness = 1.2;
            scenario.rects.push(RectObs {
                min: Vec2::new(0.0, mid - gap / 2.0 - thickness),
                max: Vec2::new(WORLD_SIZE, mid - gap / 2.0),
            });
            scenario.rects.push(RectObs {
                min: Vec2::new(0.0, mid + gap / 2.0),
                max: Vec2::new(WORLD_SIZE, mid + gap / 2.0 + thickness),
            });
            let clutter = (level * 6.0).round() as usize;
            for _ in 0..clutter {
                let radius = rng.gen_range(0.25..0.5);
                let margin = radius + 0.2;
                if gap / 2.0 <= margin {
                    continue; // passage too narrow for clutter
                }
                let c = Vec2::new(
                    rng.gen_range(8.0..WORLD_SIZE - 8.0),
                    rng.gen_range(mid - gap / 2.0 + margin..mid + gap / 2.0 - margin),
                );
                if clears_endpoints(c, radius) {
                    scenario.circles.push(CircleObs { center: c, radius });
                }
            }
        }
        Family::Maze => {
            // Vertical walls, one gap each; gaps shrink with level.
            let thickness = 0.9;
            let gap = 9.0 - 6.5 * level;
            for wall in 0..4 {
                let x0 = 8.0 + 8.0 * wall as f64;
                let gy = rng.gen_range(4.0 + gap / 2.0..WORLD_SIZE - 4.0 - gap / 2.0);
                scenario.rects.push(RectObs {
                    min: Vec2::new(x0 - thickness / 2.0, 0.0),
                    max: Vec2::new(x0 + thickness / 2.0, gy - gap / 2.0),
                });
                scenario.rects.push(RectObs {
                    min: Vec2::new(x0 - thickness / 2.0, gy + gap / 2.0),
                    max: Vec2::new(x0 + thickness / 2.0, WORLD_SIZE),
                });
            }
        }
        Family::Forest => {
            // Uniformly scattered trees; count and girth grow with level.
            let count = 8 + (level * 48.0) as usize;
            let mut placed = 0usize;
            for _ in 0..count * 8 {
                if placed == count {
                    break;
                }
                let radius = rng.gen_range(0.4..0.8 + 0.8 * level);
                let lo = radius + 0.2;
                let hi = WORLD_SIZE - radius - 0.2;
                let c = Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi));
                if clears_endpoints(c, radius) {
                    scenario.circles.push(CircleObs { center: c, radius });
                    placed += 1;
                }
            }
        }
        Family::UrbanCanyon => {
            // Two rows of buildings around a canyon that narrows with
            // level; cross streets shrink as buildings widen.
            let half_gap = 5.0 - 3.5 * level;
            let depth = 10.0;
            for row in 0..2 {
                let (y_lo, y_hi) = if row == 0 {
                    ((mid - half_gap - depth).max(0.5), mid - half_gap)
                } else {
                    (mid + half_gap, (mid + half_gap + depth).min(WORLD_SIZE - 0.5))
                };
                for slot in 0..4 {
                    let x0 = 3.0 + 9.0 * slot as f64 + rng.gen_range(0.0..0.5);
                    let width = 6.0 + rng.gen_range(0.0..1.5) * level;
                    scenario.rects.push(RectObs {
                        min: Vec2::new(x0, y_lo),
                        max: Vec2::new((x0 + width).min(WORLD_SIZE - 0.5), y_hi),
                    });
                }
            }
        }
        Family::MovingObstacles => {
            // A sparse forest plus circular obstacles in linear motion.
            let trees = 6 + (level * 18.0) as usize;
            let mut placed = 0usize;
            for _ in 0..trees * 8 {
                if placed == trees {
                    break;
                }
                let radius = rng.gen_range(0.4..0.9);
                let lo = radius + 0.2;
                let hi = WORLD_SIZE - radius - 0.2;
                let c = Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi));
                if clears_endpoints(c, radius) {
                    scenario.circles.push(CircleObs { center: c, radius });
                    placed += 1;
                }
            }
            let movers = 2 + (level * 5.0) as usize;
            let speed = 0.3 + 1.7 * level;
            let radius = 0.7;
            let footprint = radius + speed * crate::scenario::MOVER_HORIZON_S;
            let mut placed = 0usize;
            for _ in 0..movers * 10 {
                if placed == movers {
                    break;
                }
                let lo = footprint + 0.2;
                let hi = WORLD_SIZE - footprint - 0.2;
                let c = Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi));
                let heading = rng.gen_range(0.0..core::f64::consts::TAU);
                if clears_endpoints(c, footprint) {
                    scenario.movers.push(Mover {
                        center: c,
                        radius,
                        velocity: Vec2::new(heading.cos(), heading.sin()) * speed,
                    });
                    placed += 1;
                }
            }
        }
        Family::Rooms => {
            // Interior walls carve the floor into a 3×3 room grid.
            // Every wall span between two crossings keeps exactly one
            // doorway, so the rooms stay connected, but the doorway
            // clearance shrinks with level — the clearance constraint
            // an indoor platform has to thread.
            let thickness = 0.8;
            let doorway = 4.5 - 3.3 * level;
            let lines = [WORLD_SIZE / 3.0, 2.0 * WORLD_SIZE / 3.0];
            let cuts = [0.0, lines[0], lines[1], WORLD_SIZE];
            let mut doorways: Vec<Vec2> = Vec::new();
            for &pos in &lines {
                for span in 0..3 {
                    // Vertical wall at x = pos, one span per room row.
                    let (lo, hi) = (cuts[span], cuts[span + 1]);
                    let margin = doorway / 2.0 + thickness;
                    let d = rng.gen_range(lo + margin..hi - margin);
                    scenario.rects.push(RectObs {
                        min: Vec2::new(pos - thickness / 2.0, lo),
                        max: Vec2::new(pos + thickness / 2.0, d - doorway / 2.0),
                    });
                    scenario.rects.push(RectObs {
                        min: Vec2::new(pos - thickness / 2.0, d + doorway / 2.0),
                        max: Vec2::new(pos + thickness / 2.0, hi),
                    });
                    doorways.push(Vec2::new(pos, d));
                }
                for span in 0..3 {
                    // Horizontal wall at y = pos, one span per room column.
                    let (lo, hi) = (cuts[span], cuts[span + 1]);
                    let margin = doorway / 2.0 + thickness;
                    let d = rng.gen_range(lo + margin..hi - margin);
                    scenario.rects.push(RectObs {
                        min: Vec2::new(lo, pos - thickness / 2.0),
                        max: Vec2::new(d - doorway / 2.0, pos + thickness / 2.0),
                    });
                    scenario.rects.push(RectObs {
                        min: Vec2::new(d + doorway / 2.0, pos - thickness / 2.0),
                        max: Vec2::new(hi, pos + thickness / 2.0),
                    });
                    doorways.push(Vec2::new(d, pos));
                }
            }
            // Furniture clutter inside the rooms, kept clear of the
            // endpoints and of every doorway so connectivity survives.
            let clutter = (level * 10.0) as usize;
            let mut placed = 0usize;
            for _ in 0..clutter * 8 {
                if placed == clutter {
                    break;
                }
                let radius = rng.gen_range(0.3..0.6);
                let lo = radius + 0.2;
                let hi = WORLD_SIZE - radius - 0.2;
                let c = Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi));
                let clears_doorways =
                    doorways.iter().all(|d| c.distance(*d) > doorway / 2.0 + radius + 0.5);
                if clears_endpoints(c, radius) && clears_doorways {
                    scenario.circles.push(CircleObs { center: c, radius });
                    placed += 1;
                }
            }
        }
    }

    GENERATED.incr();
    OBSTACLES.record(scenario.obstacle_count() as u64);
    scenario
}

/// Returns `true` if every obstacle footprint (movers inflated) lies
/// inside the scenario's `[0, width] × [0, height]` bounds — the
/// invariant [`generate`] guarantees, re-checkable on parsed input.
#[must_use]
pub fn obstacles_in_bounds(s: &Scenario) -> bool {
    let inside = |min: Vec2, max: Vec2| {
        min.x >= 0.0 && min.y >= 0.0 && max.x <= s.width && max.y <= s.height
    };
    s.circles.iter().all(|c| {
        let r = Vec2::new(c.radius, c.radius);
        inside(c.center - r, c.center + r)
    }) && s.rects.iter().all(|r| inside(r.min, r.max))
        && s.movers.iter().all(|m| {
            let r = Vec2::new(m.inflated_radius(), m.inflated_radius());
            inside(m.center - r, m.center + r)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_triple_is_bit_identical() {
        for family in Family::ALL {
            let a = generate(family, 0.6, 9);
            let b = generate(family, 0.6, 9);
            assert_eq!(a, b, "{family} generation must be deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Family::Forest, 0.5, 1);
        let b = generate(Family::Forest, 0.5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn endpoints_are_always_free() {
        for family in Family::ALL {
            for seed in 0..8 {
                for level in [0.0, 0.3, 0.7, 1.0] {
                    let s = generate(family, level, seed);
                    assert!(
                        !s.point_blocked(s.start) && !s.point_blocked(s.goal),
                        "{family} level {level} seed {seed} blocks an endpoint"
                    );
                }
            }
        }
    }

    #[test]
    fn obstacles_stay_in_bounds() {
        for family in Family::ALL {
            for seed in 0..8 {
                let s = generate(family, 1.0, seed);
                assert!(obstacles_in_bounds(&s), "{family} seed {seed} leaks out of bounds");
            }
        }
    }

    #[test]
    fn level_raises_difficulty() {
        for family in Family::ALL {
            let easy = generate(family, 0.1, 3).difficulty();
            let hard = generate(family, 0.9, 3).difficulty();
            assert!(hard > easy + 0.1, "{family}: {easy} -> {hard}");
        }
    }

    #[test]
    fn level_is_clamped() {
        assert_eq!(generate(Family::Maze, 2.0, 5), generate(Family::Maze, 1.0, 5));
        assert_eq!(generate(Family::Maze, -1.0, 5), generate(Family::Maze, 0.0, 5));
    }

    #[test]
    fn families_produce_their_signature_geometry() {
        assert!(generate(Family::Corridor, 0.5, 1).rects.len() >= 2);
        assert_eq!(generate(Family::Maze, 0.5, 1).rects.len(), 8);
        assert!(generate(Family::Forest, 0.5, 1).circles.len() >= 8);
        assert_eq!(generate(Family::UrbanCanyon, 0.5, 1).rects.len(), 8);
        assert!(!generate(Family::MovingObstacles, 0.5, 1).movers.is_empty());
        // Rooms: 4 interior walls × 3 spans × 2 rects around each doorway.
        assert_eq!(generate(Family::Rooms, 0.5, 1).rects.len(), 24);
    }

    #[test]
    fn rooms_doorways_narrow_with_level_but_never_close() {
        // The widest vertical gap in each wall span is the doorway; it
        // must shrink with level and stay positive (connectivity).
        let gap_at = |level: f64| {
            let s = generate(Family::Rooms, level, 11);
            // Vertical-wall rects come in pairs around a doorway; the
            // doorway height is the gap between a pair's two rects.
            let pair = (&s.rects[0], &s.rects[1]);
            pair.1.min.y - pair.0.max.y
        };
        let (easy, hard) = (gap_at(0.1), gap_at(0.9));
        assert!(hard < easy, "doorways must narrow: {easy} -> {hard}");
        assert!(hard > 1.0, "doorways must stay passable: {hard}");
    }
}
