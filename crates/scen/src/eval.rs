//! Plugging a [`Scenario`] into the `m7-sim` closed loops, with a
//! mission deadline so "failure" is well-defined.
//!
//! - **UAV**: the scenario's environment profile (gusts, payload,
//!   sensor derate) and geometry (detour factor from occupancy) shape a
//!   delivery mission over repeated traversals of the world tile; the
//!   vehicle must finish before a deadline set by a reference ground
//!   speed. An under-provisioned tier is perception-limited below that
//!   speed once the sensor derate bites, so it misses the deadline long
//!   before the battery gives out.
//! - **Rover**: the scenario is flattened into a [`m7_kernels::planning::CollisionWorld`]
//!   and patrolled with the real RRT in the loop; planning stalls
//!   (scaled by the compute tier) count against the same kind of
//!   deadline.

use crate::scenario::Scenario;
use m7_sim::mission::MissionSpec;
use m7_sim::rover::{Rover, RoverConfig};
use m7_sim::uav::{ComputeTier, Uav, UavConfig};
use m7_trace::span::SpanSite;
use m7_trace::{MetricClass, TraceCounter};
use m7_units::Meters;

/// Reference ground speed (m/s) that sets the UAV mission deadline:
/// `deadline = mission distance / UAV_DEADLINE_SPEED`.
pub const UAV_DEADLINE_SPEED: f64 = 4.5;
/// Traversals of the world tile that make up one UAV mission (a survey
/// pattern over the scenario, not a single crossing).
pub const UAV_LAPS: f64 = 30.0;
/// Reference speed (m/s) over the straight-line start→goal distance
/// that sets the rover deadline.
pub const ROVER_DEADLINE_SPEED: f64 = 1.1;

static EVALUATE: SpanSite = SpanSite::new("scen.evaluate", MetricClass::Deterministic);
static EVALUATIONS: TraceCounter =
    TraceCounter::new("scen.evaluations", MetricClass::Deterministic);

/// Outcome of one scenario evaluation against one platform tier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenOutcome {
    /// Mission finished before the deadline.
    pub success: bool,
    /// The vehicle covered the course at all (battery / planner held).
    pub completed: bool,
    /// The course was covered but after the deadline.
    pub deadline_miss: bool,
    /// Elapsed mission time (seconds).
    pub time_s: f64,
    /// The deadline the mission was judged against (seconds).
    pub deadline_s: f64,
    /// Energy drawn (joules).
    pub energy_j: f64,
    /// Distance covered (meters).
    pub distance_m: f64,
}

/// The UAV mission a scenario implies: [`UAV_LAPS`] traversals of the
/// tile stretched by a detour factor from obstacle density, carrying
/// the scenario payload through its gust field.
#[must_use]
pub fn uav_mission(s: &Scenario) -> MissionSpec {
    let detour = 1.0 + 2.0 * s.occupancy_fraction();
    let distance = s.straight_line() * detour * UAV_LAPS;
    MissionSpec::delivery(distance, s.payload_grams).with_gusts(s.gust_std)
}

/// The UAV configuration a scenario implies for `tier`: the default
/// airframe with its sensing range derated by the scenario's
/// visibility profile.
#[must_use]
pub fn uav_config(s: &Scenario, tier: ComputeTier) -> UavConfig {
    let base = UavConfig::default();
    UavConfig {
        sensor_range: Meters::new(base.sensor_range.value() * s.sensor_derate),
        tier,
        ..base
    }
}

/// Flies the scenario's UAV mission on `tier`, deterministic in `seed`.
#[must_use]
pub fn evaluate_uav(s: &Scenario, tier: ComputeTier, seed: u64) -> ScenOutcome {
    let _span = EVALUATE.enter();
    EVALUATIONS.incr();
    let mission = uav_mission(s);
    let out = Uav::new(uav_config(s, tier)).fly(&mission, seed);
    let deadline_s = mission.distance().value() / UAV_DEADLINE_SPEED;
    let deadline_miss = out.completed && out.time.value() > deadline_s;
    ScenOutcome {
        success: out.completed && !deadline_miss,
        completed: out.completed,
        deadline_miss,
        time_s: out.time.value(),
        deadline_s,
        energy_j: out.energy.value(),
        distance_m: out.distance.value(),
    }
}

/// Drives the scenario start→goal with the RRT-in-the-loop rover on
/// `tier`, deterministic in `seed`. The deadline charges planning
/// stalls and detours against [`ROVER_DEADLINE_SPEED`] over the
/// straight-line distance.
#[must_use]
pub fn evaluate_rover(s: &Scenario, tier: ComputeTier, seed: u64) -> ScenOutcome {
    let _span = EVALUATE.enter();
    EVALUATIONS.incr();
    let world = s.collision_world();
    let rover = Rover::new(RoverConfig { tier, ..RoverConfig::default() });
    let out = rover.patrol(&world, s.start, &[s.goal], seed);
    let deadline_s = s.straight_line() / ROVER_DEADLINE_SPEED;
    let deadline_miss = out.completed && out.time.value() > deadline_s;
    ScenOutcome {
        success: out.completed && !deadline_miss,
        completed: out.completed,
        deadline_miss,
        time_s: out.time.value(),
        deadline_s,
        energy_j: out.energy.value(),
        distance_m: out.distance.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::scenario::Family;

    #[test]
    fn uav_mission_scales_with_payload_and_gusts() {
        let easy = generate(Family::Forest, 0.1, 4);
        let hard = generate(Family::Forest, 0.9, 4);
        assert!(uav_mission(&hard).payload_grams() > uav_mission(&easy).payload_grams());
        assert!(uav_mission(&hard).gust_std() > uav_mission(&easy).gust_std());
        assert!(uav_config(&hard, ComputeTier::Micro).sensor_range.value() < 12.0);
    }

    #[test]
    fn adequate_tier_passes_where_micro_misses_the_deadline() {
        let hard = generate(Family::Forest, 0.8, 7);
        let micro = evaluate_uav(&hard, ComputeTier::Micro, 7);
        let embedded = evaluate_uav(&hard, ComputeTier::Embedded, 7);
        assert!(micro.deadline_miss && !micro.success, "micro: {micro:?}");
        assert!(embedded.success, "embedded: {embedded:?}");
        assert!(embedded.time_s < micro.time_s);
    }

    #[test]
    fn easy_scenarios_pass_on_both_tiers() {
        let easy = generate(Family::Corridor, 0.1, 5);
        for tier in [ComputeTier::Micro, ComputeTier::Embedded] {
            let out = evaluate_uav(&easy, tier, 5);
            assert!(out.success, "{tier}: {out:?}");
        }
    }

    #[test]
    fn uav_evaluation_is_deterministic() {
        let s = generate(Family::UrbanCanyon, 0.6, 9);
        let a = evaluate_uav(&s, ComputeTier::Micro, 9);
        let b = evaluate_uav(&s, ComputeTier::Micro, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn rover_feels_the_planning_stall() {
        let s = generate(Family::Corridor, 0.3, 2);
        let micro = evaluate_rover(&s, ComputeTier::Micro, 2);
        let gpu = evaluate_rover(&s, ComputeTier::EmbeddedGpu, 2);
        assert!(gpu.completed && micro.completed, "micro {micro:?} gpu {gpu:?}");
        assert!(
            micro.time_s > gpu.time_s + 10.0,
            "the micro tier stalls on planning: {} vs {}",
            micro.time_s,
            gpu.time_s
        );
        assert!(gpu.success, "gpu {gpu:?}");
        assert!(!micro.success, "micro must blow the deadline: {micro:?}");
    }
}
