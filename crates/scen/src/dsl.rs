//! A compact textual scenario DSL, mirroring `m7_arch::spec`.
//!
//! Line-oriented `key = value` with `#` comments and positioned errors.
//! Scalars appear once; obstacle lines (`circle`, `rect`, `mover`)
//! repeat and keep their order. Floats render in shortest round-trip
//! form, so `parse(render(s)) == s` bit-for-bit.
//!
//! ```text
//! # a hand-written pocket forest
//! family    = forest
//! seed      = 7
//! level     = 0.5
//! size      = 40.0 40.0
//! start     = 2.5 20.0
//! goal      = 37.5 20.0
//! gust      = 0.2
//! payload_g = 300.0
//! sensor    = 0.675
//! circle    = 10.5 12.25 1.5
//! rect      = 5.0 5.0 8.0 9.0
//! mover     = 20.0 30.0 0.7 0.5 -0.3
//! ```

use crate::scenario::{CircleObs, Family, Mover, RectObs, Scenario};
use m7_kernels::geometry::Vec2;

/// A scenario parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line of the offending input (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ScenErrorKind,
}

/// The kinds of scenario-DSL errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenErrorKind {
    /// A line was not of the form `key = value`.
    MalformedLine,
    /// The key is not recognized.
    UnknownKey(String),
    /// The value could not be parsed for its key.
    InvalidValue {
        /// The key whose value failed.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// `family = …` named an unknown generator family.
    UnknownFamily(String),
    /// A mandatory scalar field was missing.
    MissingField(&'static str),
}

impl core::fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            ScenErrorKind::MalformedLine => {
                write!(f, "line {}: expected `key = value`", self.line)
            }
            ScenErrorKind::UnknownKey(k) => write!(f, "line {}: unknown key `{k}`", self.line),
            ScenErrorKind::InvalidValue { key, value } => {
                write!(f, "line {}: invalid value `{value}` for `{key}`", self.line)
            }
            ScenErrorKind::UnknownFamily(k) => {
                write!(f, "line {}: unknown scenario family `{k}`", self.line)
            }
            ScenErrorKind::MissingField(k) => write!(f, "scenario is missing the `{k}` field"),
        }
    }
}

impl std::error::Error for ParseScenarioError {}

/// Renders a scenario to its DSL text. Floats use Rust's shortest
/// round-trip formatting, so [`parse_scenario`] reconstructs the exact
/// same [`Scenario`].
#[must_use]
pub fn render_scenario(s: &Scenario) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# m7-scen scenario ({} @ level {:?})", s.family, s.level);
    let _ = writeln!(out, "family = {}", s.family.name());
    let _ = writeln!(out, "seed = {}", s.seed);
    let _ = writeln!(out, "level = {:?}", s.level);
    let _ = writeln!(out, "size = {:?} {:?}", s.width, s.height);
    let _ = writeln!(out, "start = {:?} {:?}", s.start.x, s.start.y);
    let _ = writeln!(out, "goal = {:?} {:?}", s.goal.x, s.goal.y);
    let _ = writeln!(out, "gust = {:?}", s.gust_std);
    let _ = writeln!(out, "payload_g = {:?}", s.payload_grams);
    let _ = writeln!(out, "sensor = {:?}", s.sensor_derate);
    for c in &s.circles {
        let _ = writeln!(out, "circle = {:?} {:?} {:?}", c.center.x, c.center.y, c.radius);
    }
    for r in &s.rects {
        let _ = writeln!(out, "rect = {:?} {:?} {:?} {:?}", r.min.x, r.min.y, r.max.x, r.max.y);
    }
    for m in &s.movers {
        let _ = writeln!(
            out,
            "mover = {:?} {:?} {:?} {:?} {:?}",
            m.center.x, m.center.y, m.radius, m.velocity.x, m.velocity.y
        );
    }
    out
}

/// Splits `value` into exactly `n` finite floats.
fn floats(line: usize, key: &str, value: &str, n: usize) -> Result<Vec<f64>, ParseScenarioError> {
    let invalid = || ParseScenarioError {
        line,
        kind: ScenErrorKind::InvalidValue { key: key.to_string(), value: value.to_string() },
    };
    let parts: Vec<f64> = value
        .split_whitespace()
        .map(|p| p.parse::<f64>().map_err(|_| invalid()))
        .collect::<Result<_, _>>()?;
    if parts.len() != n || parts.iter().any(|v| !v.is_finite()) {
        return Err(invalid());
    }
    Ok(parts)
}

/// Parses DSL text back into a [`Scenario`].
///
/// # Errors
///
/// Returns a [`ParseScenarioError`] with the offending line on
/// malformed input, unknown keys or families, bad numbers, or a
/// missing mandatory field.
///
/// # Examples
///
/// ```
/// use m7_scen::{generate, dsl};
///
/// let s = generate(m7_scen::Family::Corridor, 0.4, 11);
/// let text = dsl::render_scenario(&s);
/// assert_eq!(dsl::parse_scenario(&text)?, s);
/// # Ok::<(), m7_scen::dsl::ParseScenarioError>(())
/// ```
pub fn parse_scenario(input: &str) -> Result<Scenario, ParseScenarioError> {
    let mut family: Option<Family> = None;
    let mut seed: Option<u64> = None;
    let mut level: Option<f64> = None;
    let mut size: Option<(f64, f64)> = None;
    let mut start: Option<Vec2> = None;
    let mut goal: Option<Vec2> = None;
    let mut gust: Option<f64> = None;
    let mut payload: Option<f64> = None;
    let mut sensor: Option<f64> = None;
    let mut circles = Vec::new();
    let mut rects = Vec::new();
    let mut movers = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseScenarioError { line: line_no, kind: ScenErrorKind::MalformedLine });
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "family" => {
                family = Some(Family::parse(value).ok_or(ParseScenarioError {
                    line: line_no,
                    kind: ScenErrorKind::UnknownFamily(value.to_string()),
                })?);
            }
            "seed" => {
                seed = Some(value.parse::<u64>().map_err(|_| ParseScenarioError {
                    line: line_no,
                    kind: ScenErrorKind::InvalidValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    },
                })?);
            }
            "level" => level = Some(floats(line_no, key, value, 1)?[0]),
            "size" => {
                let v = floats(line_no, key, value, 2)?;
                size = Some((v[0], v[1]));
            }
            "start" => {
                let v = floats(line_no, key, value, 2)?;
                start = Some(Vec2::new(v[0], v[1]));
            }
            "goal" => {
                let v = floats(line_no, key, value, 2)?;
                goal = Some(Vec2::new(v[0], v[1]));
            }
            "gust" => gust = Some(floats(line_no, key, value, 1)?[0]),
            "payload_g" => payload = Some(floats(line_no, key, value, 1)?[0]),
            "sensor" => sensor = Some(floats(line_no, key, value, 1)?[0]),
            "circle" => {
                let v = floats(line_no, key, value, 3)?;
                circles.push(CircleObs { center: Vec2::new(v[0], v[1]), radius: v[2] });
            }
            "rect" => {
                let v = floats(line_no, key, value, 4)?;
                rects.push(RectObs { min: Vec2::new(v[0], v[1]), max: Vec2::new(v[2], v[3]) });
            }
            "mover" => {
                let v = floats(line_no, key, value, 5)?;
                movers.push(Mover {
                    center: Vec2::new(v[0], v[1]),
                    radius: v[2],
                    velocity: Vec2::new(v[3], v[4]),
                });
            }
            other => {
                return Err(ParseScenarioError {
                    line: line_no,
                    kind: ScenErrorKind::UnknownKey(other.to_string()),
                });
            }
        }
    }

    let missing =
        |k: &'static str| ParseScenarioError { line: 0, kind: ScenErrorKind::MissingField(k) };
    let (width, height) = size.ok_or(missing("size"))?;
    Ok(Scenario {
        family: family.ok_or(missing("family"))?,
        seed: seed.ok_or(missing("seed"))?,
        level: level.ok_or(missing("level"))?,
        width,
        height,
        start: start.ok_or(missing("start"))?,
        goal: goal.ok_or(missing("goal"))?,
        circles,
        rects,
        movers,
        gust_std: gust.ok_or(missing("gust"))?,
        payload_grams: payload.ok_or(missing("payload_g"))?,
        sensor_derate: sensor.ok_or(missing("sensor"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn round_trips_every_family() {
        for family in Family::ALL {
            for level in [0.0, 0.35, 1.0] {
                let s = generate(family, level, 17);
                let text = render_scenario(&s);
                let back = parse_scenario(&text).expect("rendered text parses");
                assert_eq!(back, s, "{family} level {level} must round-trip exactly");
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = generate(Family::Corridor, 0.2, 1);
        let text = format!("# header\n\n{}\n# trailer\n", render_scenario(&s));
        assert_eq!(parse_scenario(&text).unwrap(), s);
    }

    #[test]
    fn malformed_line_is_positioned() {
        let err = parse_scenario("family = maze\nnot a kv line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ScenErrorKind::MalformedLine);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_key_and_family_are_reported() {
        let err = parse_scenario("altitude = 120\n").unwrap_err();
        assert_eq!(err.kind, ScenErrorKind::UnknownKey("altitude".to_string()));
        let err = parse_scenario("family = warehouse\n").unwrap_err();
        assert_eq!(err.kind, ScenErrorKind::UnknownFamily("warehouse".to_string()));
    }

    #[test]
    fn bad_arity_and_nan_are_invalid_values() {
        assert!(matches!(
            parse_scenario("circle = 1.0 2.0\n").unwrap_err().kind,
            ScenErrorKind::InvalidValue { .. }
        ));
        assert!(matches!(
            parse_scenario("gust = NaN\n").unwrap_err().kind,
            ScenErrorKind::InvalidValue { .. }
        ));
    }

    #[test]
    fn missing_mandatory_field_is_named() {
        let s = generate(Family::Forest, 0.5, 3);
        let text: String = render_scenario(&s)
            .lines()
            .filter(|l| !l.starts_with("goal"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse_scenario(&text).unwrap_err();
        assert_eq!(err.kind, ScenErrorKind::MissingField("goal"));
        assert!(err.to_string().contains("`goal`"));
    }
}
