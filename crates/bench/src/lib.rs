//! Benchmark support crate: the Criterion targets live in `benches/`.
//!
//! - `benches/experiments.rs` — one benchmark per paper experiment
//!   (E1-E10), timing a full regeneration of each figure/table
//!   equivalent.
//! - `benches/kernels.rs` — micro-benches of the autonomy kernels,
//!   including the scalar-vs-batched collision ablation behind E6.
//! - `benches/sim.rs` — closed-loop UAV missions and pipeline
//!   simulations.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Default seed shared by all benchmark workloads so that Criterion
/// compares like against like across runs.
pub const BENCH_SEED: u64 = 42;
