//! Benchmark support crate: the roofline harness lives in [`roofline`];
//! the Criterion targets live in `benches/`.
//!
//! - [`roofline`] — the measured-vs-modeled harness behind experiment
//!   E13 and the repo-root `BENCH_roofline.json` (run via
//!   `examples/roofline_report.rs`).
//! - [`sentinel`] — the regression sentinel: a per-metric-class
//!   tolerance diff over two bench/metric JSON documents (run via
//!   `examples/bench_sentinel.rs --check A B`; non-zero exit on
//!   regression). Seeds and guards the repo-root
//!   `BENCH_serve_latency.json` written by `examples/serve_bench.rs`.
//! - `benches/experiments.rs` — one benchmark per paper experiment
//!   (E1-E10), timing a full regeneration of each figure/table
//!   equivalent.
//! - `benches/kernels.rs` — micro-benches of the autonomy kernels,
//!   including the scalar-vs-batched collision ablation behind E6 and
//!   the scalar-vs-lane pairs for the vectorized kernels.
//! - `benches/sim.rs` — closed-loop UAV missions and pipeline
//!   simulations.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod roofline;
pub mod sentinel;

/// Default seed shared by all benchmark workloads so that Criterion
/// compares like against like across runs.
pub const BENCH_SEED: u64 = 42;
