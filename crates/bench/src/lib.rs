//! Benchmark support crate: the roofline harness lives in [`roofline`];
//! the Criterion targets live in `benches/`.
//!
//! - [`roofline`] — the measured-vs-modeled harness behind experiment
//!   E13 and the repo-root `BENCH_roofline.json` (run via
//!   `examples/roofline_report.rs`).
//! - `benches/experiments.rs` — one benchmark per paper experiment
//!   (E1-E10), timing a full regeneration of each figure/table
//!   equivalent.
//! - `benches/kernels.rs` — micro-benches of the autonomy kernels,
//!   including the scalar-vs-batched collision ablation behind E6 and
//!   the scalar-vs-lane pairs for the vectorized kernels.
//! - `benches/sim.rs` — closed-loop UAV missions and pipeline
//!   simulations.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod roofline;

/// Default seed shared by all benchmark workloads so that Criterion
/// compares like against like across runs.
pub const BENCH_SEED: u64 = 42;
