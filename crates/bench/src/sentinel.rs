//! Regression sentinel: a tolerance-aware diff over two metric/bench
//! JSON documents.
//!
//! The suite's benchmark artifacts (`BENCH_roofline.json`,
//! `BENCH_serve_latency.json`, exported metric dumps) are plain JSON
//! with numeric leaves. The sentinel flattens a baseline and a candidate
//! document to dotted paths and compares leaf by leaf under **per-class
//! tolerance rules**, mirroring the m7-trace metric split:
//!
//! - Paths under a `deterministic` object must match **exactly** — they
//!   are pure functions of (seed, config) and any drift is a
//!   correctness regression, not noise.
//! - Other numeric paths are **diagnostic** (wall-clock, host
//!   dependent): a regression is only flagged when the value moves in
//!   its *worse* direction by more than the configured ratio. The worse
//!   direction is inferred from the metric name (`_ns`/`misses`/
//!   `errors`/… are worse when higher; `gflops`/`hits`/`coverage`/…
//!   worse when lower; unclassified diagnostic paths are informational
//!   only).
//! - A path present in the baseline but missing from the candidate is
//!   always a regression (schema drift hides losses); new paths in the
//!   candidate are allowed (forward compat).
//!
//! [`compare`] returns a [`SentinelReport`]; `examples/bench_sentinel.rs`
//! wires it to `--check BASELINE CANDIDATE` with a non-zero exit on any
//! regression, which is what CI runs.

use std::fmt::Write as _;

use m7_trace::Json;

/// Default allowed worsening ratio for diagnostic metrics: candidate
/// may be up to `1 + ratio` times worse than baseline. The default is
/// deliberately generous (5.0 ⇒ 6× worse) so cross-host CI runs stay
/// quiet while order-of-magnitude regressions still trip.
pub const DEFAULT_DIAG_RATIO: f64 = 5.0;

/// Sentinel tuning.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Allowed fractional worsening for diagnostic metrics (see
    /// [`DEFAULT_DIAG_RATIO`]).
    pub diag_ratio: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self { diag_ratio: DEFAULT_DIAG_RATIO }
    }
}

/// How one flattened path was judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or informational-only).
    Ok,
    /// Moved in the better direction beyond the tolerance — worth a
    /// look, never a failure.
    Improved,
    /// Moved in the worse direction beyond tolerance, drifted from an
    /// exact-match baseline, or vanished from the candidate.
    Regressed,
}

/// One compared leaf.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Dotted path into the document (arrays as numeric components).
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value, or `None` when the path vanished.
    pub candidate: Option<f64>,
    /// The judgement.
    pub verdict: Verdict,
}

/// The full diff.
#[derive(Debug, Clone, Default)]
pub struct SentinelReport {
    /// Every baseline leaf, in document order.
    pub findings: Vec<Finding>,
}

impl SentinelReport {
    /// Paths judged regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.verdict == Verdict::Regressed).collect()
    }

    /// True when the candidate is acceptable.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable summary, one line per non-Ok finding plus totals.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.verdict {
                Verdict::Ok => continue,
                Verdict::Improved => "improved",
                Verdict::Regressed => "REGRESSED",
            };
            match f.candidate {
                Some(c) => {
                    let _ = writeln!(out, "{tag:>9}  {}: {} -> {}", f.path, f.baseline, c);
                }
                None => {
                    let _ = writeln!(out, "{tag:>9}  {}: {} -> (missing)", f.path, f.baseline);
                }
            }
        }
        let regressed = self.regressions().len();
        let _ = writeln!(
            out,
            "sentinel: {} paths compared, {} regressed -> {}",
            self.findings.len(),
            regressed,
            if regressed == 0 { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Which way "worse" points for a diagnostic metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsWorse,
    LowerIsWorse,
    Informational,
}

fn last_component(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

fn direction(path: &str) -> Direction {
    const HIGHER_WORSE: [&str; 8] =
        ["_ns", "_ms", "latency", "misses", "errors", "torn", "shed", "reaped"];
    const LOWER_WORSE: [&str; 7] =
        ["gflops", "gbps", "throughput", "hits", "coverage", "frames", "speedup"];
    let leaf = last_component(path);
    if HIGHER_WORSE.iter().any(|m| leaf.contains(m)) {
        return Direction::HigherIsWorse;
    }
    if LOWER_WORSE.iter().any(|m| leaf.contains(m)) {
        return Direction::LowerIsWorse;
    }
    Direction::Informational
}

fn is_deterministic(path: &str) -> bool {
    path.split('.').any(|c| c == "deterministic")
}

fn flatten_into(prefix: &str, doc: &Json, out: &mut Vec<(String, f64)>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match doc {
        Json::Num(v) => out.push((prefix.to_string(), *v)),
        Json::Obj(fields) => {
            for (key, value) in fields {
                flatten_into(&join(key), value, out);
            }
        }
        Json::Arr(items) => {
            for (i, value) in items.iter().enumerate() {
                flatten_into(&join(&i.to_string()), value, out);
            }
        }
        // Strings, bools, and nulls are labels, not measurements.
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

/// Flattens a JSON document to dotted-path numeric leaves, in document
/// order.
#[must_use]
pub fn flatten(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into("", doc, &mut out);
    out
}

fn judge(path: &str, baseline: f64, candidate: f64, config: &SentinelConfig) -> Verdict {
    if is_deterministic(path) {
        return if baseline.to_bits() == candidate.to_bits() || baseline == candidate {
            Verdict::Ok
        } else {
            Verdict::Regressed
        };
    }
    let allowed = config.diag_ratio;
    // `worse`/`better` are fractional moves relative to the baseline
    // magnitude; a zero baseline compares absolutely (any move from an
    // exact zero is a full-ratio move).
    let scale = if baseline == 0.0 { 1.0 } else { baseline.abs() };
    let shift = (candidate - baseline) / scale;
    match direction(path) {
        Direction::Informational => Verdict::Ok,
        Direction::HigherIsWorse if shift > allowed => Verdict::Regressed,
        Direction::HigherIsWorse if shift < -allowed => Verdict::Improved,
        Direction::LowerIsWorse if -shift > allowed => Verdict::Regressed,
        Direction::LowerIsWorse if -shift < -allowed => Verdict::Improved,
        Direction::HigherIsWorse | Direction::LowerIsWorse => Verdict::Ok,
    }
}

/// Diffs `candidate` against `baseline` under `config`. See the module
/// docs for the rules.
#[must_use]
pub fn compare(baseline: &Json, candidate: &Json, config: &SentinelConfig) -> SentinelReport {
    let base = flatten(baseline);
    let cand = flatten(candidate);
    let findings = base
        .iter()
        .map(|(path, b)| match cand.iter().find(|(p, _)| p == path) {
            Some((_, c)) => Finding {
                path: path.clone(),
                baseline: *b,
                candidate: Some(*c),
                verdict: judge(path, *b, *c, config),
            },
            None => Finding {
                path: path.clone(),
                baseline: *b,
                candidate: None,
                verdict: Verdict::Regressed,
            },
        })
        .collect();
    SentinelReport { findings }
}

/// Parses and diffs two JSON documents.
///
/// # Errors
///
/// Returns the parse error (with which side failed) when either
/// document is not valid JSON.
pub fn compare_json(
    baseline: &str,
    candidate: &str,
    config: &SentinelConfig,
) -> Result<SentinelReport, String> {
    let base = m7_trace::parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = m7_trace::parse_json(candidate).map_err(|e| format!("candidate: {e}"))?;
    Ok(compare(&base, &cand, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "schema": "m7-bench/serve-latency/v1",
        "deterministic": {"requests": 100, "cache_hits": 80},
        "diagnostic": {"eval_p99_ns": 1000, "tier_hits": 50, "note_count": 3}
    }"#;

    fn check(candidate: &str) -> SentinelReport {
        compare_json(BASE, candidate, &SentinelConfig::default()).expect("valid json")
    }

    #[test]
    fn identical_documents_pass() {
        let report = check(BASE);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.findings.len(), 5);
    }

    #[test]
    fn deterministic_drift_fails_exactly() {
        let drifted = BASE.replace("\"requests\": 100", "\"requests\": 101");
        let report = check(&drifted);
        assert!(!report.passed());
        assert_eq!(report.regressions()[0].path, "deterministic.requests");
    }

    #[test]
    fn diagnostic_latency_tolerates_noise_but_not_blowups() {
        // 3x worse: within the default 6x budget.
        let noisy = BASE.replace("\"eval_p99_ns\": 1000", "\"eval_p99_ns\": 3000");
        assert!(check(&noisy).passed());
        // 20x worse: regression.
        let blown = BASE.replace("\"eval_p99_ns\": 1000", "\"eval_p99_ns\": 20000");
        let report = check(&blown);
        assert!(!report.passed());
        assert_eq!(report.regressions()[0].path, "diagnostic.eval_p99_ns");
    }

    #[test]
    fn lower_is_worse_metrics_fail_on_collapse() {
        let collapsed = BASE.replace("\"tier_hits\": 50", "\"tier_hits\": 0");
        let report =
            compare_json(BASE, &collapsed, &SentinelConfig { diag_ratio: 0.5 }).expect("json");
        assert!(!report.passed());
        assert_eq!(report.regressions()[0].path, "diagnostic.tier_hits");
    }

    #[test]
    fn missing_path_is_a_regression_and_new_paths_are_not() {
        let missing = BASE.replace("\"tier_hits\": 50, ", "");
        assert!(!check(&missing).passed());
        let extra = BASE.replace("\"note_count\": 3", "\"note_count\": 3, \"new_metric\": 9");
        assert!(check(&extra).passed());
    }

    #[test]
    fn unclassified_diagnostics_are_informational() {
        let moved = BASE.replace("\"note_count\": 3", "\"note_count\": 400");
        assert!(check(&moved).passed());
    }

    #[test]
    fn render_names_the_guilty_path() {
        let drifted = BASE.replace("\"cache_hits\": 80", "\"cache_hits\": 79");
        let text = check(&drifted).render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("deterministic.cache_hits"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }
}
