//! Measured-vs-modeled roofline harness: the wall-clock half of
//! experiment E13.
//!
//! The m7-arch cost models have always *predicted* what the kernels cost;
//! this module closes the loop. For each of the four vectorized kernels
//! (batched collision, BRIEF Hamming matching, dense correlation, MLP
//! inference) it:
//!
//! 1. builds a deterministic workload (seed [`crate::BENCH_SEED`]) at
//!    several batch sizes,
//! 2. counts FLOPs and bytes *analytically* from the kernel's own
//!    [`KernelProfile`] constructor — the same accounting the roofline
//!    model consumes,
//! 3. measures achieved GFLOP/s and GB/s on host wall clock for both the
//!    lane-vectorized path and its scalar reference (best-of-N timing),
//! 4. checks the lane path still agrees with the scalar reference on the
//!    measured workload, and
//! 5. compares achieved throughput against the
//!    [`Platform::preset`] roofline ceilings for the scalar-CPU and
//!    SIMD-CPU presets.
//!
//! Everything wall-clock is **diagnostic** by the m7-trace convention:
//! the numbers depend on the host and never feed golden reports. The
//! analytic half (profiles, intensities, attainable ceilings) is
//! deterministic and is what E13 pins in the golden suite.
//!
//! Output is a text report plus a machine-readable JSON document
//! (`BENCH_roofline.json` at the repo root) whose shape is validated with
//! the m7-trace JSON reader — see [`validate_roofline_json`].

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_kernels::dnn::{Dataset, Mlp, MlpScratch, Precision};
use m7_kernels::geometry::{Pose2, Vec2};
use m7_kernels::perception::{Descriptor, FeatureFrontEnd};
use m7_kernels::planning::CollisionWorld;
use m7_kernels::slam::{synthetic_room_scan, DenseScanSlam, DenseSlamConfig};
use m7_trace::Json;
use rand::{Rng, SeedableRng};

use crate::BENCH_SEED;

/// Schema tag stamped into the JSON document, bumped on shape changes.
pub const ROOFLINE_SCHEMA: &str = "m7-bench/roofline/v1";

/// Best-of-N timing repetitions in full mode.
const FULL_REPS: usize = 5;
/// Best-of-N timing repetitions in quick (CI smoke) mode.
const QUICK_REPS: usize = 2;

/// Achieved-vs-attainable comparison against one platform preset.
#[derive(Debug, Clone)]
pub struct ModeledCeiling {
    /// Preset name (`cpu-scalar` / `cpu-simd`).
    pub platform: String,
    /// Roofline-attainable throughput at this kernel's intensity (GFLOP/s).
    pub attainable_gflops: f64,
    /// Which side of the ridge point the kernel sits on.
    pub memory_bound: bool,
    /// Achieved / attainable (1.0 = the model's ceiling was reached).
    pub achieved_fraction: f64,
}

/// One kernel at one batch size: analytic footprint, measured wall clock,
/// and the modeled ceilings.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Profile name (e.g. `collision-4096x256`).
    pub kernel: String,
    /// Kernel family label from the profile.
    pub family: String,
    /// Batch size (kernel-specific unit: edges, queries, hypotheses,
    /// inferences).
    pub batch: usize,
    /// Analytic operation count per invocation.
    pub ops: f64,
    /// Analytic memory traffic per invocation (bytes).
    pub bytes: f64,
    /// Arithmetic intensity (ops/byte).
    pub intensity: f64,
    /// Best-of-N wall clock of the lane-vectorized path (seconds).
    pub lane_seconds: f64,
    /// Best-of-N wall clock of the scalar reference path (seconds).
    pub scalar_seconds: f64,
    /// Achieved throughput of the lane path (GFLOP/s, analytic ops).
    pub achieved_gflops: f64,
    /// Achieved memory traffic of the lane path (GB/s, analytic bytes).
    pub achieved_gbps: f64,
    /// Lane output compared equal to the scalar reference on this
    /// workload.
    pub lane_agrees: bool,
    /// Ceilings for the scalar-CPU and SIMD-CPU presets.
    pub ceilings: Vec<ModeledCeiling>,
}

impl KernelMeasurement {
    /// Lane-vs-scalar wall-clock speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.lane_seconds > 0.0 {
            self.scalar_seconds / self.lane_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// The full harness result: one [`KernelMeasurement`] per kernel × batch
/// size.
#[derive(Debug, Clone)]
pub struct RooflineSuite {
    /// Quick (CI smoke) mode: tiny batches, fewer reps.
    pub quick: bool,
    /// All measurements, in kernel order.
    pub measurements: Vec<KernelMeasurement>,
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up pass populates caches and the branch predictor.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn ceilings_for(intensity: f64, achieved_gflops: f64) -> Vec<ModeledCeiling> {
    [PlatformKind::CpuScalar, PlatformKind::CpuSimd]
        .iter()
        .map(|&kind| {
            let roofline = Platform::preset(kind).roofline();
            let attainable =
                roofline.attainable(m7_units::OpsPerByte::new(intensity)).value() / 1e9;
            ModeledCeiling {
                platform: kind.to_string(),
                attainable_gflops: attainable,
                memory_bound: roofline.is_memory_bound(m7_units::OpsPerByte::new(intensity)),
                achieved_fraction: if attainable > 0.0 {
                    achieved_gflops / attainable
                } else {
                    0.0
                },
            }
        })
        .collect()
}

fn measure(
    profile: &KernelProfile,
    batch: usize,
    lane_seconds: f64,
    scalar_seconds: f64,
    lane_agrees: bool,
) -> KernelMeasurement {
    let ops = profile.ops().value();
    let bytes = profile.bytes().value();
    let intensity = profile.arithmetic_intensity().value();
    let achieved_gflops = if lane_seconds > 0.0 { ops / lane_seconds / 1e9 } else { 0.0 };
    let achieved_gbps = if lane_seconds > 0.0 { bytes / lane_seconds / 1e9 } else { 0.0 };
    KernelMeasurement {
        kernel: profile.name().to_string(),
        family: profile.family().to_string(),
        batch,
        ops,
        bytes,
        intensity,
        lane_seconds,
        scalar_seconds,
        achieved_gflops,
        achieved_gbps,
        lane_agrees,
        ceilings: ceilings_for(intensity, achieved_gflops),
    }
}

fn collision_cases(quick: bool, reps: usize, out: &mut Vec<KernelMeasurement>) {
    let sizes: &[(usize, usize)] =
        if quick { &[(64, 32)] } else { &[(512, 128), (2048, 256), (8192, 256)] };
    for &(edges, obstacles) in sizes {
        let mut world = CollisionWorld::new(40.0, 40.0);
        world.scatter_circles(obstacles, 0.2, 1.0, BENCH_SEED);
        let checker = world.to_batch_checker();
        // PRM-style local edges: short segments from random origins. Long
        // full-span edges nearly always collide, so the scalar path exits
        // after a handful of circles and the benchmark degenerates into a
        // branch-predictor test; short, mostly-free edges make both paths
        // sweep the whole obstacle set — the planner's steady-state regime.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 1);
        let edge_list: Vec<(Vec2, Vec2)> = (0..edges)
            .map(|_| {
                let from = Vec2::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0));
                let to = from + Vec2::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5));
                (from, to)
            })
            .collect();
        let lane = time_best(reps, || {
            black_box(checker.segments_free(black_box(&edge_list)));
        });
        let scalar = time_best(reps, || {
            black_box(checker.segments_free_scalar(black_box(&edge_list)));
        });
        let agrees = checker.segments_free(&edge_list) == checker.segments_free_scalar(&edge_list);
        let profile = KernelProfile::collision_batch(edges, obstacles);
        out.push(measure(&profile, edges, lane, scalar, agrees));
    }
}

fn matcher_cases(quick: bool, reps: usize, out: &mut Vec<KernelMeasurement>) {
    let sizes: &[(usize, usize)] = if quick { &[(48, 48)] } else { &[(256, 256), (512, 512)] };
    for &(queries, candidates) in sizes {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 2);
        let gen_set = |rng: &mut rand_chacha::ChaCha8Rng, n: usize| -> Vec<Descriptor> {
            (0..n).map(|_| Descriptor([rng.gen(), rng.gen(), rng.gen(), rng.gen()])).collect()
        };
        let a = gen_set(&mut rng, queries);
        let b = gen_set(&mut rng, candidates);
        let lane = time_best(reps, || {
            black_box(FeatureFrontEnd::match_descriptors_planes(black_box(&a), black_box(&b)));
        });
        let scalar = time_best(reps, || {
            black_box(FeatureFrontEnd::match_descriptors_scalar(black_box(&a), black_box(&b)));
        });
        let agrees = FeatureFrontEnd::match_descriptors_planes(&a, &b)
            == FeatureFrontEnd::match_descriptors_scalar(&a, &b);
        let profile = KernelProfile::descriptor_match(queries, candidates);
        out.push(measure(&profile, queries, lane, scalar, agrees));
    }
}

fn correlation_cases(quick: bool, reps: usize, out: &mut Vec<KernelMeasurement>) {
    let configs: &[(DenseSlamConfig, usize)] = if quick {
        &[(DenseSlamConfig { window_trans: 0.1, window_rot: 0.06, ..DEFAULT_DENSE }, 30)]
    } else {
        &[(DenseSlamConfig { window_trans: 0.25, ..DEFAULT_DENSE }, 60), (DEFAULT_DENSE, 90)]
    };
    for &(config, beams) in configs {
        let room_center = Vec2::new(15.0, 15.0);
        let mut slam = DenseScanSlam::new(config, 30.0, 30.0, 0.25);
        let start = Pose2::new(room_center, 0.0);
        let scan0 = synthetic_room_scan(start, room_center, 10.0, 8.0, beams);
        // Two identity steps integrate the map so the search has structure.
        slam.step(Pose2::identity(), &scan0);
        slam.step(Pose2::identity(), &scan0);
        let prior = Pose2::new(room_center + Vec2::new(0.05, -0.03), 0.01);
        let scan = synthetic_room_scan(prior, room_center, 10.0, 8.0, beams);
        let lane = time_best(reps, || {
            black_box(slam.match_scan(black_box(prior), black_box(&scan)));
        });
        let scalar = time_best(reps, || {
            black_box(slam.match_scan_reference(black_box(prior), black_box(&scan)));
        });
        let agrees = slam.match_scan(prior, &scan) == slam.match_scan_reference(prior, &scan);
        let hypotheses = slam.hypotheses_per_scan();
        let profile = KernelProfile::correlation_scan(hypotheses, scan.bearings.len());
        out.push(measure(&profile, hypotheses, lane, scalar, agrees));
    }
}

/// Shared default so the quick/full configs above stay in sync with the
/// kernel's own defaults.
const DEFAULT_DENSE: DenseSlamConfig =
    DenseSlamConfig { window_trans: 0.5, window_rot: 0.15, step_trans: 0.05, step_rot: 0.015 };

fn dnn_cases(quick: bool, reps: usize, out: &mut Vec<KernelMeasurement>) {
    let batches: &[usize] = if quick { &[64] } else { &[256, 2048] };
    let widths = [8usize, 64, 64, 6];
    let mlp = {
        let mut m = Mlp::new(&widths, BENCH_SEED);
        // A few epochs so weights are non-degenerate (quantization paths
        // see a realistic spread).
        let data = Dataset::blobs(40, widths[3], widths[0], BENCH_SEED);
        m.train(&data, 2, 0.03);
        m
    };
    for &batch in batches {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 3);
        let inputs: Vec<f64> = (0..batch * widths[0]).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut scratch = MlpScratch::default();
        let lane = time_best(reps, || {
            black_box(mlp.forward_batch_into(black_box(&inputs), Precision::Int8, &mut scratch));
        });
        let scalar = time_best(reps, || {
            for s in 0..batch {
                black_box(mlp.forward_reference(
                    black_box(&inputs[s * widths[0]..(s + 1) * widths[0]]),
                    Precision::Int8,
                ));
            }
        });
        let batched = mlp.forward_batch_into(&inputs, Precision::Int8, &mut scratch).to_vec();
        let agrees = (0..batch).all(|s| {
            batched[s * widths[3]..(s + 1) * widths[3]]
                == mlp
                    .forward_reference(&inputs[s * widths[0]..(s + 1) * widths[0]], Precision::Int8)
                    [..]
        });
        let profile = KernelProfile::dnn_inference(
            mlp.macs_per_inference() * batch as f64,
            mlp.weight_bytes(Precision::Int8) * batch as f64,
        );
        let mut m = measure(&profile, batch, lane, scalar, agrees);
        // The dnn profile name carries no shape; disambiguate the batch
        // sizes the same way the other kernel families do.
        m.kernel = format!("dnn-inference-b{batch}");
        out.push(m);
    }
}

/// Runs the whole harness. `quick` shrinks batches and repetitions to CI
/// smoke-test scale (sub-second); full mode sizes batches so the hot
/// loops dominate measurement noise.
#[must_use]
pub fn run_suite(quick: bool) -> RooflineSuite {
    let reps = if quick { QUICK_REPS } else { FULL_REPS };
    let mut measurements = Vec::new();
    collision_cases(quick, reps, &mut measurements);
    matcher_cases(quick, reps, &mut measurements);
    correlation_cases(quick, reps, &mut measurements);
    dnn_cases(quick, reps, &mut measurements);
    RooflineSuite { quick, measurements }
}

impl RooflineSuite {
    /// `true` if every lane kernel agreed with its scalar reference on
    /// the measured workloads.
    #[must_use]
    pub fn all_lanes_agree(&self) -> bool {
        self.measurements.iter().all(|m| m.lane_agrees)
    }

    /// Human-readable report: per kernel, the analytic footprint, the
    /// measured throughputs, the lane-vs-scalar speedup, and how close
    /// the lane path came to each preset's roofline ceiling.
    #[must_use]
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "measured vs modeled roofline ({} mode)", self.mode());
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>9} {:>9} {:>8} | {:>9} {:>9} | {:>10} {:>10}",
            "kernel",
            "ai",
            "GFLOP/s",
            "GB/s",
            "speedup",
            "scal-ceil",
            "simd-ceil",
            "%scalar",
            "%simd"
        );
        for m in &self.measurements {
            let scal = &m.ceilings[0];
            let simd = &m.ceilings[1];
            let _ = writeln!(
                out,
                "{:<24} {:>7.3} {:>9.3} {:>9.3} {:>7.2}x | {:>9.3} {:>9.3} | {:>9.1}% {:>9.1}%",
                m.kernel,
                m.intensity,
                m.achieved_gflops,
                m.achieved_gbps,
                m.speedup(),
                scal.attainable_gflops,
                simd.attainable_gflops,
                100.0 * scal.achieved_fraction,
                100.0 * simd.achieved_fraction,
            );
        }
        let _ = writeln!(
            out,
            "lane/scalar agreement: {}",
            if self.all_lanes_agree() { "all kernels bit-identical" } else { "DIVERGENCE" }
        );
        out
    }

    fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }

    /// Machine-readable JSON document (the `BENCH_roofline.json` shape).
    ///
    /// Hand-rolled emitter — all names are ASCII identifiers, so no
    /// escaping is needed; the shape is pinned by [`ROOFLINE_SCHEMA`] and
    /// checked by [`validate_roofline_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{ROOFLINE_SCHEMA}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"kernels\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"kernel\": \"{}\",", m.kernel);
            let _ = writeln!(out, "      \"family\": \"{}\",", m.family);
            let _ = writeln!(out, "      \"batch\": {},", m.batch);
            let _ = writeln!(out, "      \"ops\": {:.1},", m.ops);
            let _ = writeln!(out, "      \"bytes\": {:.1},", m.bytes);
            let _ = writeln!(out, "      \"intensity_ops_per_byte\": {:.6},", m.intensity);
            let _ = writeln!(out, "      \"lane_seconds\": {:.9},", m.lane_seconds);
            let _ = writeln!(out, "      \"scalar_seconds\": {:.9},", m.scalar_seconds);
            let _ = writeln!(out, "      \"speedup\": {:.3},", m.speedup());
            let _ = writeln!(out, "      \"achieved_gflops\": {:.6},", m.achieved_gflops);
            let _ = writeln!(out, "      \"achieved_gbps\": {:.6},", m.achieved_gbps);
            let _ = writeln!(out, "      \"lane_agrees_with_scalar\": {},", m.lane_agrees);
            out.push_str("      \"modeled\": [\n");
            for (j, c) in m.ceilings.iter().enumerate() {
                let comma = if j + 1 < m.ceilings.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "        {{\"platform\": \"{}\", \"attainable_gflops\": {:.6}, \
                     \"memory_bound\": {}, \"achieved_fraction\": {:.6}}}{comma}",
                    c.platform, c.attainable_gflops, c.memory_bound, c.achieved_fraction
                );
            }
            out.push_str("      ]\n");
            let comma = if i + 1 < self.measurements.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Structurally validates a `BENCH_roofline.json` document using the
/// m7-trace JSON reader: schema tag, non-empty kernel list, every
/// required field present with the right type, all numbers finite and
/// non-negative, and both CPU presets modeled per kernel.
///
/// Returns the number of kernel entries.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_roofline_json(json: &str) -> Result<usize, String> {
    let doc = m7_trace::parse_json(json)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"schema\"".to_string())?;
    if schema != ROOFLINE_SCHEMA {
        return Err(format!("unexpected schema {schema:?}, wanted {ROOFLINE_SCHEMA:?}"));
    }
    doc.get("quick")
        .and_then(Json::as_bool)
        .ok_or_else(|| "missing boolean field \"quick\"".to_string())?;
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing array field \"kernels\"".to_string())?;
    if kernels.is_empty() {
        return Err("\"kernels\" must be non-empty".into());
    }
    for (i, k) in kernels.iter().enumerate() {
        let at = |msg: &str| format!("kernel {i}: {msg}");
        for field in ["kernel", "family"] {
            k.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| at(&format!("missing string field {field:?}")))?;
        }
        for field in [
            "batch",
            "ops",
            "bytes",
            "intensity_ops_per_byte",
            "lane_seconds",
            "scalar_seconds",
            "speedup",
            "achieved_gflops",
            "achieved_gbps",
        ] {
            let v = k
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| at(&format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(at(&format!("{field:?} must be finite and non-negative, got {v}")));
            }
        }
        k.get("lane_agrees_with_scalar")
            .and_then(Json::as_bool)
            .ok_or_else(|| at("missing boolean field \"lane_agrees_with_scalar\""))?;
        let modeled = k
            .get("modeled")
            .and_then(Json::as_arr)
            .ok_or_else(|| at("missing array field \"modeled\""))?;
        let mut platforms: Vec<&str> =
            modeled.iter().filter_map(|c| c.get("platform").and_then(Json::as_str)).collect();
        platforms.sort_unstable();
        if platforms != ["cpu-scalar", "cpu-simd"] {
            return Err(at(&format!(
                "modeled presets must be cpu-scalar+cpu-simd, got {platforms:?}"
            )));
        }
        for c in modeled {
            let v = c
                .get("attainable_gflops")
                .and_then(Json::as_num)
                .ok_or_else(|| at("ceiling missing \"attainable_gflops\""))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(at("\"attainable_gflops\" must be positive"));
            }
            c.get("memory_bound")
                .and_then(Json::as_bool)
                .ok_or_else(|| at("ceiling missing \"memory_bound\""))?;
            c.get("achieved_fraction")
                .and_then(Json::as_num)
                .ok_or_else(|| at("ceiling missing \"achieved_fraction\""))?;
        }
    }
    Ok(kernels.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_agrees() {
        let suite = run_suite(true);
        assert_eq!(suite.measurements.len(), 4, "one case per kernel in quick mode");
        assert!(suite.all_lanes_agree(), "lane kernels must match their scalar references");
        for m in &suite.measurements {
            assert!(m.ops > 0.0 && m.bytes > 0.0 && m.intensity > 0.0);
            assert!(m.lane_seconds > 0.0 && m.scalar_seconds > 0.0);
            assert_eq!(m.ceilings.len(), 2);
        }
        let text = suite.text_report();
        assert!(text.contains("measured vs modeled roofline"));
        assert!(text.contains("bit-identical"));
    }

    #[test]
    fn json_round_trips_through_validator() {
        let suite = run_suite(true);
        let json = suite.to_json();
        let kernels = validate_roofline_json(&json).expect("emitted JSON must validate");
        assert_eq!(kernels, suite.measurements.len());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_roofline_json("[]").is_err(), "wrong top-level shape");
        assert!(validate_roofline_json("{\"schema\": \"bogus\"}").is_err(), "wrong schema");
        let missing = format!("{{\"schema\": \"{ROOFLINE_SCHEMA}\", \"quick\": false}}");
        assert!(validate_roofline_json(&missing).is_err(), "missing kernels array");
        let empty =
            format!("{{\"schema\": \"{ROOFLINE_SCHEMA}\", \"quick\": false, \"kernels\": []}}");
        assert!(validate_roofline_json(&empty).is_err(), "empty kernels array");
    }
}
