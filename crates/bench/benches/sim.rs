//! Benchmarks of the end-to-end simulator: closed-loop UAV missions and
//! discrete-event pipeline runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_bench::BENCH_SEED;
use m7_sim::mission::MissionSpec;
use m7_sim::pipeline::Pipeline;
use m7_sim::sensor::SensorSpec;
use m7_sim::uav::{ComputeTier, Uav, UavConfig};
use m7_units::Seconds;
use std::hint::black_box;

fn bench_uav_missions(c: &mut Criterion) {
    let mission = MissionSpec::survey(1000.0);
    let mut group = c.benchmark_group("uav_mission_1km");
    group.sample_size(20);
    for tier in [ComputeTier::Micro, ComputeTier::Embedded, ComputeTier::Server] {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |b, &t| {
            let uav = Uav::new(UavConfig::default().with_tier(t));
            b.iter(|| black_box(uav.fly(black_box(&mission), BENCH_SEED)))
        });
    }
    group.finish();
}

fn bench_pipeline_des(c: &mut Criterion) {
    let pipeline = Pipeline::new(
        SensorSpec::camera_vga(30.0),
        Platform::preset(PlatformKind::CpuSimd),
        KernelProfile::feature_extract(640, 480),
    );
    let mut group = c.benchmark_group("pipeline_des");
    group.sample_size(20);
    group.bench_function("vga_30fps_10s", |b| {
        b.iter(|| black_box(pipeline.simulate(Seconds::new(10.0))))
    });
    group.finish();
}

fn bench_rover_patrol(c: &mut Criterion) {
    use m7_kernels::geometry::Vec2;
    use m7_kernels::planning::CollisionWorld;
    use m7_sim::rover::{Rover, RoverConfig};

    let mut world = CollisionWorld::new(40.0, 40.0);
    world.scatter_circles(20, 0.4, 1.2, BENCH_SEED);
    let rover = Rover::new(RoverConfig::default());
    let mut group = c.benchmark_group("rover");
    group.sample_size(10);
    group.bench_function("planner_in_the_loop_patrol", |b| {
        b.iter(|| {
            black_box(rover.patrol(
                &world,
                Vec2::new(1.0, 1.0),
                &[Vec2::new(35.0, 35.0)],
                BENCH_SEED,
            ))
        })
    });
    group.finish();
}

criterion_group!(sim, bench_uav_missions, bench_pipeline_des, bench_rover_patrol);
criterion_main!(sim);
