//! Serial-vs-parallel benchmarks for the deterministic pool (`m7-par`).
//!
//! Every target runs the *same* seeded computation through
//! `ParConfig::with_threads(1, 2, 4, ...)`, so the timing deltas isolate
//! scheduling cost and scaling; outputs are bit-identical by the m7-par
//! determinism contract. On a multi-core host the Genetic
//! population-evaluation target scales near-linearly to 4 threads; on a
//! single-core host all thread counts collapse to roughly serial time
//! (the pool adds only claim-counter overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use m7_bench::BENCH_SEED;
use m7_dse::explorer::{Explorer, SearchBudget};
use m7_dse::space::{DesignSpace, Dimension};
use m7_kernels::geometry::{Pose2, Vec2};
use m7_kernels::grid::OccupancyGrid;
use m7_kernels::planning::CollisionWorld;
use m7_kernels::slam::{synthetic_room_scan, ParticleFilter, ParticleFilterConfig};
use m7_par::ParConfig;
use m7_suite::experiments::{run_all_parallel, run_all_serial, Timing};
use rand::{Rng, SeedableRng};

/// Thread counts exercised by every scaling target.
const THREADS: [usize; 3] = [1, 2, 4];

/// A deliberately expensive smooth objective: the per-evaluation cost
/// (a few thousand transcendental ops) is far above the pool's claim
/// overhead, so the scaling curve reflects the scheduler, not noise.
fn heavy_objective(v: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    let mut x = v[0] * 0.11 + v[1] * 0.07 + v[2] * 0.05 + 1.0;
    for _ in 0..4000 {
        x = (x * 1.000_1).sin() + 1.5;
        acc += x.sqrt();
    }
    let dx = v[0] - 21.0;
    let dy = v[1] - 13.0;
    let dz = v[2] - 8.0;
    dx * dx + dy * dy + dz * dz + (acc - acc.floor())
}

fn heavy_space() -> DesignSpace {
    DesignSpace::new(vec![
        Dimension::new("x", (0..32).map(f64::from).collect()),
        Dimension::new("y", (0..32).map(f64::from).collect()),
        Dimension::new("z", (0..16).map(f64::from).collect()),
    ])
}

/// The ISSUE's headline target: Genetic population evaluation at 1/2/4
/// threads on a non-trivial objective.
fn bench_genetic_scaling(c: &mut Criterion) {
    let space = heavy_space();
    let budget = SearchBudget::new(240);
    let mut group = c.benchmark_group("dse_genetic_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(240));
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            b.iter(|| {
                Explorer::genetic().run_with(&space, &heavy_objective, budget, BENCH_SEED, par)
            })
        });
    }
    group.finish();
}

/// Batched collision checking: serial `segments_free` vs `par_segments_free`.
fn bench_par_collision(c: &mut Criterion) {
    let mut world = CollisionWorld::new(50.0, 50.0);
    world.scatter_circles(120, 0.4, 1.5, BENCH_SEED);
    world.add_rect(Vec2::new(20.0, 0.0), Vec2::new(22.0, 35.0));
    let batch = world.to_batch_checker();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let edges: Vec<(Vec2, Vec2)> = (0..4096)
        .map(|_| {
            (
                Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("collision_par_4096_edges");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| batch.segments_free(&edges).iter().filter(|f| **f).count())
    });
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            b.iter(|| batch.par_segments_free(&edges, par).iter().filter(|f| **f).count())
        });
    }
    group.finish();
}

/// Particle-filter measurement update: serial `update` vs `par_update`.
fn bench_par_particle(c: &mut Criterion) {
    let center = Vec2::new(10.0, 10.0);
    let (half_w, half_h) = (7.0, 5.0);
    let mut map = OccupancyGrid::new(20.0, 20.0, 0.25);
    for _ in 0..3 {
        let scan = synthetic_room_scan(Pose2::new(center, 0.0), center, half_w, half_h, 180);
        for (bearing, range) in scan.bearings.iter().zip(&scan.ranges) {
            let end = center + Vec2::new(range * bearing.cos(), range * bearing.sin());
            map.integrate_ray(center, end, true);
        }
    }
    let truth = Pose2::new(center, 0.0);
    let scan = synthetic_room_scan(truth, center, half_w, half_h, 120);
    let config = ParticleFilterConfig { particles: 800, ..ParticleFilterConfig::default() };

    let mut group = c.benchmark_group("particle_update_800");
    group.sample_size(20);
    group.throughput(Throughput::Elements(800));
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut pf = ParticleFilter::new(config, &map, truth, 1.0, BENCH_SEED);
            pf.update(&map, &scan);
            pf.effective_sample_size()
        })
    });
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            b.iter(|| {
                let mut pf = ParticleFilter::new(config, &map, truth, 1.0, BENCH_SEED);
                pf.par_update(&map, &scan, par);
                pf.effective_sample_size()
            })
        });
    }
    group.finish();
}

/// The whole suite: serial loop vs concurrent runner (modeled E6 timing
/// so both sides run the identical deterministic workload).
fn bench_run_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_all_experiments");
    group.sample_size(10);
    group
        .bench_function("serial", |b| b.iter(|| run_all_serial(BENCH_SEED, Timing::Modeled).len()));
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            b.iter(|| run_all_parallel(BENCH_SEED, Timing::Modeled, par).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_genetic_scaling,
    bench_par_collision,
    bench_par_particle,
    bench_run_all
);
criterion_main!(benches);
