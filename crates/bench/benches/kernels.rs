//! Micro-benchmarks of the autonomy kernels, including the scalar vs.
//! batched collision-checking ablation that experiment E6 reports and the
//! scalar-vs-lane pairs for the PR 6 vectorized hot loops (compare with
//! `RUSTFLAGS="-C target-cpu=native"` to see the lane headroom).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use m7_bench::BENCH_SEED;
use m7_kernels::dnn::{Dataset, Mlp, MlpScratch, Precision};
use m7_kernels::dynamics::{Link, SerialChain};
use m7_kernels::geometry::Vec2;
use m7_kernels::linalg::Matrix;
use m7_kernels::perception::{Descriptor, FeatureFrontEnd, Image};
use m7_kernels::planning::{CollisionWorld, Rrt, RrtConfig};
use m7_kernels::slam::{EkfSlam, EkfSlamConfig, LandmarkObservation};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// The E6 ablation: identical edge batches through the conventional
/// sampled validator, the exact scalar test, and the batched SoA checker.
fn bench_collision_checking(c: &mut Criterion) {
    let mut world = CollisionWorld::new(50.0, 50.0);
    world.scatter_circles(120, 0.4, 1.5, BENCH_SEED);
    world.add_rect(Vec2::new(20.0, 0.0), Vec2::new(22.0, 35.0));
    let batch = world.to_batch_checker();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let edges: Vec<(Vec2, Vec2)> = (0..2048)
        .map(|_| {
            (
                Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("collision_2048_edges");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("scalar_sampled_validator", |b| {
        b.iter(|| edges.iter().filter(|(a, b)| world.segment_free_sampled(*a, *b, 0.05)).count())
    });
    group.bench_function("scalar_exact", |b| {
        b.iter(|| edges.iter().filter(|(a, b)| world.segment_free(*a, *b)).count())
    });
    group.bench_function("batched_soa", |b| {
        b.iter(|| batch.segments_free(black_box(&edges)).iter().filter(|f| **f).count())
    });
    group.finish();
}

fn bench_rrt(c: &mut Criterion) {
    let mut world = CollisionWorld::new(20.0, 20.0);
    world.scatter_circles(15, 0.5, 1.2, BENCH_SEED);
    let mut group = c.benchmark_group("rrt_plan");
    group.sample_size(20);
    group.bench_function("cluttered_20x20", |b| {
        b.iter(|| {
            Rrt::new(RrtConfig::default(), BENCH_SEED).plan(
                &world,
                Vec2::new(0.5, 0.5),
                Vec2::new(19.5, 19.5),
            )
        })
    });
    group.finish();
}

fn bench_ekf_slam(c: &mut Criterion) {
    // Pre-populate a filter with 20 landmarks, then time one
    // predict+update cycle (the steady-state cost).
    let mut template = EkfSlam::new(EkfSlamConfig::default());
    for id in 0..20 {
        template.update(&[LandmarkObservation { id, range: 5.0, bearing: 0.1 * f64::from(id) }]);
    }
    c.bench_function("ekf_slam/predict_update_20_landmarks", |b| {
        b.iter(|| {
            let mut slam = template.clone();
            slam.predict(1.0, 0.1, 0.1);
            slam.update(&[LandmarkObservation { id: 7, range: 5.1, bearing: 0.65 }]);
            black_box(slam.pose())
        })
    });
}

fn bench_dnn_inference(c: &mut Criterion) {
    let data = Dataset::blobs(50, 4, 2, BENCH_SEED);
    let mut mlp = Mlp::new(&[2, 32, 32, 4], BENCH_SEED);
    mlp.train(&data, 5, 0.05);
    let input = [1.5, -0.5];
    let mut group = c.benchmark_group("dnn_forward");
    for precision in Precision::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(precision), &precision, |b, &p| {
            b.iter(|| black_box(mlp.forward(black_box(&input), p)))
        });
    }
    group.finish();
}

fn bench_dynamics(c: &mut Criterion) {
    let chain = SerialChain::new(vec![Link::uniform_rod(0.5, 1.0); 7]);
    let q = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7];
    let qd = [0.5; 7];
    let qdd = [1.0; 7];
    c.bench_function("rnea/7_dof", |b| {
        b.iter(|| black_box(chain.inverse_dynamics(black_box(&q), &qd, &qdd)))
    });
}

fn bench_linalg(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let n = 40;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.gen_range(-1.0..1.0);
        }
    }
    let spd = {
        let mut s = m.mul(&m.transpose()).unwrap();
        for i in 0..n {
            s[(i, i)] += n as f64;
        }
        s
    };
    let rhs = Matrix::column(&vec![1.0; n]);
    c.bench_function("linalg/solve_40x40", |b| b.iter(|| black_box(spd.solve(&rhs).unwrap())));
    c.bench_function("linalg/cholesky_40x40", |b| b.iter(|| black_box(spd.cholesky().unwrap())));
}

fn bench_localization(c: &mut Criterion) {
    use m7_kernels::geometry::Pose2;
    use m7_kernels::grid::OccupancyGrid;
    use m7_kernels::slam::{synthetic_room_scan, ParticleFilter, ParticleFilterConfig};

    // A mapped room and one scan, shared across iterations.
    let center = Vec2::new(10.0, 10.0);
    let mut map = OccupancyGrid::new(20.0, 20.0, 0.25);
    let pose = Pose2::new(center, 0.0);
    let scan = synthetic_room_scan(pose, center, 7.0, 5.0, 120);
    for (b, r) in scan.bearings.iter().zip(&scan.ranges) {
        let end = center + Vec2::new(r * b.cos(), r * b.sin());
        for _ in 0..3 {
            map.integrate_ray(center, end, true);
        }
    }
    let mut group = c.benchmark_group("particle_filter");
    group.sample_size(20);
    group.bench_function("update_500_particles", |b| {
        b.iter(|| {
            let mut pf =
                ParticleFilter::new(ParticleFilterConfig::default(), &map, pose, 1.0, BENCH_SEED);
            pf.update(&map, black_box(&scan));
            black_box(pf.estimate())
        })
    });
    group.finish();
}

fn bench_icp(c: &mut Criterion) {
    use m7_kernels::geometry::Pose2;
    use m7_kernels::slam::{icp_align, IcpConfig};

    let target: Vec<Vec2> = (0..200)
        .map(|i| {
            let t = i as f64 * 0.1;
            Vec2::new(t, (t * 1.1).sin() + 0.4 * (t * 0.6).cos())
        })
        .collect();
    let truth = Pose2::new(Vec2::new(0.3, -0.2), 0.12);
    let source: Vec<Vec2> = target.iter().map(|&p| truth.inverse_transform_point(p)).collect();
    let mut group = c.benchmark_group("icp");
    group.sample_size(30);
    group.bench_function("align_200_points", |b| {
        b.iter(|| {
            black_box(icp_align(
                black_box(&source),
                &target,
                Pose2::identity(),
                IcpConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_pose_graph(c: &mut Criterion) {
    use m7_kernels::geometry::Pose2;
    use m7_kernels::slam::{PoseConstraint, PoseGraph};

    // A 30-node loop with odometry + one closure, rebuilt per iteration.
    let build = || {
        let mut g = PoseGraph::new();
        for i in 0..30 {
            let angle = 2.0 * core::f64::consts::PI * i as f64 / 30.0;
            g.add_node(Pose2::new(
                Vec2::new(10.0 * angle.cos() + 0.1 * i as f64, 10.0 * angle.sin()),
                angle,
            ));
        }
        for i in 0..30 {
            let j = (i + 1) % 30;
            g.add_constraint(PoseConstraint {
                from: i,
                to: j,
                measurement: Pose2::new(Vec2::new(2.09, 0.0), 0.209),
                information: [10.0, 10.0, 40.0],
            })
            .expect("valid nodes");
        }
        g
    };
    let mut group = c.benchmark_group("pose_graph");
    group.sample_size(10);
    group.bench_function("optimize_30_node_loop", |b| {
        b.iter(|| {
            let mut g = build();
            black_box(g.optimize(10).expect("solvable"))
        })
    });
    group.finish();
}

fn bench_astar(c: &mut Criterion) {
    use m7_kernels::grid::OccupancyGrid;
    use m7_kernels::planning::{astar, AstarConfig};

    let mut grid = OccupancyGrid::new(50.0, 50.0, 0.25);
    // A few walls via repeated ray hits.
    for i in 0..120 {
        let y = 5.0 + 0.25 * i as f64;
        if y < 35.0 {
            for _ in 0..20 {
                grid.integrate_ray(Vec2::new(20.0, y), Vec2::new(20.0, y), true);
            }
        }
    }
    let mut group = c.benchmark_group("astar");
    group.sample_size(20);
    group.bench_function("50x50m_quarter_meter_grid", |b| {
        b.iter(|| {
            black_box(astar(
                &grid,
                Vec2::new(1.0, 1.0),
                Vec2::new(48.0, 48.0),
                AstarConfig::default(),
            ))
        })
    });
    group.finish();
}

/// Scalar-vs-lane pair for the batched collision sweep: short PRM-style
/// edges (the planner's steady-state regime) through the lane path and the
/// early-exit scalar reference.
fn bench_collision_lane_pair(c: &mut Criterion) {
    let mut world = CollisionWorld::new(40.0, 40.0);
    world.scatter_circles(256, 0.2, 1.0, BENCH_SEED);
    let checker = world.to_batch_checker();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 1);
    let edges: Vec<(Vec2, Vec2)> = (0..2048)
        .map(|_| {
            let from = Vec2::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0));
            (from, from + Vec2::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
        })
        .collect();
    let mut group = c.benchmark_group("collision_lane_pair");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(checker.segments_free_scalar(black_box(&edges))))
    });
    group
        .bench_function("lane", |b| b.iter(|| black_box(checker.segments_free(black_box(&edges)))));
    group.finish();
}

/// Scalar-vs-lane pairs for BRIEF Hamming distances and full descriptor
/// matching.
fn bench_matcher_lane_pair(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 2);
    let mut gen_set = |n: usize| -> Vec<Descriptor> {
        (0..n).map(|_| Descriptor([rng.gen(), rng.gen(), rng.gen(), rng.gen()])).collect()
    };
    let a = gen_set(512);
    let b = gen_set(512);

    let mut distances = c.benchmark_group("brief_hamming_512");
    distances.throughput(Throughput::Elements(b.len() as u64));
    distances.bench_function("scalar", |bch| {
        bch.iter(|| {
            let q = black_box(&a[0]);
            black_box(b.iter().map(|d| q.distance(d)).collect::<Vec<u32>>())
        })
    });
    distances.bench_function("lane", |bch| {
        let mut buf = Vec::new();
        bch.iter(|| {
            Descriptor::distances_into(black_box(&a[0]), black_box(&b), &mut buf);
            black_box(buf.last().copied())
        })
    });
    distances.finish();

    let mut matcher = c.benchmark_group("brief_match_512x512");
    matcher.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    matcher.bench_function("scalar", |bch| {
        bch.iter(|| black_box(FeatureFrontEnd::match_descriptors_scalar(black_box(&a), &b)))
    });
    matcher.bench_function("lane", |bch| {
        bch.iter(|| black_box(FeatureFrontEnd::match_descriptors_planes(black_box(&a), &b)))
    });
    matcher.finish();
}

/// Scalar-vs-lane pair for batched MLP inference on the quantized path.
fn bench_mlp_lane_pair(c: &mut Criterion) {
    let widths = [8usize, 64, 64, 6];
    let mut mlp = Mlp::new(&widths, BENCH_SEED);
    let data = Dataset::blobs(40, widths[3], widths[0], BENCH_SEED);
    mlp.train(&data, 2, 0.03);
    let batch = 256;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED + 3);
    let inputs: Vec<f64> = (0..batch * widths[0]).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut group = c.benchmark_group("mlp_forward_batch_256");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            for s in 0..batch {
                black_box(mlp.forward_reference(
                    black_box(&inputs[s * widths[0]..(s + 1) * widths[0]]),
                    Precision::Int8,
                ));
            }
        })
    });
    group.bench_function("lane", |b| {
        let mut scratch = MlpScratch::default();
        b.iter(|| {
            black_box(mlp.forward_batch_into(black_box(&inputs), Precision::Int8, &mut scratch));
        })
    });
    group.finish();
}

fn bench_perception(c: &mut Criterion) {
    let image = Image::synthetic(320, 240, BENCH_SEED);
    let frontend = FeatureFrontEnd::new(200, 7);
    let mut group = c.benchmark_group("perception");
    group.sample_size(20);
    group.bench_function("extract_320x240", |b| b.iter(|| black_box(frontend.extract(&image))));
    group.finish();
}

criterion_group!(
    kernels,
    bench_collision_checking,
    bench_rrt,
    bench_astar,
    bench_ekf_slam,
    bench_localization,
    bench_icp,
    bench_pose_graph,
    bench_dnn_inference,
    bench_dynamics,
    bench_linalg,
    bench_perception,
    bench_collision_lane_pair,
    bench_matcher_lane_pair,
    bench_mlp_lane_pair,
);
criterion_main!(kernels);
