//! One Criterion benchmark per paper experiment: each target times a full
//! regeneration of that experiment's figure/table equivalent, so
//! `cargo bench` doubles as the reproduce-everything entry point.

use criterion::{criterion_group, criterion_main, Criterion};
use m7_bench::BENCH_SEED;
use m7_suite::experiments::{
    e10_contention, e12_scenarios, e1_growth, e2_bridges, e3_metrics, e4_widgetism, e5_brakes,
    e6_platforms, e7_endtoend, e8_global, e9_dse,
};
use std::hint::black_box;

fn bench_e1_growth(c: &mut Criterion) {
    c.bench_function("e1_growth/fig1_series", |b| {
        b.iter(|| black_box(e1_growth::run(black_box(BENCH_SEED))))
    });
}

fn bench_e2_bridges(c: &mut Criterion) {
    c.bench_function("e2_bridges/stale_benchmark_acceleration", |b| {
        b.iter(|| black_box(e2_bridges::run()))
    });
}

fn bench_e3_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_metrics");
    group.sample_size(10);
    group.bench_function("precision_sweep_time_to_accuracy", |b| {
        b.iter(|| black_box(e3_metrics::run(black_box(BENCH_SEED))))
    });
    group.finish();
}

fn bench_e4_widgetism(c: &mut Criterion) {
    c.bench_function("e4_widgetism/task_suite", |b| b.iter(|| black_box(e4_widgetism::run())));
}

fn bench_e5_brakes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_brakes");
    group.sample_size(10);
    group.bench_function("uav_tier_sweep", |b| {
        b.iter(|| black_box(e5_brakes::run(black_box(BENCH_SEED))))
    });
    group.finish();
}

fn bench_e6_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_platforms");
    group.sample_size(10);
    group.bench_function("prm_scalar_vs_batched", |b| {
        b.iter(|| black_box(e6_platforms::run(black_box(BENCH_SEED))))
    });
    group.finish();
}

fn bench_e7_endtoend(c: &mut Criterion) {
    c.bench_function("e7_endtoend/amdahl_sweep", |b| b.iter(|| black_box(e7_endtoend::run())));
}

fn bench_e8_global(c: &mut Criterion) {
    c.bench_function("e8_global/carbon_models", |b| b.iter(|| black_box(e8_global::run())));
}

fn bench_e9_dse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_dse");
    group.sample_size(10);
    group.bench_function("strategy_comparison", |b| {
        b.iter(|| black_box(e9_dse::run(black_box(BENCH_SEED))))
    });
    group.finish();
}

fn bench_e10_contention(c: &mut Criterion) {
    c.bench_function("e10_contention/bus_and_balance", |b| {
        b.iter(|| black_box(e10_contention::run()))
    });
}

fn bench_e12_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_scenarios");
    group.sample_size(10);
    group.bench_function("generators_and_falsification", |b| {
        b.iter(|| black_box(e12_scenarios::run(black_box(BENCH_SEED))))
    });
    group.finish();
}

criterion_group!(
    experiments,
    bench_e1_growth,
    bench_e2_bridges,
    bench_e3_metrics,
    bench_e4_widgetism,
    bench_e5_brakes,
    bench_e6_platforms,
    bench_e7_endtoend,
    bench_e8_global,
    bench_e9_dse,
    bench_e10_contention,
    bench_e12_scenarios,
);
criterion_main!(experiments);
