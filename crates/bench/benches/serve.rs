//! Benchmarks for the evaluation-serving layer (`m7-serve`): the cache's
//! hit path vs. miss path, the batched memoizer over warm and cold
//! caches, and end-to-end loopback-service throughput.
//!
//! The hit path is a key hash + one shard lock; the miss path adds the
//! objective plus an insert (possibly an eviction). The service target
//! measures the whole TCP round-trip — parse, batch, cache, respond —
//! so its per-request time is dominated by loopback syscalls, not the
//! evaluator.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use m7_bench::BENCH_SEED;
use m7_par::ParConfig;
use m7_serve::batch::evaluate_batch_memo;
use m7_serve::cache::EvalCache;
use m7_serve::key::{namespace, EvalRequest};
use m7_serve::server::{EvalClient, EvalServer, ServeConfig};
use m7_serve::wire::Response;

/// The benched objective: cheap but not free, so cache hits are visibly
/// cheaper than misses without the miss path timing a synthetic stall.
fn objective(request: &EvalRequest) -> Result<f64, String> {
    let mut acc = request.seed as f64 * 0.125;
    for (i, v) in request.values.iter().enumerate() {
        acc = (acc * 0.5 + v * (i as f64 + 1.0)).sqrt() + 1.0;
    }
    Ok(acc)
}

fn requests(n: usize) -> Vec<EvalRequest> {
    (0..n)
        .map(|i| EvalRequest::new("poly", vec![i as f64, i as f64 * 0.25 + 1.0], BENCH_SEED))
        .collect()
}

/// Cache hit path vs. miss path, per lookup.
fn bench_cache_paths(c: &mut Criterion) {
    let ns = namespace("bench", BENCH_SEED);
    let reqs = requests(1024);
    let keys: Vec<_> = reqs.iter().map(|r| r.cache_key(ns)).collect();

    let mut group = c.benchmark_group("serve_cache_path");
    group.throughput(Throughput::Elements(keys.len() as u64));

    group.bench_function("hit", |b| {
        let cache: EvalCache<f64> = EvalCache::new(2048);
        for (key, req) in keys.iter().zip(&reqs) {
            cache.insert(*key, objective(req).expect("pure"));
        }
        b.iter(|| {
            let mut acc = 0.0f64;
            for key in &keys {
                acc += cache.get(*key).expect("warm cache");
            }
            acc
        })
    });

    group.bench_function("miss", |b| {
        b.iter(|| {
            // A fresh cold cache per pass: every lookup misses, computes,
            // and inserts.
            let cache: EvalCache<f64> = EvalCache::new(2048);
            let mut acc = 0.0f64;
            for (key, req) in keys.iter().zip(&reqs) {
                acc += cache.get_or_insert_with(*key, || objective(req).expect("pure")).0;
            }
            acc
        })
    });
    group.finish();
}

/// The batched memoizer over a duplicate-heavy batch, cold vs. warm.
fn bench_batched_memo(c: &mut Criterion) {
    let ns = namespace("bench", BENCH_SEED);
    // 512 slots over 128 distinct points: 4x duplication, the shape a
    // converging GA generation produces.
    let batch: Vec<EvalRequest> = (0..512)
        .map(|i| {
            EvalRequest::new("poly", vec![(i % 128) as f64, (i % 128) as f64 * 0.25], BENCH_SEED)
        })
        .collect();

    let mut group = c.benchmark_group("serve_batched_memo");
    group.throughput(Throughput::Elements(batch.len() as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            b.iter(|| {
                let cache: EvalCache<f64> = EvalCache::new(4096);
                let (results, _) = evaluate_batch_memo(
                    &cache,
                    par,
                    &batch,
                    |r| r.cache_key(ns),
                    |r| objective(r).expect("pure"),
                );
                results.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", threads), &threads, |b, &threads| {
            let par = ParConfig::with_threads(threads);
            let cache: EvalCache<f64> = EvalCache::new(4096);
            let (_, _) = evaluate_batch_memo(
                &cache,
                par,
                &batch,
                |r| r.cache_key(ns),
                |r| objective(r).expect("pure"),
            );
            b.iter(|| {
                let (results, _) = evaluate_batch_memo(
                    &cache,
                    par,
                    &batch,
                    |r| r.cache_key(ns),
                    |r| objective(r).expect("pure"),
                );
                results.len()
            })
        });
    }
    group.finish();
}

/// End-to-end loopback service throughput: one client, sequential
/// requests, duplicate-heavy traffic.
fn bench_service_round_trip(c: &mut Criterion) {
    let config = ServeConfig { io_timeout: Duration::from_secs(10), ..ServeConfig::default() };
    let handle = EvalServer::spawn(config, Arc::new(objective)).expect("bind loopback server");
    let client = EvalClient::new(handle.addr()).with_timeout(Duration::from_secs(10));
    let traffic: Vec<EvalRequest> = (0..32).map(|i| requests(8)[i % 8].clone()).collect::<Vec<_>>();

    let mut group = c.benchmark_group("serve_round_trip");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traffic.len() as u64));
    group.bench_function("loopback_32_requests", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for request in &traffic {
                match client.eval(request).expect("round-trip") {
                    Response::Cost { cost, .. } => acc += cost,
                    other => panic!("unexpected response: {other:?}"),
                }
            }
            acc
        })
    });
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_cache_paths, bench_batched_memo, bench_service_round_trip);
criterion_main!(benches);
