//! Batched, memoizing evaluation service for `magseven` — the
//! inference-serving tier of the workspace.
//!
//! The ROADMAP's north star is a system that serves heavy evaluation
//! traffic; AutoPilot-style design-space exploration spends most of its
//! budget re-evaluating near-duplicate candidate configurations. This
//! crate closes both gaps with the same dedup → batch → dispatch → cache
//! shape an inference server uses:
//!
//! - [`key`] — deterministic content-addressed cache keys: a 64-bit
//!   FNV-1a hash over canonicalized requests, fields in fixed order,
//!   floats via [`f64::to_bits`].
//! - [`cache`] — a sharded in-memory store with a hard capacity bound,
//!   LRU-ish eviction, and exact hit/miss/eviction counters.
//! - [`batch`] — the request batcher: coalesce duplicate in-flight
//!   requests, answer hits from the cache, dispatch unique misses in one
//!   batch over the deterministic [`m7_par`] pool.
//! - [`segment`] — a crash-safe append-only on-disk segment store:
//!   CRC-checked records, torn-tail truncation on recovery, and
//!   dead-ratio-triggered compaction.
//! - [`tier`] — the tiered cache: the hot in-memory shards backed by the
//!   segment store, behind the [`tier::ResultStore`] abstraction every
//!   memoization call site uses.
//! - [`wire`] — the newline-delimited `key = value` protocol (the same
//!   line format as `m7_arch::spec` — no JSON dependency), kept as the
//!   compatibility shim.
//! - [`frame`] — the versioned length-prefixed binary protocol: an
//!   incremental decoder that validates before it allocates and never
//!   panics on adversarial bytes.
//! - [`introspect`] — the live-telemetry payload: per-phase latency
//!   quantiles, connection/pending gauges, shed/reap counters, and tier
//!   and recovery stats, answered inline from the readiness loop over
//!   both protocols.
//! - [`journal`] — the crash-safe flight journal: telemetry snapshots
//!   streamed through the [`segment`] store so `kill -9` leaves a
//!   recoverable record, plus the [`journal::TelemetryPump`] helper that
//!   wires `--stats-interval`/`--journal` flags into a running hub.
//! - [`server`] — a non-blocking readiness-loop service on a loopback
//!   [`std::net::TcpListener`]: connection limits and a bounded pending
//!   queue that shed load with an explicit `busy` response, per-protocol
//!   connections (binary frames are persistent, legacy text is
//!   one-request-per-connection), per-connection write backpressure, and
//!   clean shutdown on a sentinel request.
//!
//! # Determinism contract
//!
//! Every cached value is a pure function of its key, so memoization can
//! change only *how much* work runs, never *what* is returned: a search
//! or experiment evaluated through this crate is **byte-identical** with
//! the cache on or off, at any thread count, under any eviction history.
//!
//! # Examples
//!
//! ```
//! use m7_par::ParConfig;
//! use m7_serve::batch::evaluate_batch_memo;
//! use m7_serve::cache::EvalCache;
//! use m7_serve::key::EvalRequest;
//!
//! let cache: EvalCache<f64> = EvalCache::new(1024);
//! let requests: Vec<EvalRequest> = (0..8)
//!     .map(|i| EvalRequest::new("square", vec![f64::from(i % 3)], 0))
//!     .collect();
//! let (costs, outcome) = evaluate_batch_memo(
//!     &cache,
//!     ParConfig::serial(),
//!     &requests,
//!     |r| r.cache_key(0),
//!     |r| r.values[0] * r.values[0],
//! );
//! assert_eq!(costs.len(), 8);
//! assert_eq!(outcome.computed, 3); // only the three unique designs ran
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod frame;
pub mod introspect;
pub mod journal;
pub mod key;
pub mod segment;
pub mod server;
pub mod tier;
pub mod wire;

pub use batch::{evaluate_batch_memo, BatchOutcome};
pub use cache::{CacheStats, EvalCache};
pub use frame::{FrameDecoder, FrameError};
pub use introspect::{PhaseStats, ServerStats};
pub use journal::{recover_snapshot, FlightJournal, TelemetryPump};
pub use key::{CacheKey, EvalRequest, KeyHasher};
pub use segment::{DiskCodec, RecoveryReport, SegmentConfig, SegmentStore};
pub use server::{EvalClient, EvalServer, Evaluator, FramedClient, ServeConfig, ServerHandle};
pub use tier::{ResultStore, TierConfig, TierStats, TieredCache};
