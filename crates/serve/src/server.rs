//! The loopback evaluation server: a [`std::net::TcpListener`] front end
//! over the memoizing batcher.
//!
//! Architecture (two service threads plus the pool):
//!
//! ```text
//! clients ──▶ accept thread ──▶ bounded pending queue ──▶ dispatch thread
//!                │ (full ⇒ `busy`)                          │ drain ≤ max_batch
//!                ▼                                          ▼
//!            shed + close                    coalesce ▸ cache ▸ m7-par batch
//! ```
//!
//! The pending queue is **bounded**: when it is full the accept thread
//! answers `status = busy` immediately and closes the connection instead
//! of stalling the listener — explicit load shedding, never an unbounded
//! backlog. Every connection gets read *and* write timeouts so one slow
//! client cannot wedge a batch. A `op = shutdown` sentinel request stops
//! both threads cleanly (the dispatcher wakes the blocked `accept` with
//! a loopback self-connection).

use crate::batch::evaluate_batch_memo_flagged;
use crate::cache::{CacheStats, EvalCache};
use crate::key::{namespace, EvalRequest};
use crate::wire::{format_response, parse_request, Request, Response};
use m7_par::ParConfig;
use m7_trace::{Counter, MetricClass, SpanSite, TraceCounter, TraceHistogram};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// Request-lifecycle observability (no-ops until `m7_trace::enable()`).
// Everything here depends on client arrival order and host scheduling,
// so it is all diagnostic-class.
static DISPATCH_SPAN: SpanSite = SpanSite::new("sched.serve.dispatch", MetricClass::Diagnostic);
static REQUESTS: TraceCounter = TraceCounter::new("serve.requests", MetricClass::Diagnostic);
static BUSY_SHED: TraceCounter = TraceCounter::new("serve.busy_shed", MetricClass::Diagnostic);
static QUEUE_WAIT_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.queue_wait_ns", MetricClass::Diagnostic);
static DISPATCH_BATCH: TraceHistogram =
    TraceHistogram::new("sched.serve.dispatch_batch", MetricClass::Diagnostic);

/// Upper bound on one wire message; larger requests are rejected.
const MAX_MESSAGE_BYTES: usize = 64 * 1024;

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port; read it back
    /// from [`ServerHandle::addr`]).
    pub port: u16,
    /// Pool used to dispatch each batch of unique evaluations.
    pub par: ParConfig,
    /// Cache capacity (entries).
    pub cache_capacity: usize,
    /// Bound on connections queued for dispatch; beyond it requests are
    /// shed with `busy`.
    pub max_pending: usize,
    /// Most requests coalesced into one dispatch.
    pub max_batch: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 0,
            par: ParConfig::default(),
            cache_capacity: 4096,
            max_pending: 64,
            max_batch: 32,
            io_timeout: Duration::from_secs(2),
        }
    }
}

/// The pure function a server serves. Implementations must be
/// deterministic in the request — the cache depends on it.
pub trait Evaluator: Send + Sync {
    /// A tag mixed into every cache key, separating this evaluator's
    /// results from any other's.
    fn namespace_tag(&self) -> &str;

    /// Evaluates one request, or explains (in one line) why it cannot.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for requests outside the evaluator's
    /// domain (wrong arity, unknown workload, non-finite inputs).
    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String>;
}

impl<F: Fn(&EvalRequest) -> Result<f64, String> + Send + Sync> Evaluator for F {
    fn namespace_tag(&self) -> &str {
        "closure"
    }

    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String> {
        self(request)
    }
}

/// State shared between the accept thread, the dispatch thread, and the
/// handle.
struct Shared {
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Deterministic evaluator errors are cached alongside costs: a bad
    /// request is re-answered from memory, not re-evaluated.
    cache: EvalCache<Result<f64, String>>,
    /// Connections answered `busy` because the pending queue was full.
    shed: Counter,
    config: ServeConfig,
    evaluator: Arc<dyn Evaluator>,
}

/// A running server: its bound address plus the thread handles needed to
/// join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    dispatch: Option<std::thread::JoinHandle<()>>,
}

/// The loopback evaluation server.
pub struct EvalServer;

impl EvalServer {
    /// Binds 127.0.0.1 and spawns the accept and dispatch threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the port is unavailable.
    pub fn spawn(config: ServeConfig, evaluator: Arc<dyn Evaluator>) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            cache: EvalCache::new(config.cache_capacity.max(1)),
            shed: Counter::new(),
            config,
            evaluator,
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("m7-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let dispatch_shared = Arc::clone(&shared);
        let dispatch = std::thread::Builder::new()
            .name("m7-serve-dispatch".into())
            .spawn(move || dispatch_loop(&dispatch_shared, addr))?;

        Ok(ServerHandle { addr, shared, accept: Some(accept), dispatch: Some(dispatch) })
    }
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Exact cache telemetry for the running server.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Exact count of connections shed with `busy` because the pending
    /// queue was full.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shared.shed.get()
    }

    /// Stops the server and joins both service threads.
    ///
    /// Prefers the clean path — a `shutdown` sentinel request through the
    /// front door — but falls back to flagging + self-connecting if the
    /// request is shed or fails, so shutdown always terminates.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own — a client's `shutdown`
    /// request — joining both service threads. The foreground-serving
    /// counterpart of [`ServerHandle::shutdown`].
    pub fn wait(mut self) {
        if let Some(handle) = self.dispatch.take() {
            let _ = handle.join();
        }
        // Dispatch only returns with the stop flag set and the accept
        // thread woken, so this join cannot hang.
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        let client = EvalClient::new(self.addr).with_timeout(Duration::from_secs(2));
        let clean = matches!(client.shutdown(), Ok(Response::Stopping));
        if !clean {
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.wake.notify_all();
            // Unblock a blocked accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.dispatch.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.dispatch.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.config.max_pending {
            // Shed load explicitly instead of stalling the listener.
            drop(queue);
            shared.shed.incr();
            BUSY_SHED.incr();
            let mut stream = stream;
            let _ = stream.write_all(format_response(&Response::Busy).as_bytes());
            continue;
        }
        queue.push_back((stream, Instant::now()));
        drop(queue);
        shared.wake.notify_one();
    }
}

fn dispatch_loop(shared: &Shared, addr: SocketAddr) {
    let ns = namespace(shared.evaluator.namespace_tag(), 0);
    loop {
        // Wait for work or a stop flag.
        let mut batch: Vec<TcpStream> = Vec::new();
        {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            while queue.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                queue = shared.wake.wait(queue).expect("queue poisoned");
            }
            while batch.len() < shared.config.max_batch {
                match queue.pop_front() {
                    Some((stream, enqueued)) => {
                        QUEUE_WAIT_NS.record(
                            u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        batch.push(stream);
                    }
                    None => break,
                }
            }
        }
        if batch.is_empty() && shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let _span = DISPATCH_SPAN.enter();
        REQUESTS.add(batch.len() as u64);
        DISPATCH_BATCH.record(batch.len() as u64);

        // Read and parse every connection in the batch.
        let mut evals: Vec<(TcpStream, EvalRequest)> = Vec::new();
        let mut saw_shutdown = false;
        for mut stream in batch {
            match read_message(&mut stream) {
                Ok(text) => match parse_request(&text) {
                    Ok(Request::Eval(req)) => evals.push((stream, req)),
                    Ok(Request::Stats) => {
                        respond(&mut stream, &Response::Stats(shared.cache.stats()));
                    }
                    Ok(Request::Shutdown) => {
                        respond(&mut stream, &Response::Stopping);
                        saw_shutdown = true;
                    }
                    Err(err) => respond(&mut stream, &Response::Error(err.to_string())),
                },
                Err(err) => respond(&mut stream, &Response::Error(format!("read failed: {err}"))),
            }
        }

        // Coalesce duplicates, consult the cache, dispatch unique work as
        // one batch on the pool.
        if !evals.is_empty() {
            let requests: Vec<EvalRequest> = evals.iter().map(|(_, r)| r.clone()).collect();
            let evaluator = &shared.evaluator;
            let (results, _outcome) = evaluate_batch_memo_flagged(
                &shared.cache,
                shared.config.par,
                &requests,
                |r| r.cache_key(ns),
                |r| evaluator.evaluate(r).map_err(|e| e.to_string()),
            );
            for ((mut stream, _), (result, saved)) in evals.into_iter().zip(results) {
                let response = match result {
                    Ok(cost) => Response::Cost { cost, cached: saved },
                    Err(msg) => Response::Error(msg),
                };
                respond(&mut stream, &response);
            }
        }

        if saw_shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the accept thread out of its blocking accept().
            let _ = TcpStream::connect(addr);
            return;
        }
    }
}

/// Reads one blank-line-terminated message (or to EOF), bounded by
/// [`MAX_MESSAGE_BYTES`] and the connection's read timeout.
fn read_message(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "message too large"));
        }
        if buf.windows(2).rev().take(buf.len().min(n + 1)).any(|w| w == b"\n\n") {
            break;
        }
    }
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "message is not UTF-8"))
}

fn respond(stream: &mut TcpStream, response: &Response) {
    let _ = stream.write_all(format_response(response).as_bytes());
    let _ = stream.flush();
}

/// A one-request-per-connection client for the loopback protocol.
///
/// # Examples
///
/// ```no_run
/// use m7_serve::key::EvalRequest;
/// use m7_serve::server::EvalClient;
///
/// let client = EvalClient::new("127.0.0.1:7207".parse().unwrap());
/// let response = client.eval(&EvalRequest::new("mission", vec![1.0, 2.0], 42))?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct EvalClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl EvalClient {
    /// A client for the server at `addr` with a 5 s default timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, timeout: Duration::from_secs(5) }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends an evaluation request.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn eval(&self, request: &EvalRequest) -> io::Result<Response> {
        self.roundtrip(&Request::Eval(request.clone()))
    }

    /// Requests the server's cache statistics.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn stats(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Stats)
    }

    /// Sends the shutdown sentinel.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn shutdown(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown)
    }

    fn roundtrip(&self, request: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.write_all(crate::wire::format_request(request).as_bytes())?;
        stream.flush()?;
        let text = read_message(&mut stream)?;
        crate::wire::parse_response(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(request: &EvalRequest) -> Result<f64, String> {
        if request.values.is_empty() {
            return Err("values must be nonempty".to_string());
        }
        Ok(request.values.iter().map(|v| v * v).sum::<f64>() + request.seed as f64)
    }

    fn spawn_default() -> ServerHandle {
        EvalServer::spawn(
            ServeConfig { par: ParConfig::serial(), ..ServeConfig::default() },
            Arc::new(quadratic),
        )
        .expect("bind loopback")
    }

    #[test]
    fn eval_roundtrip_and_cache_hit() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        let req = EvalRequest::new("mission", vec![3.0, 4.0], 2);
        let first = client.eval(&req).unwrap();
        assert_eq!(first, Response::Cost { cost: 27.0, cached: false });
        let second = client.eval(&req).unwrap();
        assert_eq!(second, Response::Cost { cost: 27.0, cached: true });
        assert_eq!(server.cache_stats().hits, 1);
        server.shutdown();
    }

    #[test]
    fn stats_and_clean_shutdown() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        let _ = client.eval(&EvalRequest::new("mission", vec![1.0], 0)).unwrap();
        let Response::Stats(stats) = client.stats().unwrap() else { panic!("want stats") };
        assert_eq!(stats.entries, 1);
        assert_eq!(client.shutdown().unwrap(), Response::Stopping);
        // Threads are joined by the handle; a fresh connection now fails
        // or is never served.
        server.shutdown();
    }

    #[test]
    fn malformed_and_out_of_domain_requests_get_errors() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        // Out-of-domain: empty values vector.
        let resp = client.eval(&EvalRequest::new("mission", vec![], 0)).unwrap();
        assert_eq!(resp, Response::Error("values must be nonempty".to_string()));
        // Malformed on the wire.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"op = warp\n\n").unwrap();
        let text = read_message(&mut stream).unwrap();
        let parsed = crate::wire::parse_response(&text).unwrap();
        assert!(matches!(parsed, Response::Error(ref msg) if msg.contains("unknown op")));
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_busy() {
        // max_pending = 0: every connection is shed immediately, which
        // exercises the shedding path deterministically.
        let server = EvalServer::spawn(
            ServeConfig { max_pending: 0, par: ParConfig::serial(), ..ServeConfig::default() },
            Arc::new(quadratic),
        )
        .unwrap();
        let client = EvalClient::new(server.addr());
        let resp = client.eval(&EvalRequest::new("mission", vec![1.0], 0)).unwrap();
        assert_eq!(resp, Response::Busy);
        server.shutdown();
    }
}
