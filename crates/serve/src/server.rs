//! The evaluation server: a non-blocking readiness loop over the
//! memoizing batcher and the tiered cache.
//!
//! ```text
//!                    ┌────────────── event thread ──────────────┐
//! clients ──accept──▶│ conn table (≤ max_connections, else busy)│
//!                    │   ▼ nonblocking reads                    │
//!                    │ protocol sniff: 0xA7 ⇒ binary frames,    │
//!                    │                 else legacy text shim    │
//!                    │   ▼ parsed requests                      │
//!                    │ pending queue (≤ max_pending, else busy) │
//!                    │   ▼ drain ≤ max_batch per turn           │
//!                    │ coalesce ▸ tiered cache ▸ m7-par batch   │
//!                    │   ▼ per-conn write buffers, nonblocking  │
//!                    └──────────────────────────────────────────┘
//! ```
//!
//! One thread owns every socket; nothing in the request path blocks on
//! a client. Admission control is two-layer and explicit: a connection
//! beyond `max_connections` and a request beyond `max_pending` both get
//! an immediate `busy`, never an unbounded backlog. Backpressure on the
//! wire is per-connection write buffers flushed as sockets drain; a slow
//! reader only ever stalls itself.
//!
//! Binary connections are persistent — many frames per connection, each
//! answered in order. Legacy text connections keep the original
//! one-request-per-connection contract, so every pre-existing client
//! (including [`EvalClient`]) works unchanged.
//!
//! With [`ServeConfig::disk_dir`] set, results live in the tiered cache:
//! hot in-memory shards over the crash-safe segment store, so a
//! restarted server answers previously computed work from disk — see
//! [`crate::tier`] and [`crate::segment`] for the recovery rules.

use crate::batch::evaluate_batch_memo_flagged;
use crate::cache::CacheStats;
use crate::frame::{encode_response, FrameDecoder};
use crate::introspect::{PhaseStats, ServerStats};
use crate::key::{namespace, EvalRequest};
use crate::segment::{RecoveryReport, SegmentConfig};
use crate::tier::{TierConfig, TierStats, TieredCache};
use crate::wire::{format_response, parse_request, Request, Response};
use m7_par::ParConfig;
use m7_trace::{
    Counter, Gauge, Histogram, MetricClass, SpanSite, TraceCounter, TraceGauge, TraceHistogram,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Request-lifecycle observability (no-ops until `m7_trace::enable()`).
// Everything here depends on client arrival order and host scheduling,
// so it is all diagnostic-class. The same numbers are also counted in
// always-on per-server state (see `Shared`), which is what the
// `telemetry` request and the `ServerHandle` accessors answer from —
// exact whether or not tracing is enabled.
static DISPATCH_SPAN: SpanSite = SpanSite::new("sched.serve.dispatch", MetricClass::Diagnostic);
static REQUESTS: TraceCounter = TraceCounter::new("serve.requests", MetricClass::Diagnostic);
static BUSY_SHED: TraceCounter = TraceCounter::new("serve.busy_shed", MetricClass::Diagnostic);
static REAPED: TraceCounter = TraceCounter::new("serve.reaped", MetricClass::Diagnostic);
static QUEUE_WAIT_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.queue_wait_ns", MetricClass::Diagnostic);
static DISPATCH_BATCH: TraceHistogram =
    TraceHistogram::new("sched.serve.dispatch_batch", MetricClass::Diagnostic);
// Per-phase latency mirrors for the telemetry hub/journal; registry
// names line up with the `accept→parse→dispatch→write` loop phases.
static PHASE_ACCEPT_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.phase_accept_ns", MetricClass::Diagnostic);
static PHASE_PARSE_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.phase_parse_ns", MetricClass::Diagnostic);
static PHASE_DISPATCH_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.phase_dispatch_ns", MetricClass::Diagnostic);
static PHASE_WRITE_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.phase_write_ns", MetricClass::Diagnostic);
static CONNECTIONS_GAUGE: TraceGauge =
    TraceGauge::new("sched.serve.connections", MetricClass::Diagnostic);
static PENDING_GAUGE: TraceGauge = TraceGauge::new("sched.serve.pending", MetricClass::Diagnostic);

/// Upper bound on one legacy text message; larger requests are rejected.
const MAX_MESSAGE_BYTES: usize = 64 * 1024;

/// Nonblocking read chunk size.
const READ_CHUNK: usize = 4096;

/// How long the event loop parks when a turn made no progress.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port; read it back
    /// from [`ServerHandle::addr`]).
    pub port: u16,
    /// Pool used to dispatch each batch of unique evaluations.
    pub par: ParConfig,
    /// Hot-tier cache capacity (entries).
    pub cache_capacity: usize,
    /// Bound on parsed requests awaiting dispatch; beyond it requests
    /// are answered `busy` immediately (admission control).
    pub max_pending: usize,
    /// Most requests coalesced into one dispatch.
    pub max_batch: usize,
    /// Simultaneous connections the event loop will hold; beyond it new
    /// connections are answered `busy` and closed (connection limit).
    pub max_connections: usize,
    /// A connection stuck mid-message or mid-response longer than this
    /// is dropped.
    pub io_timeout: Duration,
    /// When set, back the hot shards with the crash-safe on-disk
    /// segment store in this directory: results survive restarts.
    pub disk_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 0,
            par: ParConfig::default(),
            cache_capacity: 4096,
            max_pending: 64,
            max_batch: 32,
            max_connections: 256,
            io_timeout: Duration::from_secs(2),
            disk_dir: None,
        }
    }
}

/// The pure function a server serves. Implementations must be
/// deterministic in the request — the cache depends on it.
pub trait Evaluator: Send + Sync {
    /// A tag mixed into every cache key, separating this evaluator's
    /// results from any other's.
    fn namespace_tag(&self) -> &str;

    /// Evaluates one request, or explains (in one line) why it cannot.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for requests outside the evaluator's
    /// domain (wrong arity, unknown workload, non-finite inputs).
    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String>;
}

impl<F: Fn(&EvalRequest) -> Result<f64, String> + Send + Sync> Evaluator for F {
    fn namespace_tag(&self) -> &str {
        "closure"
    }

    fn evaluate(&self, request: &EvalRequest) -> Result<f64, String> {
        self(request)
    }
}

/// Always-on latency histograms, one per event-loop phase. Recording is
/// a few relaxed atomic ops per turn that did work — cheap enough to
/// keep exact regardless of the trace-enable flag, which is what lets
/// the `telemetry` request answer with real quantiles on any server.
struct PhaseClocks {
    accept: Histogram,
    parse: Histogram,
    dispatch: Histogram,
    write: Histogram,
}

impl PhaseClocks {
    const fn new() -> Self {
        Self {
            accept: Histogram::new(),
            parse: Histogram::new(),
            dispatch: Histogram::new(),
            write: Histogram::new(),
        }
    }
}

fn phase_stats(h: &Histogram) -> PhaseStats {
    PhaseStats {
        count: h.count(),
        p50_ns: h.quantile_upper_bound(0.50),
        p95_ns: h.quantile_upper_bound(0.95),
        p99_ns: h.quantile_upper_bound(0.99),
    }
}

/// Records one phase's duration into the always-on histogram and its
/// gated registry mirror (for the telemetry hub / flight journal).
fn record_phase(exact: &Histogram, mirror: &TraceHistogram, since: Instant) {
    let ns = u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX);
    exact.record(ns);
    mirror.record(ns);
}

/// State shared between the event thread and the handle.
struct Shared {
    stop: AtomicBool,
    /// Deterministic evaluator errors are cached alongside costs: a bad
    /// request is re-answered from memory (or disk), not re-evaluated.
    cache: TieredCache<Result<f64, String>>,
    /// Connections or requests answered `busy`.
    shed: Counter,
    /// Requests dispatched.
    requests: Counter,
    /// Connections reaped for exceeding the io timeout while stuck.
    reaped: Counter,
    /// Connections currently held by the event loop (updated per turn).
    connections: Gauge,
    /// Requests awaiting dispatch (updated per turn).
    pending_depth: Gauge,
    /// Per-phase latency, exact and always on.
    phases: PhaseClocks,
    /// When the server was spawned (uptime reference).
    started: Instant,
    config: ServeConfig,
    evaluator: Arc<dyn Evaluator>,
}

/// Builds the `telemetry` answer from the shared state. Pure reads of
/// atomics — called inline from the parse phase without blocking.
fn server_stats(shared: &Shared) -> ServerStats {
    let tier = shared.cache.stats();
    let recovery = shared.cache.recovery();
    ServerStats {
        uptime_ms: u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX),
        connections: shared.connections.get(),
        pending: shared.pending_depth.get(),
        requests: shared.requests.get(),
        shed: shared.shed.get(),
        reaped: shared.reaped.get(),
        accept: phase_stats(&shared.phases.accept),
        parse: phase_stats(&shared.phases.parse),
        dispatch: phase_stats(&shared.phases.dispatch),
        write: phase_stats(&shared.phases.write),
        hot_hits: tier.hot_hits,
        disk_hits: tier.disk_hits,
        misses: tier.misses,
        insertions: tier.insertions,
        disk_errors: tier.disk_errors,
        hot_entries: tier.hot_entries as u64,
        disk_entries: tier.disk_entries as u64,
        compactions: tier.compactions,
        recovered_entries: recovery.map_or(0, |r| r.live_entries as u64),
        recovery_torn_bytes: recovery.map_or(0, |r| r.torn_bytes),
    }
}

/// A running server: its bound address plus the event-thread handle
/// needed to join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event: Option<std::thread::JoinHandle<()>>,
}

/// The evaluation server.
pub struct EvalServer;

impl EvalServer {
    /// Binds 127.0.0.1, recovers the disk tier if configured, and
    /// spawns the event thread.
    ///
    /// # Errors
    ///
    /// The bind error if the port is unavailable, or the disk tier's
    /// open/recovery error.
    pub fn spawn(config: ServeConfig, evaluator: Arc<dyn Evaluator>) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let tier = match &config.disk_dir {
            Some(dir) => TierConfig::Disk(SegmentConfig::new(dir)),
            None => TierConfig::MemoryOnly,
        };
        let cache = TieredCache::open(config.cache_capacity.max(1), tier)?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            cache,
            shed: Counter::new(),
            requests: Counter::new(),
            reaped: Counter::new(),
            connections: Gauge::new(),
            pending_depth: Gauge::new(),
            phases: PhaseClocks::new(),
            started: Instant::now(),
            config,
            evaluator,
        });

        let event_shared = Arc::clone(&shared);
        let event = std::thread::Builder::new()
            .name("m7-serve-event".into())
            .spawn(move || event_loop(&listener, &event_shared))?;

        Ok(ServerHandle { addr, shared, event: Some(event) })
    }
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cache telemetry in the legacy shape: hits are hot+disk hits,
    /// entries is the larger tier. Identical to the old in-memory
    /// counters when no disk tier is configured.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        wire_stats(&self.shared.cache)
    }

    /// Exact per-tier telemetry.
    #[must_use]
    pub fn tier_stats(&self) -> TierStats {
        self.shared.cache.stats()
    }

    /// What disk-tier recovery replayed at startup (`None` without a
    /// disk tier).
    #[must_use]
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.shared.cache.recovery()
    }

    /// Exact count of connections and requests answered `busy`.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shared.shed.get()
    }

    /// Exact count of connections reaped for being stuck past the io
    /// timeout.
    #[must_use]
    pub fn reap_count(&self) -> u64 {
        self.shared.reaped.get()
    }

    /// The full live-telemetry snapshot — the same payload the
    /// `telemetry` request answers on the wire.
    #[must_use]
    pub fn server_stats(&self) -> ServerStats {
        server_stats(&self.shared)
    }

    /// Stops the server and joins the event thread. The disk tier (if
    /// any) is synced by the event loop on the way out.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own — a client's `shutdown`
    /// request — joining the event thread. The foreground-serving
    /// counterpart of [`ServerHandle::shutdown`].
    pub fn wait(mut self) {
        if let Some(handle) = self.event.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.event.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.event.is_some() {
            self.stop_and_join();
        }
    }
}

/// Legacy-shaped stats over the tiered cache: byte-compatible with the
/// pre-tier wire protocol.
fn wire_stats(cache: &TieredCache<Result<f64, String>>) -> CacheStats {
    let tier = cache.stats();
    let hot = cache.hot().stats();
    CacheStats {
        hits: tier.hits(),
        misses: tier.misses,
        evictions: hot.evictions,
        insertions: tier.insertions,
        entries: tier.hot_entries.max(tier.disk_entries),
    }
}

/// Which protocol a connection speaks, sniffed from its first byte.
enum Proto {
    /// No bytes yet.
    Unknown,
    /// Newline `key = value` text, one request per connection.
    Legacy,
    /// Length-prefixed binary frames, persistent.
    Binary(Box<FrameDecoder>),
}

struct Conn {
    stream: TcpStream,
    proto: Proto,
    /// Unparsed legacy input (binary input lives in the decoder).
    in_buf: Vec<u8>,
    /// Bytes owed to the client, flushed as the socket drains.
    out: VecDeque<u8>,
    /// When the current partial message or unflushed output started
    /// waiting — the stuck-connection clock.
    stuck_since: Option<Instant>,
    /// Close once `out` drains (legacy turn done, or fatal error).
    close_after_flush: bool,
    /// Peer closed its write side.
    saw_eof: bool,
    /// Requests parsed but not yet answered (keeps the conn alive).
    in_flight: usize,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            proto: Proto::Unknown,
            in_buf: Vec::new(),
            out: VecDeque::new(),
            stuck_since: None,
            close_after_flush: false,
            saw_eof: false,
            in_flight: 0,
        }
    }

    fn queue_response(&mut self, response: &Response) {
        let bytes = match self.proto {
            Proto::Binary(_) => encode_response(response),
            _ => format_response(response).into_bytes(),
        };
        self.out.extend(bytes);
        self.in_flight = self.in_flight.saturating_sub(1);
    }
}

/// One parsed request waiting for dispatch, tagged with its connection.
struct PendingReq {
    conn_id: u64,
    request: EvalRequest,
    enqueued: Instant,
}

fn event_loop(listener: &TcpListener, shared: &Shared) {
    let ns = namespace(shared.evaluator.namespace_tag(), 0);
    let mut conns: Vec<(u64, Conn)> = Vec::new();
    let mut next_id: u64 = 0;
    let mut pending: VecDeque<PendingReq> = VecDeque::new();

    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let mut progress = false;

        // Accept phase: drain the listener; over the connection limit,
        // shed explicitly with `busy` instead of queueing.
        let accept_started = Instant::now();
        let mut accepted = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    accepted = true;
                    if stopping {
                        continue; // dropped: no new work while draining
                    }
                    if conns.len() >= shared.config.max_connections {
                        shed_busy(stream, shared);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    conns.push((next_id, Conn::new(stream)));
                    next_id += 1;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if accepted {
            record_phase(&shared.phases.accept, &PHASE_ACCEPT_NS, accept_started);
        }
        // Keep the live gauges fresh before any telemetry request is
        // parsed this turn, so answers reflect this turn's state.
        shared.connections.set(conns.len() as u64);
        CONNECTIONS_GAUGE.set(conns.len() as u64);

        // Read phase: pull bytes, sniff the protocol, parse complete
        // messages into the pending queue (or answer control requests
        // inline).
        let parse_started = Instant::now();
        let mut parsed_any = false;
        for (id, conn) in &mut conns {
            if conn.close_after_flush {
                continue;
            }
            let read = pump_read(conn);
            if read > 0 {
                progress = true;
                parsed_any = true;
            }
            parse_conn(*id, conn, shared, &mut pending);
        }
        if parsed_any {
            record_phase(&shared.phases.parse, &PHASE_PARSE_NS, parse_started);
        }
        shared.pending_depth.set(pending.len() as u64);
        PENDING_GAUGE.set(pending.len() as u64);

        // Dispatch phase: drain one batch through the tiered cache and
        // the pool, then scatter responses to their connections.
        if !pending.is_empty() {
            progress = true;
            let _span = DISPATCH_SPAN.enter();
            let dispatch_started = Instant::now();
            let take = pending.len().min(shared.config.max_batch.max(1));
            let batch: Vec<PendingReq> = pending.drain(..take).collect();
            shared.requests.add(batch.len() as u64);
            REQUESTS.add(batch.len() as u64);
            DISPATCH_BATCH.record(batch.len() as u64);
            for req in &batch {
                QUEUE_WAIT_NS
                    .record(u64::try_from(req.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            let requests: Vec<EvalRequest> = batch.iter().map(|p| p.request.clone()).collect();
            let evaluator = &shared.evaluator;
            let (results, _outcome) = evaluate_batch_memo_flagged(
                &shared.cache,
                shared.config.par,
                &requests,
                |r| r.cache_key(ns),
                |r| evaluator.evaluate(r).map_err(|e| e.to_string()),
            );
            for (req, (result, saved)) in batch.iter().zip(results) {
                let response = match result {
                    Ok(cost) => Response::Cost { cost, cached: saved },
                    Err(msg) => Response::Error(msg),
                };
                if let Some((_, conn)) = conns.iter_mut().find(|(id, _)| *id == req.conn_id) {
                    conn.queue_response(&response);
                }
                // A vanished connection just discards its response —
                // the result is cached either way.
            }
            record_phase(&shared.phases.dispatch, &PHASE_DISPATCH_NS, dispatch_started);
        }

        // Write phase: flush what each socket will take.
        let write_started = Instant::now();
        let mut wrote_any = false;
        for (_, conn) in &mut conns {
            if pump_write(conn) {
                progress = true;
                wrote_any = true;
            }
        }
        if wrote_any {
            record_phase(&shared.phases.write, &PHASE_WRITE_NS, write_started);
        }

        // Reap phase: closed, finished, or stuck-past-timeout conns.
        let timeout = shared.config.io_timeout;
        conns.retain_mut(|(_, conn)| retain_conn(conn, timeout, &shared.reaped));

        if shared.stop.load(Ordering::SeqCst) {
            let drained = pending.is_empty()
                && conns.iter().all(|(_, c)| c.out.is_empty() && c.in_flight == 0);
            if drained || stopping {
                // Two passes with the flag up: one drain turn, then out.
                if stopping && drained {
                    let _ = shared.cache.sync();
                    return;
                }
                if stopping {
                    // Still undrained after a full turn — flush what
                    // remains next turn; bounded by io_timeout reaping.
                }
            }
        }

        if !progress {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
}

/// Answers `busy` on a just-accepted, about-to-be-dropped connection.
fn shed_busy(mut stream: TcpStream, shared: &Shared) {
    shared.shed.incr();
    BUSY_SHED.incr();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    // A fresh connection has not spoken yet, so the protocol is
    // unknown; the legacy rendering is self-describing either way.
    let _ = stream.write_all(format_response(&Response::Busy).as_bytes());
}

/// Nonblocking read into the connection's buffers. Returns bytes read.
fn pump_read(conn: &mut Conn) -> usize {
    if conn.saw_eof {
        return 0;
    }
    let mut total = 0;
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.saw_eof = true;
                break;
            }
            Ok(n) => {
                total += n;
                match &mut conn.proto {
                    Proto::Unknown => {
                        conn.proto = if chunk[0] == crate::frame::MAGIC {
                            let mut decoder = Box::new(FrameDecoder::new());
                            decoder.feed(&chunk[..n]);
                            Proto::Binary(decoder)
                        } else {
                            conn.in_buf.extend_from_slice(&chunk[..n]);
                            Proto::Legacy
                        };
                    }
                    Proto::Binary(decoder) => decoder.feed(&chunk[..n]),
                    Proto::Legacy => conn.in_buf.extend_from_slice(&chunk[..n]),
                }
                if conn.in_buf.len() > MAX_MESSAGE_BYTES {
                    conn.queue_response(&Response::Error("message too large".into()));
                    conn.close_after_flush = true;
                    break;
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.saw_eof = true;
                conn.close_after_flush = true;
                break;
            }
        }
    }
    total
}

/// Parses whatever complete messages the connection holds, answering
/// control requests inline and queueing evals (with admission control).
fn parse_conn(id: u64, conn: &mut Conn, shared: &Shared, pending: &mut VecDeque<PendingReq>) {
    loop {
        let request = match &mut conn.proto {
            Proto::Unknown => {
                if conn.saw_eof {
                    conn.close_after_flush = true;
                }
                return;
            }
            Proto::Binary(decoder) => match decoder.next_request() {
                Ok(Some(req)) => Some(req),
                Ok(None) => {
                    if conn.saw_eof {
                        if decoder.pending_bytes() > 0 {
                            conn.queue_response(&Response::Error(
                                "connection closed mid-frame".into(),
                            ));
                        }
                        conn.close_after_flush = true;
                    }
                    None
                }
                Err(err) => {
                    conn.queue_response(&Response::Error(err.to_string()));
                    conn.close_after_flush = true;
                    None
                }
            },
            Proto::Legacy => {
                // A legacy message ends at the first blank line, or at
                // EOF (clients that close their write side).
                let end = conn.in_buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2);
                match end {
                    Some(end) => {
                        let msg: Vec<u8> = conn.in_buf.drain(..end).collect();
                        Some(parse_legacy(conn, &msg))
                    }
                    None if conn.saw_eof && !conn.in_buf.is_empty() => {
                        let msg = std::mem::take(&mut conn.in_buf);
                        Some(parse_legacy(conn, &msg))
                    }
                    None => {
                        if conn.saw_eof {
                            conn.close_after_flush = true;
                        }
                        None
                    }
                }
                .flatten()
            }
        };
        let Some(request) = request else { return };
        conn.in_flight += 1;
        match request {
            Request::Eval(eval) => {
                if pending.len() >= shared.config.max_pending {
                    // Admission control: immediate busy, no backlog.
                    shared.shed.incr();
                    BUSY_SHED.incr();
                    conn.queue_response(&Response::Busy);
                    end_legacy_turn(conn);
                } else {
                    pending.push_back(PendingReq {
                        conn_id: id,
                        request: eval,
                        enqueued: Instant::now(),
                    });
                }
            }
            Request::Stats => {
                conn.queue_response(&Response::Stats(wire_stats(&shared.cache)));
                end_legacy_turn(conn);
            }
            Request::Telemetry => {
                // Answered inline like Stats: pure atomic reads, no
                // dispatch, so introspection never stalls the loop.
                conn.queue_response(&Response::Telemetry(Box::new(server_stats(shared))));
                end_legacy_turn(conn);
            }
            Request::Shutdown => {
                conn.queue_response(&Response::Stopping);
                conn.close_after_flush = true;
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
        if conn.close_after_flush {
            return;
        }
    }
}

/// Legacy text parse: an unparsable message answers an error and ends
/// the connection's turn.
fn parse_legacy(conn: &mut Conn, msg: &[u8]) -> Option<Request> {
    let text = match std::str::from_utf8(msg) {
        Ok(text) => text,
        Err(_) => {
            conn.queue_response(&Response::Error("message is not UTF-8".into()));
            conn.close_after_flush = true;
            return None;
        }
    };
    match parse_request(text) {
        Ok(req) => Some(req),
        Err(err) => {
            conn.queue_response(&Response::Error(err.to_string()));
            conn.close_after_flush = true;
            None
        }
    }
}

/// Legacy connections serve one request then close (the original
/// contract); binary connections persist.
fn end_legacy_turn(conn: &mut Conn) {
    if matches!(conn.proto, Proto::Legacy) {
        conn.close_after_flush = true;
    }
}

/// Marks a legacy connection done once its answer is queued (the
/// response to its single request is written by the dispatch phase).
fn legacy_answered(conn: &Conn) -> bool {
    matches!(conn.proto, Proto::Legacy) && conn.in_flight == 0 && !conn.out.is_empty()
}

/// Nonblocking flush of the connection's write buffer. Returns whether
/// any bytes moved.
fn pump_write(conn: &mut Conn) -> bool {
    if conn.out.is_empty() {
        return false;
    }
    if legacy_answered(conn) {
        conn.close_after_flush = true;
    }
    let mut moved = false;
    while !conn.out.is_empty() {
        let (head, _) = conn.out.as_slices();
        match conn.stream.write(head) {
            Ok(0) => break,
            Ok(n) => {
                conn.out.drain(..n);
                moved = true;
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.out.clear();
                conn.close_after_flush = true;
                break;
            }
        }
    }
    if moved {
        let _ = conn.stream.flush();
    }
    moved
}

/// Whether to keep a connection for the next turn; updates its stuck
/// clock. Timeout reaps are counted (other departures are normal ends).
fn retain_conn(conn: &mut Conn, timeout: Duration, reaped: &Counter) -> bool {
    let done_writing = conn.out.is_empty();
    if conn.close_after_flush && done_writing {
        return false;
    }
    if conn.saw_eof && done_writing && conn.in_flight == 0 {
        // Peer finished and nothing is owed.
        let partial = match &conn.proto {
            Proto::Binary(d) => d.pending_bytes() > 0,
            _ => !conn.in_buf.is_empty(),
        };
        if !partial {
            return false;
        }
    }
    // The stuck clock runs while a partial message waits for bytes or a
    // response waits for the socket; it resets when the conn goes idle.
    let waiting = !conn.out.is_empty()
        || !conn.in_buf.is_empty()
        || conn.in_flight > 0
        || matches!(&conn.proto, Proto::Binary(d) if d.pending_bytes() > 0);
    match (waiting, conn.stuck_since) {
        (false, _) => conn.stuck_since = None,
        (true, None) => conn.stuck_since = Some(Instant::now()),
        (true, Some(since)) => {
            if since.elapsed() > timeout {
                reaped.incr();
                REAPED.incr();
                return false;
            }
        }
    }
    true
}

/// Reads one blank-line-terminated legacy message (or to EOF), bounded
/// by [`MAX_MESSAGE_BYTES`] and the connection's read timeout. Used by
/// the blocking legacy client.
fn read_message(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "message too large"));
        }
        if buf.windows(2).rev().take(buf.len().min(n + 1)).any(|w| w == b"\n\n") {
            break;
        }
    }
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "message is not UTF-8"))
}

/// A one-request-per-connection client for the legacy text protocol.
///
/// # Examples
///
/// ```no_run
/// use m7_serve::key::EvalRequest;
/// use m7_serve::server::EvalClient;
///
/// let client = EvalClient::new("127.0.0.1:7207".parse().unwrap());
/// let response = client.eval(&EvalRequest::new("mission", vec![1.0, 2.0], 42))?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct EvalClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl EvalClient {
    /// A client for the server at `addr` with a 5 s default timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, timeout: Duration::from_secs(5) }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends an evaluation request.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn eval(&self, request: &EvalRequest) -> io::Result<Response> {
        self.roundtrip(&Request::Eval(request.clone()))
    }

    /// Requests the server's cache statistics.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn stats(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Stats)
    }

    /// Requests the full live-telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn telemetry(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Telemetry)
    }

    /// Sends the shutdown sentinel.
    ///
    /// # Errors
    ///
    /// Returns the socket error, or `InvalidData` when the response does
    /// not parse.
    pub fn shutdown(&self) -> io::Result<Response> {
        self.roundtrip(&Request::Shutdown)
    }

    fn roundtrip(&self, request: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.write_all(crate::wire::format_request(request).as_bytes())?;
        stream.flush()?;
        let text = read_message(&mut stream)?;
        crate::wire::parse_response(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// A persistent binary-protocol connection: many framed requests per
/// TCP connection, each answered in order — the high-throughput path.
///
/// # Examples
///
/// ```no_run
/// use m7_serve::key::EvalRequest;
/// use m7_serve::server::FramedClient;
///
/// let mut client = FramedClient::connect("127.0.0.1:7207".parse().unwrap())?;
/// for i in 0..100 {
///     let resp = client.eval(&EvalRequest::new("mission", vec![f64::from(i)], 42))?;
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct FramedClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl FramedClient {
    /// Connects with a 5 s default timeout.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit connect/read/write timeout.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, decoder: FrameDecoder::new() })
    }

    /// Sends one request frame and blocks for its response frame.
    ///
    /// # Errors
    ///
    /// The socket error, or `InvalidData` when the response stream does
    /// not decode.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.stream.write_all(&crate::frame::encode_request(request))?;
        self.stream.flush()?;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if let Some(resp) = self
                .decoder
                .next_response()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                return Ok(resp);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.decoder.feed(&chunk[..n]);
        }
    }

    /// Sends an evaluation request.
    ///
    /// # Errors
    ///
    /// See [`FramedClient::request`].
    pub fn eval(&mut self, request: &EvalRequest) -> io::Result<Response> {
        self.request(&Request::Eval(request.clone()))
    }

    /// Requests the server's cache statistics.
    ///
    /// # Errors
    ///
    /// See [`FramedClient::request`].
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::Stats)
    }

    /// Requests the full live-telemetry snapshot.
    ///
    /// # Errors
    ///
    /// See [`FramedClient::request`].
    pub fn telemetry(&mut self) -> io::Result<Response> {
        self.request(&Request::Telemetry)
    }

    /// Sends the shutdown sentinel.
    ///
    /// # Errors
    ///
    /// See [`FramedClient::request`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(request: &EvalRequest) -> Result<f64, String> {
        if request.values.is_empty() {
            return Err("values must be nonempty".to_string());
        }
        Ok(request.values.iter().map(|v| v * v).sum::<f64>() + request.seed as f64)
    }

    fn spawn_default() -> ServerHandle {
        EvalServer::spawn(
            ServeConfig { par: ParConfig::serial(), ..ServeConfig::default() },
            Arc::new(quadratic),
        )
        .expect("bind loopback")
    }

    #[test]
    fn eval_roundtrip_and_cache_hit() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        let req = EvalRequest::new("mission", vec![3.0, 4.0], 2);
        let first = client.eval(&req).unwrap();
        assert_eq!(first, Response::Cost { cost: 27.0, cached: false });
        let second = client.eval(&req).unwrap();
        assert_eq!(second, Response::Cost { cost: 27.0, cached: true });
        assert_eq!(server.cache_stats().hits, 1);
        server.shutdown();
    }

    #[test]
    fn framed_client_is_persistent_and_in_order() {
        let server = spawn_default();
        let mut client = FramedClient::connect(server.addr()).unwrap();
        for i in 0..20u32 {
            let req = EvalRequest::new("mission", vec![f64::from(i % 5)], 0);
            let want = quadratic(&req).unwrap();
            match client.eval(&req).unwrap() {
                Response::Cost { cost, .. } => assert_eq!(cost.to_bits(), want.to_bits()),
                other => panic!("unexpected response: {other:?}"),
            }
        }
        // 20 requests over one connection: 5 unique, 15 cached.
        assert_eq!(server.cache_stats().hits, 15);
        let Response::Stats(stats) = client.stats().unwrap() else { panic!("want stats") };
        assert_eq!(stats.entries, 5);
        server.shutdown();
    }

    #[test]
    fn legacy_and_binary_clients_share_one_cache() {
        let server = spawn_default();
        let req = EvalRequest::new("mission", vec![5.0], 1);
        let legacy = EvalClient::new(server.addr());
        let Response::Cost { cost: a, cached: first_cached } = legacy.eval(&req).unwrap() else {
            panic!()
        };
        assert!(!first_cached);
        let mut binary = FramedClient::connect(server.addr()).unwrap();
        let Response::Cost { cost: b, cached } = binary.eval(&req).unwrap() else { panic!() };
        assert!(cached, "binary client must hit the legacy client's entry");
        assert_eq!(a.to_bits(), b.to_bits());
        server.shutdown();
    }

    #[test]
    fn telemetry_answers_on_both_protocols() {
        let server = spawn_default();
        let legacy = EvalClient::new(server.addr());
        for i in 0..4u32 {
            let _ = legacy.eval(&EvalRequest::new("mission", vec![f64::from(i)], 0)).unwrap();
        }
        let Response::Telemetry(over_text) = legacy.telemetry().unwrap() else {
            panic!("want telemetry")
        };
        assert_eq!(over_text.requests, 4);
        assert!(over_text.dispatch.count >= 1, "dispatch phase must have samples");
        assert!(over_text.dispatch.p99_ns >= over_text.dispatch.p50_ns);
        assert_eq!(over_text.misses, 4);

        let mut binary = FramedClient::connect(server.addr()).unwrap();
        let Response::Telemetry(over_frames) = binary.telemetry().unwrap() else {
            panic!("want telemetry")
        };
        // The framed query itself parses but never dispatches.
        assert_eq!(over_frames.requests, 4);
        assert!(over_frames.parse.count >= over_text.parse.count);
        assert_eq!(server.server_stats().requests, 4);
        server.shutdown();
    }

    #[test]
    fn stats_and_clean_shutdown() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        let _ = client.eval(&EvalRequest::new("mission", vec![1.0], 0)).unwrap();
        let Response::Stats(stats) = client.stats().unwrap() else { panic!("want stats") };
        assert_eq!(stats.entries, 1);
        assert_eq!(client.shutdown().unwrap(), Response::Stopping);
        server.wait();
    }

    #[test]
    fn malformed_and_out_of_domain_requests_get_errors() {
        let server = spawn_default();
        let client = EvalClient::new(server.addr());
        // Out-of-domain: empty values vector.
        let resp = client.eval(&EvalRequest::new("mission", vec![], 0)).unwrap();
        assert_eq!(resp, Response::Error("values must be nonempty".to_string()));
        // Malformed on the wire.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(b"op = warp\n\n").unwrap();
        let text = read_message(&mut stream).unwrap();
        let parsed = crate::wire::parse_response(&text).unwrap();
        assert!(matches!(parsed, Response::Error(ref msg) if msg.contains("unknown op")));
        server.shutdown();
    }

    #[test]
    fn garbage_binary_frames_get_an_error_not_a_hang() {
        let server = spawn_default();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Valid magic, hostile length.
        let mut bytes = vec![crate::frame::MAGIC, crate::frame::VERSION, 0x01, 0];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&bytes).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut chunk = [0u8; 256];
        let resp = loop {
            if let Some(resp) = decoder.next_response().unwrap() {
                break resp;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed without answering");
            decoder.feed(&chunk[..n]);
        };
        assert!(matches!(resp, Response::Error(ref msg) if msg.contains("exceeds")), "{resp:?}");
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_busy() {
        // max_pending = 0: every eval request is answered busy, which
        // exercises the admission-control path deterministically.
        let server = EvalServer::spawn(
            ServeConfig { max_pending: 0, par: ParConfig::serial(), ..ServeConfig::default() },
            Arc::new(quadratic),
        )
        .unwrap();
        let client = EvalClient::new(server.addr());
        let resp = client.eval(&EvalRequest::new("mission", vec![1.0], 0)).unwrap();
        assert_eq!(resp, Response::Busy);
        assert!(server.shed_count() >= 1);
        server.shutdown();
    }

    #[test]
    fn connection_limit_sheds_with_busy() {
        let server = EvalServer::spawn(
            ServeConfig { max_connections: 0, par: ParConfig::serial(), ..ServeConfig::default() },
            Arc::new(quadratic),
        )
        .unwrap();
        let client = EvalClient::new(server.addr());
        let resp = client.eval(&EvalRequest::new("mission", vec![1.0], 0)).unwrap();
        assert_eq!(resp, Response::Busy);
        server.shutdown();
    }

    #[test]
    fn disk_backed_server_warm_starts_across_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "m7serve-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            par: ParConfig::serial(),
            disk_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let req = EvalRequest::new("mission", vec![6.0, 8.0], 3);

        let server = EvalServer::spawn(config.clone(), Arc::new(quadratic)).unwrap();
        let client = EvalClient::new(server.addr());
        let Response::Cost { cost, cached } = client.eval(&req).unwrap() else { panic!() };
        assert!(!cached, "cold start computes");
        server.shutdown();

        // A brand-new process-equivalent: fresh server, same directory.
        let server = EvalServer::spawn(config, Arc::new(quadratic)).unwrap();
        let recovered = server.recovery().expect("disk tier");
        assert_eq!(recovered.live_entries, 1);
        let client = EvalClient::new(server.addr());
        let Response::Cost { cost: warm, cached } = client.eval(&req).unwrap() else { panic!() };
        assert!(cached, "warm start answers from the recovered disk tier");
        assert_eq!(warm.to_bits(), cost.to_bits());
        assert_eq!(server.tier_stats().disk_hits, 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
