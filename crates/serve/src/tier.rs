//! The tiered content-addressed cache: hot in-memory shards backed by
//! the crash-safe on-disk [`SegmentStore`].
//!
//! Lookup order is hot tier → disk tier → miss; a disk hit is promoted
//! into the hot tier so repeat traffic stays in memory. Inserts land in
//! both tiers (write-through), so every acknowledged result survives a
//! process restart — the warm-start property the DSE and falsification
//! campaigns lean on.
//!
//! Because every cached value is a pure function of its key, the tier
//! split is invisible to results: a computation through a
//! [`TieredCache`] returns bits identical to an uncached run, whatever
//! mixture of hot hits, disk hits, evictions, and recoveries happened
//! along the way. The [`ResultStore`] trait is that contract as an
//! interface — the memoized search paths accept any implementation.

use crate::cache::EvalCache;
use crate::key::CacheKey;
use crate::segment::{DiskCodec, RecoveryReport, SegmentConfig, SegmentStore};
use m7_trace::{Counter, MetricClass, TraceCounter};
use std::io;
use std::path::PathBuf;

// Tier-level observability (no-ops until `m7_trace::enable()`). The
// hot/disk split depends on eviction and promotion order, so it is
// diagnostic; recovery numbers are a pure function of the file.
static G_HOT_HITS: TraceCounter = TraceCounter::new("serve.tier.hot_hits", MetricClass::Diagnostic);
static G_DISK_HITS: TraceCounter =
    TraceCounter::new("serve.tier.disk_hits", MetricClass::Diagnostic);
static G_MISSES: TraceCounter = TraceCounter::new("serve.tier.misses", MetricClass::Diagnostic);
static G_DISK_ERRORS: TraceCounter =
    TraceCounter::new("serve.tier.disk_errors", MetricClass::Diagnostic);

/// The storage contract shared by [`EvalCache`] and [`TieredCache`]:
/// a thread-safe map from content-addressed keys to pure-function
/// results. `get_or_insert_with` must run `compute` outside any lock it
/// holds for other keys.
pub trait ResultStore<V: Clone>: Sync {
    /// Looks up `key`, counting a hit or a miss.
    fn get(&self, key: CacheKey) -> Option<V>;

    /// Stores `value` under `key`.
    fn insert(&self, key: CacheKey, value: V);

    /// Lookups that found a value, so callers can report evaluations
    /// saved.
    fn hits(&self) -> u64;

    /// The cached value for `key`, or `compute`'s result after storing
    /// it. The flag is `true` on a hit.
    fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.insert(key, v.clone());
        (v, false)
    }
}

impl<V: Clone + Send + Sync> ResultStore<V> for EvalCache<V> {
    fn get(&self, key: CacheKey) -> Option<V> {
        EvalCache::get(self, key)
    }

    fn insert(&self, key: CacheKey, value: V) {
        EvalCache::insert(self, key, value);
    }

    fn hits(&self) -> u64 {
        self.stats().hits
    }

    fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> (V, bool) {
        EvalCache::get_or_insert_with(self, key, compute)
    }
}

/// Exact tier telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Lookups answered by the in-memory tier.
    pub hot_hits: u64,
    /// Lookups answered by the disk tier (and promoted).
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Values written through both tiers.
    pub insertions: u64,
    /// Disk reads/writes that failed and were degraded to misses.
    pub disk_errors: u64,
    /// Entries currently in the hot tier.
    pub hot_entries: usize,
    /// Live entries in the disk tier (0 when the disk tier is off).
    pub disk_entries: usize,
    /// Compactions the disk tier has run.
    pub compactions: u64,
}

impl TierStats {
    /// All lookups answered from some tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hot_hits + self.disk_hits
    }
}

impl core::fmt::Display for TierStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "hot {} / disk {} / misses {} / hot entries {} / disk entries {}",
            self.hot_hits, self.disk_hits, self.misses, self.hot_entries, self.disk_entries
        )
    }
}

/// Where a [`TieredCache`] keeps its cold tier.
#[derive(Debug, Clone, PartialEq)]
pub enum TierConfig {
    /// Hot tier only — behaves exactly like a plain [`EvalCache`].
    MemoryOnly,
    /// Hot tier backed by an on-disk segment store.
    Disk(SegmentConfig),
}

impl TierConfig {
    /// A disk-backed tier with [`SegmentConfig`] defaults under `dir`.
    #[must_use]
    pub fn disk(dir: impl Into<PathBuf>) -> Self {
        Self::Disk(SegmentConfig::new(dir))
    }
}

/// Hot sharded LRU over a crash-safe append-only disk tier.
///
/// # Examples
///
/// ```
/// use m7_serve::key::CacheKey;
/// use m7_serve::tier::{ResultStore, TieredCache};
///
/// let cache: TieredCache<f64> = TieredCache::memory_only(128);
/// cache.insert(CacheKey(42), 3.25);
/// assert_eq!(cache.get(CacheKey(42)), Some(3.25));
/// assert_eq!(cache.stats().hot_hits, 1);
/// ```
pub struct TieredCache<V> {
    hot: EvalCache<V>,
    disk: Option<SegmentStore>,
    hot_hits: Counter,
    disk_hits: Counter,
    misses: Counter,
    insertions: Counter,
    disk_errors: Counter,
}

impl<V: Clone + DiskCodec> TieredCache<V> {
    /// Opens a tiered cache with a hot bound of `hot_capacity` entries.
    ///
    /// With a disk config, the segment file is recovered first (torn
    /// tail truncated, intact records indexed); recovered entries are
    /// served from disk on demand, not bulk-loaded into the hot tier.
    ///
    /// # Errors
    ///
    /// Disk-tier open/recovery errors. `MemoryOnly` cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if `hot_capacity` is zero.
    pub fn open(hot_capacity: usize, config: TierConfig) -> io::Result<Self> {
        let disk = match config {
            TierConfig::MemoryOnly => None,
            TierConfig::Disk(seg) => Some(SegmentStore::open(seg)?),
        };
        Ok(Self {
            hot: EvalCache::new(hot_capacity),
            disk,
            hot_hits: Counter::new(),
            disk_hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            disk_errors: Counter::new(),
        })
    }

    /// A hot-tier-only cache (never fails, no disk I/O).
    #[must_use]
    pub fn memory_only(hot_capacity: usize) -> Self {
        Self::open(hot_capacity, TierConfig::MemoryOnly).expect("memory-only open cannot fail")
    }

    /// The hot tier, with its own exact [`CacheStats`]
    /// (`crate::cache::CacheStats`) counters.
    #[must_use]
    pub fn hot(&self) -> &EvalCache<V> {
        &self.hot
    }

    /// The disk tier's recovery report, when a disk tier is configured.
    #[must_use]
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.disk.as_ref().map(SegmentStore::recovery)
    }

    /// `true` when a disk tier is attached.
    #[must_use]
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Forces the disk tier to media (no-op without one).
    ///
    /// # Errors
    ///
    /// The underlying fsync error.
    pub fn sync(&self) -> io::Result<()> {
        match &self.disk {
            Some(disk) => disk.sync(),
            None => Ok(()),
        }
    }

    /// Exact tier counters plus current entry counts.
    #[must_use]
    pub fn stats(&self) -> TierStats {
        TierStats {
            hot_hits: self.hot_hits.get(),
            disk_hits: self.disk_hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            disk_errors: self.disk_errors.get(),
            hot_entries: self.hot.len(),
            disk_entries: self.disk.as_ref().map_or(0, SegmentStore::len),
            compactions: self.disk.as_ref().map_or(0, SegmentStore::compactions),
        }
    }

    fn tier_get(&self, key: CacheKey) -> Option<V> {
        if let Some(v) = self.hot.get(key) {
            self.hot_hits.incr();
            G_HOT_HITS.incr();
            return Some(v);
        }
        if let Some(disk) = &self.disk {
            match disk.get(key.0) {
                Ok(Some(bytes)) => {
                    if let Some(v) = V::decode(&bytes) {
                        // Promote without re-appending: the record is
                        // already durable.
                        self.hot.insert(key, v.clone());
                        self.disk_hits.incr();
                        G_DISK_HITS.incr();
                        return Some(v);
                    }
                    self.disk_errors.incr();
                    G_DISK_ERRORS.incr();
                }
                Ok(None) => {}
                Err(_) => {
                    // Disk trouble degrades to a miss: the caller
                    // recomputes, correctness is unaffected.
                    self.disk_errors.incr();
                    G_DISK_ERRORS.incr();
                }
            }
        }
        self.misses.incr();
        G_MISSES.incr();
        None
    }

    fn tier_insert(&self, key: CacheKey, value: V) {
        self.insertions.incr();
        self.hot.insert(key, value.clone());
        if let Some(disk) = &self.disk {
            let mut payload = Vec::new();
            value.encode(&mut payload);
            if disk.append(key.0, &payload).is_err() {
                self.disk_errors.incr();
                G_DISK_ERRORS.incr();
            }
        }
    }
}

impl<V: Clone + Send + Sync + DiskCodec> ResultStore<V> for TieredCache<V> {
    fn get(&self, key: CacheKey) -> Option<V> {
        self.tier_get(key)
    }

    fn insert(&self, key: CacheKey, value: V) {
        self.tier_insert(key, value);
    }

    fn hits(&self) -> u64 {
        self.stats().hits()
    }
}

impl<V: Clone + DiskCodec> TieredCache<V> {
    /// Looks up `key` through both tiers; see [`ResultStore::get`].
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<V> {
        self.tier_get(key)
    }

    /// Write-through insert; see [`ResultStore::insert`].
    pub fn insert(&self, key: CacheKey, value: V) {
        self.tier_insert(key, value);
    }
}

impl<V> core::fmt::Debug for TieredCache<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TieredCache").field("has_disk", &self.disk.is_some()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "m7tier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(i: u64) -> CacheKey {
        CacheKey(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    #[test]
    fn memory_only_matches_plain_cache_semantics() {
        let cache: TieredCache<f64> = TieredCache::memory_only(8);
        assert_eq!(cache.get(key(1)), None);
        cache.insert(key(1), 2.5);
        assert_eq!(cache.get(key(1)), Some(2.5));
        let s = cache.stats();
        assert_eq!((s.hot_hits, s.disk_hits, s.misses, s.insertions), (1, 0, 1, 1));
        assert!(!cache.has_disk());
    }

    #[test]
    fn disk_tier_survives_reopen_and_reports_warm_hits() {
        let dir = temp_dir("reopen");
        {
            let cache: TieredCache<f64> = TieredCache::open(64, TierConfig::disk(&dir)).unwrap();
            for i in 0..10 {
                cache.insert(key(i), i as f64 * 0.5);
            }
        }
        let cache: TieredCache<f64> = TieredCache::open(64, TierConfig::disk(&dir)).unwrap();
        let rec = cache.recovery().expect("disk tier present");
        assert_eq!((rec.live_entries, rec.torn_bytes), (10, 0));
        // Every get is a disk hit (hot tier is empty after restart)…
        for i in 0..10 {
            assert_eq!(cache.get(key(i)), Some(i as f64 * 0.5));
        }
        assert_eq!(cache.stats().disk_hits, 10);
        // …then a hot hit once promoted.
        for i in 0..10 {
            assert_eq!(cache.get(key(i)), Some(i as f64 * 0.5));
        }
        let s = cache.stats();
        assert_eq!((s.hot_hits, s.disk_hits, s.misses), (10, 10, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_eviction_falls_back_to_disk_not_recompute() {
        let dir = temp_dir("evict");
        let cache: TieredCache<f64> = TieredCache::open(4, TierConfig::disk(&dir)).unwrap();
        for i in 0..64u32 {
            cache.insert(key(u64::from(i)), f64::from(i));
        }
        assert!(cache.hot().len() <= 4);
        // Everything is still servable — from disk.
        for i in 0..64u32 {
            assert_eq!(cache.get(key(u64::from(i))), Some(f64::from(i)), "key {i}");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 0, "nothing is lost to eviction with a disk tier: {s}");
        assert!(s.disk_hits >= 60, "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_values_round_trip_through_disk() {
        let dir = temp_dir("errors");
        {
            let cache: TieredCache<Result<f64, String>> =
                TieredCache::open(8, TierConfig::disk(&dir)).unwrap();
            cache.insert(key(1), Ok(1.5));
            cache.insert(key(2), Err("tier must be an integer".to_string()));
        }
        let cache: TieredCache<Result<f64, String>> =
            TieredCache::open(8, TierConfig::disk(&dir)).unwrap();
        assert_eq!(cache.get(key(1)), Some(Ok(1.5)));
        assert_eq!(cache.get(key(2)), Some(Err("tier must be an integer".to_string())));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_or_insert_with_computes_once_across_tiers() {
        let dir = temp_dir("goiw");
        let cache: TieredCache<f64> = TieredCache::open(2, TierConfig::disk(&dir)).unwrap();
        let (v, hit) = ResultStore::get_or_insert_with(&cache, key(9), || 81.0);
        assert_eq!((v, hit), (81.0, false));
        let (v, hit) = ResultStore::get_or_insert_with(&cache, key(9), || unreachable!());
        assert_eq!((v, hit), (81.0, true));
        assert_eq!(ResultStore::<f64>::hits(&cache), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_tiered_use_is_safe() {
        let dir = temp_dir("concurrent");
        let cache: TieredCache<f64> = TieredCache::open(16, TierConfig::disk(&dir)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, (t * 1000 + i) as f64);
                        assert_eq!(cache.get(k), Some((t * 1000 + i) as f64));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.insertions, 800);
        assert_eq!(s.misses, 0, "{s}");
        assert_eq!(s.disk_errors, 0, "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
