//! The loopback wire protocol: newline-delimited `key = value` lines,
//! one blank line terminating each message — the same line-oriented
//! format as `m7_arch::spec` (no JSON dependency exists in this
//! workspace, and none is needed).
//!
//! ```text
//! op = eval
//! workload = mission
//! values = 1 20 0.25 12
//! seed = 42
//!
//! ```
//!
//! Floats are rendered with Rust's shortest round-trip formatting, so a
//! cost parsed back from the wire is bit-identical to the cost computed
//! by the server.

use crate::cache::CacheStats;
use crate::introspect::ServerStats;
use crate::key::EvalRequest;

/// A request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one design.
    Eval(EvalRequest),
    /// Report cache statistics.
    Stats,
    /// Report full live server telemetry ([`ServerStats`]).
    Telemetry,
    /// Sentinel: shut the server down cleanly.
    Shutdown,
}

/// A response message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The evaluation result; `cached` is `true` when the cache (or an
    /// in-flight duplicate) answered it.
    Cost {
        /// The objective value.
        cost: f64,
        /// Whether an evaluation was avoided.
        cached: bool,
    },
    /// Cache statistics snapshot.
    Stats(CacheStats),
    /// Live server telemetry snapshot (boxed: [`ServerStats`] is by far
    /// the widest payload, and responses are moved around by value).
    Telemetry(Box<ServerStats>),
    /// The pending queue was full; the request was shed, not queued.
    Busy,
    /// Acknowledgement of a shutdown sentinel.
    Stopping,
    /// The request could not be served; the message is one line.
    Error(String),
}

/// A protocol parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// 1-based line of the offending input (0 for message-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: WireErrorKind,
}

/// The kinds of protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireErrorKind {
    /// A line was not of the form `key = value`.
    MalformedLine,
    /// The key is not recognized.
    UnknownKey(String),
    /// `op = …` named an unknown operation.
    UnknownOp(String),
    /// The value could not be parsed for its key.
    InvalidValue {
        /// The key whose value failed.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// The mandatory `op` field was missing.
    MissingOp,
    /// An `op = eval` request was missing a required field.
    MissingField(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            WireErrorKind::MalformedLine => {
                write!(f, "line {}: expected `key = value`", self.line)
            }
            WireErrorKind::UnknownKey(k) => write!(f, "line {}: unknown key `{k}`", self.line),
            WireErrorKind::UnknownOp(op) => write!(f, "line {}: unknown op `{op}`", self.line),
            WireErrorKind::InvalidValue { key, value } => {
                write!(f, "line {}: invalid value `{value}` for `{key}`", self.line)
            }
            WireErrorKind::MissingOp => write!(f, "request is missing the `op` field"),
            WireErrorKind::MissingField(field) => {
                write!(f, "eval request is missing the `{field}` field")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Splits a message into `(line_no, key, value)` fields, ignoring blank
/// lines and `#` comments.
fn fields(text: &str) -> Result<Vec<(usize, &str, &str)>, WireError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(WireError { line: line_no, kind: WireErrorKind::MalformedLine });
        };
        out.push((line_no, key.trim(), value.trim()));
    }
    Ok(out)
}

fn parse_f64(line: usize, key: &str, value: &str) -> Result<f64, WireError> {
    value.parse::<f64>().map_err(|_| WireError {
        line,
        kind: WireErrorKind::InvalidValue { key: key.to_string(), value: value.to_string() },
    })
}

fn parse_u64(line: usize, key: &str, value: &str) -> Result<u64, WireError> {
    value.parse::<u64>().map_err(|_| WireError {
        line,
        kind: WireErrorKind::InvalidValue { key: key.to_string(), value: value.to_string() },
    })
}

/// Parses one request message.
///
/// # Errors
///
/// Returns a positioned [`WireError`] on malformed lines, unknown keys
/// or ops, bad numbers, or missing mandatory fields.
///
/// # Examples
///
/// ```
/// use m7_serve::wire::{parse_request, Request};
///
/// let req = parse_request("op = eval\nvalues = 1 2\nseed = 7\n")?;
/// let Request::Eval(eval) = req else { panic!() };
/// assert_eq!(eval.values, vec![1.0, 2.0]);
/// assert_eq!(eval.seed, 7);
/// # Ok::<(), m7_serve::wire::WireError>(())
/// ```
pub fn parse_request(text: &str) -> Result<Request, WireError> {
    let mut op: Option<(usize, String)> = None;
    let mut workload = String::from("mission");
    let mut values: Option<Vec<f64>> = None;
    let mut seed: Option<u64> = None;
    for (line, key, value) in fields(text)? {
        match key {
            "op" => op = Some((line, value.to_string())),
            "workload" => workload = value.to_string(),
            "values" => {
                let mut parsed = Vec::new();
                for word in value.split_whitespace() {
                    parsed.push(parse_f64(line, key, word)?);
                }
                values = Some(parsed);
            }
            "seed" => seed = Some(parse_u64(line, key, value)?),
            other => {
                return Err(WireError { line, kind: WireErrorKind::UnknownKey(other.to_string()) })
            }
        }
    }
    let Some((op_line, op)) = op else {
        return Err(WireError { line: 0, kind: WireErrorKind::MissingOp });
    };
    match op.as_str() {
        "eval" => {
            let values =
                values.ok_or(WireError { line: 0, kind: WireErrorKind::MissingField("values") })?;
            let seed =
                seed.ok_or(WireError { line: 0, kind: WireErrorKind::MissingField("seed") })?;
            Ok(Request::Eval(EvalRequest { workload, values, seed }))
        }
        "stats" => Ok(Request::Stats),
        "telemetry" => Ok(Request::Telemetry),
        "shutdown" => Ok(Request::Shutdown),
        other => {
            Err(WireError { line: op_line, kind: WireErrorKind::UnknownOp(other.to_string()) })
        }
    }
}

/// Renders a request, blank-line terminated.
#[must_use]
pub fn format_request(request: &Request) -> String {
    match request {
        Request::Eval(eval) => {
            let values: Vec<String> = eval.values.iter().map(|v| format!("{v}")).collect();
            format!(
                "op = eval\nworkload = {}\nvalues = {}\nseed = {}\n\n",
                eval.workload,
                values.join(" "),
                eval.seed
            )
        }
        Request::Stats => "op = stats\n\n".to_string(),
        Request::Telemetry => "op = telemetry\n\n".to_string(),
        Request::Shutdown => "op = shutdown\n\n".to_string(),
    }
}

/// Parses one response message.
///
/// # Errors
///
/// Returns a positioned [`WireError`] on malformed or incomplete
/// responses.
pub fn parse_response(text: &str) -> Result<Response, WireError> {
    let mut status: Option<String> = None;
    let mut cost: Option<f64> = None;
    let mut cached = false;
    let mut stopping = false;
    let mut error: Option<String> = None;
    let mut stats = CacheStats::default();
    let mut saw_stats_field = false;
    let mut telemetry: Vec<(String, u64)> = Vec::new();
    for (line, key, value) in fields(text)? {
        if let Some(name) = key.strip_prefix("telemetry.") {
            telemetry.push((name.to_string(), parse_u64(line, key, value)?));
            continue;
        }
        match key {
            "status" => status = Some(value.to_string()),
            "cost" => cost = Some(parse_f64(line, key, value)?),
            "cached" => cached = value == "true",
            "stopping" => stopping = value == "true",
            "error" => error = Some(value.to_string()),
            "hits" => {
                stats.hits = parse_u64(line, key, value)?;
                saw_stats_field = true;
            }
            "misses" => {
                stats.misses = parse_u64(line, key, value)?;
                saw_stats_field = true;
            }
            "evictions" => {
                stats.evictions = parse_u64(line, key, value)?;
                saw_stats_field = true;
            }
            "insertions" => {
                stats.insertions = parse_u64(line, key, value)?;
                saw_stats_field = true;
            }
            "entries" => {
                stats.entries = parse_u64(line, key, value)? as usize;
                saw_stats_field = true;
            }
            other => {
                return Err(WireError { line, kind: WireErrorKind::UnknownKey(other.to_string()) })
            }
        }
    }
    match status.as_deref() {
        Some("ok") if stopping => Ok(Response::Stopping),
        Some("ok") => {
            if let Some(cost) = cost {
                Ok(Response::Cost { cost, cached })
            } else if !telemetry.is_empty() {
                Ok(Response::Telemetry(Box::new(ServerStats::from_pairs(
                    telemetry.iter().map(|(k, v)| (k.as_str(), *v)),
                ))))
            } else if saw_stats_field {
                Ok(Response::Stats(stats))
            } else {
                Err(WireError { line: 0, kind: WireErrorKind::MissingField("cost") })
            }
        }
        Some("busy") => Ok(Response::Busy),
        Some("error") => {
            Ok(Response::Error(error.unwrap_or_else(|| "unspecified error".to_string())))
        }
        Some(other) => Err(WireError {
            line: 0,
            kind: WireErrorKind::InvalidValue { key: "status".into(), value: other.into() },
        }),
        None => Err(WireError { line: 0, kind: WireErrorKind::MissingField("status") }),
    }
}

/// Renders a response, blank-line terminated. Error text is flattened to
/// one line so it cannot forge extra protocol lines.
#[must_use]
pub fn format_response(response: &Response) -> String {
    match response {
        Response::Cost { cost, cached } => {
            format!("status = ok\ncost = {cost}\ncached = {cached}\n\n")
        }
        Response::Stats(s) => format!(
            "status = ok\nhits = {}\nmisses = {}\nevictions = {}\ninsertions = {}\n\
             entries = {}\n\n",
            s.hits, s.misses, s.evictions, s.insertions, s.entries
        ),
        Response::Telemetry(stats) => {
            let mut out = String::from("status = ok\n");
            for (name, value) in stats.pairs() {
                out.push_str(&format!("telemetry.{name} = {value}\n"));
            }
            out.push('\n');
            out
        }
        Response::Busy => "status = busy\n\n".to_string(),
        Response::Stopping => "status = ok\nstopping = true\n\n".to_string(),
        Response::Error(msg) => {
            let one_line: String =
                msg.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
            format!("status = error\nerror = {one_line}\n\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_request_round_trips() {
        let req = Request::Eval(EvalRequest::new("mission", vec![1.0, 20.5, 0.25], 42));
        let text = format_request(&req);
        assert_eq!(parse_request(&text).unwrap(), req);
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [Request::Stats, Request::Telemetry, Request::Shutdown] {
            assert_eq!(parse_request(&format_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn telemetry_response_round_trips() {
        let stats = ServerStats {
            uptime_ms: 42,
            connections: 2,
            pending: 1,
            requests: 1000,
            shed: 3,
            reaped: 1,
            hot_hits: 900,
            misses: 100,
            insertions: 100,
            ..ServerStats::default()
        };
        let text = format_response(&Response::Telemetry(Box::new(stats.clone())));
        assert!(text.contains("telemetry.requests = 1000"), "{text}");
        assert_eq!(parse_response(&text).unwrap(), Response::Telemetry(Box::new(stats)));
    }

    #[test]
    fn cost_response_round_trips_bit_exactly() {
        // Shortest round-trip float formatting: the parsed cost is the
        // same f64, bit for bit.
        for cost in [1.0 / 3.0, f64::MIN_POSITIVE, -0.0, 1e300, 123.456_789_012_345_67] {
            let resp = Response::Cost { cost, cached: true };
            let parsed = parse_response(&format_response(&resp)).unwrap();
            let Response::Cost { cost: parsed_cost, cached } = parsed else { panic!() };
            assert_eq!(parsed_cost.to_bits(), cost.to_bits());
            assert!(cached);
        }
    }

    #[test]
    fn stats_busy_stopping_error_round_trip() {
        let stats = CacheStats { hits: 3, misses: 4, evictions: 1, insertions: 5, entries: 2 };
        for resp in [
            Response::Stats(stats),
            Response::Busy,
            Response::Stopping,
            Response::Error("line 2: unknown key `warp`".to_string()),
        ] {
            assert_eq!(parse_response(&format_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = parse_request("op = eval\nnot a field\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, WireErrorKind::MalformedLine);
        assert!(err.to_string().contains("line 2"));

        let err = parse_request("op = warp\n").unwrap_err();
        assert!(matches!(err.kind, WireErrorKind::UnknownOp(ref op) if op == "warp"));

        let err = parse_request("values = 1 2\nseed = 3\n").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::MissingOp);

        let err = parse_request("op = eval\nseed = 3\n").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::MissingField("values"));

        let err = parse_request("op = eval\nvalues = one two\nseed = 3\n").unwrap_err();
        assert!(matches!(err.kind, WireErrorKind::InvalidValue { .. }));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let req = parse_request("# a comment\n\nop = stats  # trailing\n\n").unwrap();
        assert_eq!(req, Request::Stats);
    }

    #[test]
    fn error_responses_cannot_forge_protocol_lines() {
        let resp = Response::Error("bad\nstatus = ok".to_string());
        let text = format_response(&resp);
        let parsed = parse_response(&text).unwrap();
        assert!(matches!(parsed, Response::Error(ref msg) if !msg.contains('\n')));
    }
}
