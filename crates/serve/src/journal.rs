//! Crash-safe flight journal: telemetry snapshots on the segment store.
//!
//! [`FlightJournal`] is a [`SnapshotSink`] that appends every record the
//! telemetry hub publishes to an append-only [`SegmentStore`], keyed by
//! sequence number: key 0 holds the baseline full snapshot, key `k > 0`
//! holds the delta from record `k - 1`. Because the store CRC-checks
//! every record and truncates the torn tail on open, a `kill -9` at any
//! instant leaves exactly the prefix of records that reached the OS —
//! [`recover_snapshot`] replays `0, 1, 2, …` until the first gap and
//! folds the deltas back into the final pre-crash snapshot.
//!
//! [`TelemetryPump`] is the one-call wiring every binary shares: it
//! turns the parsed [`ObsFlags`] (`--stats-interval`, `--journal`) into
//! a running [`TelemetryHub`] with the journal attached, so the four
//! CLI entry points do not each reimplement the plumbing.

use std::io;
use std::path::Path;

use m7_trace::cli::ObsFlags;
use m7_trace::hub::{SnapshotSink, TelemetryHub};
use m7_trace::snapshot::{decode_record, Snapshot, SnapshotDelta, SnapshotRecord};

use crate::segment::{RecoveryReport, SegmentConfig, SegmentStore};

/// Streams hub records into a [`SegmentStore`], one record per sequence
/// number.
pub struct FlightJournal {
    store: SegmentStore,
    write_errors: u64,
}

impl FlightJournal {
    /// Opens (or recovers) the journal under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates [`SegmentStore::open`] failures — I/O errors, or
    /// `InvalidData` when `dir` holds a non-segment file.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let store = SegmentStore::open(SegmentConfig::new(dir.as_ref()))?;
        Ok(Self { store, write_errors: 0 })
    }

    /// What opening the journal replayed and repaired.
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.store.recovery()
    }

    /// Appends that failed (the journal degrades rather than panicking
    /// the hub thread; a non-zero value means the record stream on disk
    /// ends earlier than the in-process one).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl SnapshotSink for FlightJournal {
    fn publish(&mut self, snapshot: &Snapshot, delta: Option<&SnapshotDelta>) {
        let payload = match delta {
            None => snapshot.encode(),
            Some(delta) => delta.encode(),
        };
        if self.store.append(snapshot.seq, &payload).is_err() {
            self.write_errors += 1;
        }
    }
}

/// Replays a journal directory back into its final snapshot.
///
/// Reads record 0 (the baseline full snapshot) and then folds deltas at
/// `1, 2, …` until the first missing key — the end of the acked prefix.
/// Returns `None` when the directory holds no baseline (the journal
/// never started). The second tuple element is the number of records
/// folded in, baseline included.
///
/// # Errors
///
/// Propagates store-open I/O errors, and reports `InvalidData` when a
/// stored record fails to decode (journal written by an incompatible
/// version, or key 0 is not a full snapshot).
pub fn recover_snapshot(dir: impl AsRef<Path>) -> io::Result<Option<(Snapshot, usize)>> {
    let store = SegmentStore::open(SegmentConfig::new(dir.as_ref()))?;
    let Some(baseline) = store.get(0)? else {
        return Ok(None);
    };
    let corrupt = |seq: u64| {
        io::Error::new(io::ErrorKind::InvalidData, format!("journal record {seq} did not decode"))
    };
    let mut snapshot = match decode_record(&baseline) {
        Some(SnapshotRecord::Full(snap)) => snap,
        _ => return Err(corrupt(0)),
    };
    let mut records = 1;
    loop {
        let seq = snapshot.seq + 1;
        let Some(bytes) = store.get(seq)? else {
            return Ok(Some((snapshot, records)));
        };
        match decode_record(&bytes) {
            Some(SnapshotRecord::Delta(delta)) => snapshot = snapshot.apply(&delta),
            _ => return Err(corrupt(seq)),
        }
        records += 1;
    }
}

/// The running telemetry plane of one process: the hub plus whatever
/// sinks the observability flags asked for.
pub struct TelemetryPump {
    hub: TelemetryHub,
}

impl TelemetryPump {
    /// Starts the hub if `flags` ask for one (`--stats-interval` and/or
    /// `--journal`), attaching a [`FlightJournal`] sink when a journal
    /// directory was given. Returns `None` when telemetry is off — the
    /// caller just holds the `Option` and drops it at exit, which
    /// flushes one final sample.
    ///
    /// # Errors
    ///
    /// Propagates journal-open failures; the hub itself cannot fail to
    /// start.
    pub fn from_flags(flags: &ObsFlags) -> io::Result<Option<Self>> {
        if !flags.wants_hub() {
            return Ok(None);
        }
        let mut sinks: Vec<Box<dyn SnapshotSink>> = Vec::new();
        if let Some(dir) = &flags.journal {
            sinks.push(Box::new(FlightJournal::open(dir)?));
        }
        let hub = TelemetryHub::start(flags.hub_config(), sinks);
        Ok(Some(Self { hub }))
    }

    /// The most recent published snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Snapshot> {
        self.hub.latest()
    }

    /// Records published so far (baseline + non-empty deltas).
    #[must_use]
    pub fn snapshots_published(&self) -> u64 {
        self.hub.snapshots_published()
    }

    /// Stops the hub: one final sample reaches the sinks before this
    /// returns. Dropping the pump does the same.
    pub fn stop(self) {
        self.hub.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_trace::metrics::{MetricClass, MetricEntry, MetricValue, MetricsSnapshot};

    fn snap(seq: u64, entries: Vec<MetricEntry>) -> Snapshot {
        Snapshot { seq, wall_ms: seq * 10, metrics: MetricsSnapshot { entries } }
    }

    fn counter(name: &str, value: u64) -> MetricEntry {
        MetricEntry {
            name: name.to_string(),
            class: MetricClass::Deterministic,
            value: MetricValue::Counter(value),
        }
    }

    fn publish_chain(journal: &mut FlightJournal, snaps: &[Snapshot]) {
        journal.publish(&snaps[0], None);
        for pair in snaps.windows(2) {
            let delta = pair[1].delta_from(&pair[0]);
            journal.publish(&pair[1], Some(&delta));
        }
    }

    #[test]
    fn journal_round_trips_baseline_plus_deltas() {
        let dir = std::env::temp_dir().join(format!("m7-journal-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snaps = [
            snap(0, vec![counter("a", 1)]),
            snap(1, vec![counter("a", 3)]),
            snap(2, vec![counter("a", 3), counter("b", 7)]),
        ];
        {
            let mut journal = FlightJournal::open(&dir).expect("open journal");
            publish_chain(&mut journal, &snaps);
            assert_eq!(journal.write_errors(), 0);
        }
        let (recovered, records) = recover_snapshot(&dir).expect("recover").expect("baseline");
        assert_eq!(records, 3);
        assert_eq!(recovered, snaps[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_stops_at_first_gap() {
        let dir = std::env::temp_dir().join(format!("m7-journal-gap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snaps = [snap(0, vec![counter("a", 1)]), snap(1, vec![counter("a", 2)])];
        {
            let mut journal = FlightJournal::open(&dir).expect("open journal");
            publish_chain(&mut journal, &snaps);
            // A record past a gap must be ignored: seq 3 exists, 2 does not.
            let orphan = snap(3, vec![counter("a", 9)]);
            let delta = orphan.delta_from(&snaps[1]);
            journal.store.append(3, &delta.encode()).expect("append orphan");
        }
        let (recovered, records) = recover_snapshot(&dir).expect("recover").expect("baseline");
        assert_eq!(records, 2);
        assert_eq!(recovered, snaps[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_to_none() {
        let dir = std::env::temp_dir().join(format!("m7-journal-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(recover_snapshot(&dir).expect("recover").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pump_is_off_without_flags_and_journals_with_them() {
        let flags = ObsFlags::default();
        assert!(TelemetryPump::from_flags(&flags).expect("pump").is_none());

        let dir = std::env::temp_dir().join(format!("m7-journal-pump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flags = ObsFlags {
            stats_interval: Some(5),
            journal: Some(dir.display().to_string()),
            ..ObsFlags::default()
        };
        let pump = TelemetryPump::from_flags(&flags).expect("pump").expect("hub on");
        pump.stop(); // final sample flushes the baseline even if quiet
        let recovered = recover_snapshot(&dir).expect("recover");
        assert!(recovered.is_some(), "baseline record must reach the journal");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
