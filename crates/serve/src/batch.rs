//! The request batcher: coalesce duplicate in-flight requests, consult
//! the cache, and dispatch only the unique misses — in one batch — over
//! the deterministic [`m7_par`] pool.
//!
//! This is the same dedup → batch → dispatch → cache shape as an
//! inference-serving stack, applied to objective evaluations. Because
//! the evaluation function is pure, the returned vector is **bit
//! identical** to `items.iter().map(eval).collect()` for any thread
//! count, any cache contents, and any eviction history — caching and
//! coalescing change only how much work runs, never what is returned.

use crate::key::CacheKey;
use crate::tier::ResultStore;
use m7_par::ParConfig;
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceHistogram};
use std::collections::HashMap;

// Batch-lifecycle observability (no-ops until `m7_trace::enable()`).
// Batch sizes, unique-work counts, and hit/coalesce/compute totals are
// decided in the serial probe phase, so they are deterministic; the
// hit/miss latency split is host timing, hence `sched.` / diagnostic.
static BATCH_SPAN: SpanSite = SpanSite::new("serve.batch", MetricClass::Deterministic);
static BATCH_ITEMS: TraceHistogram =
    TraceHistogram::new("serve.batch.items", MetricClass::Deterministic);
static BATCH_UNIQUE: TraceHistogram =
    TraceHistogram::new("serve.batch.unique", MetricClass::Deterministic);
static HITS: TraceCounter = TraceCounter::new("serve.batch.hits", MetricClass::Deterministic);
static COALESCED: TraceCounter =
    TraceCounter::new("serve.batch.coalesced", MetricClass::Deterministic);
static COMPUTED: TraceCounter =
    TraceCounter::new("serve.batch.computed", MetricClass::Deterministic);
static HIT_PATH_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.hit_path_ns", MetricClass::Diagnostic);
static MISS_PATH_NS: TraceHistogram =
    TraceHistogram::new("sched.serve.miss_path_ns", MetricClass::Diagnostic);

/// What one batched dispatch did, for telemetry and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Requests answered straight from the cache.
    pub cache_hits: usize,
    /// Duplicate in-flight requests folded onto another request's
    /// evaluation.
    pub coalesced: usize,
    /// Evaluations actually dispatched to the pool.
    pub computed: usize,
}

impl BatchOutcome {
    /// Evaluations avoided by the cache and by in-flight coalescing.
    #[must_use]
    pub fn saved(&self) -> usize {
        self.cache_hits + self.coalesced
    }
}

/// Evaluates `items` through the cache with duplicate coalescing.
///
/// Stages, in order:
///
/// 1. every item's [`CacheKey`] is computed serially (keys are cheap and
///    the order of `get` counters stays deterministic on the serial path),
/// 2. cache hits are answered immediately,
/// 3. the remaining misses are coalesced by key — each unique key is
///    evaluated once —
/// 4. and the unique work runs as one batch on the pool, after which
///    results are scattered back to every requesting slot and inserted
///    into the cache.
///
/// # Examples
///
/// ```
/// use m7_par::ParConfig;
/// use m7_serve::batch::evaluate_batch_memo;
/// use m7_serve::cache::EvalCache;
/// use m7_serve::key::{CacheKey, KeyHasher};
///
/// let cache: EvalCache<f64> = EvalCache::new(64);
/// let items = [2.0f64, 3.0, 2.0, 2.0];
/// let key_of = |x: &f64| {
///     let mut h = KeyHasher::new();
///     h.write_f64(*x);
///     h.finish()
/// };
/// let (out, stats) =
///     evaluate_batch_memo(&cache, ParConfig::serial(), &items, key_of, |x| x * x);
/// assert_eq!(out, vec![4.0, 9.0, 4.0, 4.0]);
/// assert_eq!(stats.computed, 2); // 2.0 evaluated once, 3.0 once
/// assert_eq!(stats.coalesced, 2); // the two duplicate 2.0 requests
/// ```
pub fn evaluate_batch_memo<S, T, V, K, E>(
    cache: &S,
    par: ParConfig,
    items: &[T],
    key_of: K,
    eval: E,
) -> (Vec<V>, BatchOutcome)
where
    S: ResultStore<V>,
    T: Sync,
    V: Clone + Send + Sync,
    K: Fn(&T) -> CacheKey,
    E: Fn(&T) -> V + Sync,
{
    let (flagged, outcome) = evaluate_batch_memo_flagged(cache, par, items, key_of, eval);
    (flagged.into_iter().map(|(v, _)| v).collect(), outcome)
}

/// [`evaluate_batch_memo`], additionally flagging each slot with whether
/// *its* evaluation was avoided (`true` for a cache hit or a request
/// coalesced onto another slot's evaluation; `false` for the slot that
/// actually computed).
pub fn evaluate_batch_memo_flagged<S, T, V, K, E>(
    cache: &S,
    par: ParConfig,
    items: &[T],
    key_of: K,
    eval: E,
) -> (Vec<(V, bool)>, BatchOutcome)
where
    S: ResultStore<V>,
    T: Sync,
    V: Clone + Send + Sync,
    K: Fn(&T) -> CacheKey,
    E: Fn(&T) -> V + Sync,
{
    let _span = BATCH_SPAN.enter();
    let tracing = m7_trace::enabled();
    let probe_start = tracing.then(std::time::Instant::now);
    let mut outcome = BatchOutcome::default();

    // Per-slot resolution: a hit value, or a position in the unique
    // miss list (`primary` marks the slot whose request is dispatched).
    enum Slot<V> {
        Hit(V),
        Miss { pos: usize, primary: bool },
    }
    let mut slots: Vec<Slot<V>> = Vec::with_capacity(items.len());
    let mut unique: Vec<usize> = Vec::new();
    let mut first_seen: HashMap<u64, usize> = HashMap::new();
    let mut unique_keys: Vec<CacheKey> = Vec::new();

    for (i, item) in items.iter().enumerate() {
        let key = key_of(item);
        if let Some(pos) = first_seen.get(&key.0) {
            // Coalesce onto the in-flight evaluation of the same key —
            // no second cache probe, no second dispatch.
            outcome.coalesced += 1;
            slots.push(Slot::Miss { pos: *pos, primary: false });
            continue;
        }
        match cache.get(key) {
            Some(v) => {
                outcome.cache_hits += 1;
                slots.push(Slot::Hit(v));
            }
            None => {
                let pos = unique.len();
                first_seen.insert(key.0, pos);
                unique.push(i);
                unique_keys.push(key);
                slots.push(Slot::Miss { pos, primary: true });
            }
        }
    }

    outcome.computed = unique.len();
    let compute_start = if let Some(t0) = probe_start {
        // The serial key/probe/coalesce pass above is the latency every
        // cache-answered request pays.
        HIT_PATH_NS.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Some(std::time::Instant::now())
    } else {
        None
    };
    let computed: Vec<V> = par.par_map(&unique, |&i| eval(&items[i]));
    for (key, value) in unique_keys.iter().zip(&computed) {
        cache.insert(*key, value.clone());
    }
    if tracing {
        if let Some(t0) = compute_start {
            if !unique.is_empty() {
                MISS_PATH_NS.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
        BATCH_ITEMS.record(items.len() as u64);
        BATCH_UNIQUE.record(unique.len() as u64);
        HITS.add(outcome.cache_hits as u64);
        COALESCED.add(outcome.coalesced as u64);
        COMPUTED.add(outcome.computed as u64);
    }

    let results = slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Hit(v) => (v, true),
            Slot::Miss { pos, primary } => (computed[pos].clone(), !primary),
        })
        .collect();
    (results, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::key::KeyHasher;

    fn key_of(x: &u64) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_u64(*x);
        h.finish()
    }

    #[test]
    fn matches_plain_map_for_any_cache_state_and_thread_count() {
        let items: Vec<u64> = (0..200).map(|i| i % 37).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let cache: EvalCache<u64> = EvalCache::new(16); // small: forces evictions
        for threads in [1, 2, 8] {
            let (got, _) = evaluate_batch_memo(
                &cache,
                ParConfig::with_threads(threads),
                &items,
                key_of,
                |x| x * x + 1,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn duplicates_are_coalesced_not_recomputed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let cache: EvalCache<u64> = EvalCache::new(64);
        let items = [5u64, 5, 5, 6, 6, 7];
        let (got, outcome) =
            evaluate_batch_memo(&cache, ParConfig::with_threads(4), &items, key_of, |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x * 10
            });
        assert_eq!(got, vec![50, 50, 50, 60, 60, 70]);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "one evaluation per unique key");
        assert_eq!(outcome, BatchOutcome { cache_hits: 0, coalesced: 3, computed: 3 });
        assert_eq!(outcome.saved(), 3);
    }

    #[test]
    fn second_batch_is_all_hits() {
        let cache: EvalCache<u64> = EvalCache::new(64);
        let items = [1u64, 2, 3];
        let _ = evaluate_batch_memo(&cache, ParConfig::serial(), &items, key_of, |x| x + 1);
        let (got, outcome) =
            evaluate_batch_memo(&cache, ParConfig::serial(), &items, key_of, |_| {
                unreachable!("warm cache must answer everything")
            });
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(outcome, BatchOutcome { cache_hits: 3, coalesced: 0, computed: 0 });
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let cache: EvalCache<u64> = EvalCache::new(4);
        let (got, outcome) = evaluate_batch_memo(&cache, ParConfig::serial(), &[], key_of, |x| *x);
        assert!(got.is_empty());
        assert_eq!(outcome, BatchOutcome::default());
    }
}
