//! Live server introspection: the `telemetry` request's payload.
//!
//! [`ServerStats`] is everything the readiness loop knows about itself
//! at one instant — per-phase latency quantiles (upper bounds from the
//! 65-bucket log₂ histograms in `m7-trace`), connection/pending gauges,
//! admission-control and reap counters, tier hit/miss stats, and what
//! disk recovery replayed at startup. It is answered *inline* from the
//! parse phase, exactly like the legacy cache-stats request: no
//! dispatch, no locks beyond the cache's own counters, so querying a
//! busy server never stalls evaluation traffic.
//!
//! On the wire the struct travels as an ordered `(name, value)` list —
//! self-describing, so fields can be added without renumbering either
//! protocol: the legacy rendering is `telemetry.<name> = <value>` lines
//! and the framed rendering is a counted list of (string, u64) pairs.
//! [`ServerStats::from_pairs`] ignores unknown names and zero-fills
//! missing ones.

/// Latency summary of one event-loop phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Turns in which the phase did work (its histogram's sample count).
    pub count: u64,
    /// p50 latency upper bound, nanoseconds.
    pub p50_ns: u64,
    /// p95 latency upper bound, nanoseconds.
    pub p95_ns: u64,
    /// p99 latency upper bound, nanoseconds.
    pub p99_ns: u64,
}

/// A live snapshot of the server's internals. See the module docs for
/// how it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Milliseconds since the event loop started.
    pub uptime_ms: u64,
    /// Connections currently held by the event loop.
    pub connections: u64,
    /// Parsed requests awaiting dispatch right now.
    pub pending: u64,
    /// Requests dispatched since startup.
    pub requests: u64,
    /// Connections/requests answered `busy` (admission control).
    pub shed: u64,
    /// Connections reaped for being stuck past the io timeout.
    pub reaped: u64,
    /// Accept-phase latency (turns that accepted ≥ 1 connection).
    pub accept: PhaseStats,
    /// Read+parse-phase latency (turns that moved or parsed bytes).
    pub parse: PhaseStats,
    /// Dispatch-phase latency (one batch through cache + pool).
    pub dispatch: PhaseStats,
    /// Write-phase latency (turns that flushed ≥ 1 byte).
    pub write: PhaseStats,
    /// Lookups answered by the hot tier.
    pub hot_hits: u64,
    /// Lookups answered by the disk tier.
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Values written through the tiers.
    pub insertions: u64,
    /// Disk operations degraded to misses.
    pub disk_errors: u64,
    /// Entries currently hot.
    pub hot_entries: u64,
    /// Live entries on disk.
    pub disk_entries: u64,
    /// Disk compactions run.
    pub compactions: u64,
    /// Live entries disk recovery replayed at startup.
    pub recovered_entries: u64,
    /// Torn bytes recovery truncated at startup.
    pub recovery_torn_bytes: u64,
}

macro_rules! stats_pairs {
    ($($name:literal => $($field:ident).+),+ $(,)?) => {
        impl ServerStats {
            /// The ordered `(name, value)` wire form.
            #[must_use]
            pub fn pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$(($name, self.$($field).+)),+]
            }

            /// Rebuilds from wire pairs: unknown names are ignored,
            /// missing ones stay zero — `from_pairs(x.pairs()) == x`.
            #[must_use]
            pub fn from_pairs<'a, I>(pairs: I) -> Self
            where
                I: IntoIterator<Item = (&'a str, u64)>,
            {
                let mut out = Self::default();
                for (name, value) in pairs {
                    match name {
                        $($name => out.$($field).+ = value,)+
                        _ => {}
                    }
                }
                out
            }
        }
    };
}

stats_pairs! {
    "uptime_ms" => uptime_ms,
    "connections" => connections,
    "pending" => pending,
    "requests" => requests,
    "shed" => shed,
    "reaped" => reaped,
    "accept.count" => accept.count,
    "accept.p50_ns" => accept.p50_ns,
    "accept.p95_ns" => accept.p95_ns,
    "accept.p99_ns" => accept.p99_ns,
    "parse.count" => parse.count,
    "parse.p50_ns" => parse.p50_ns,
    "parse.p95_ns" => parse.p95_ns,
    "parse.p99_ns" => parse.p99_ns,
    "dispatch.count" => dispatch.count,
    "dispatch.p50_ns" => dispatch.p50_ns,
    "dispatch.p95_ns" => dispatch.p95_ns,
    "dispatch.p99_ns" => dispatch.p99_ns,
    "write.count" => write.count,
    "write.p50_ns" => write.p50_ns,
    "write.p95_ns" => write.p95_ns,
    "write.p99_ns" => write.p99_ns,
    "tier.hot_hits" => hot_hits,
    "tier.disk_hits" => disk_hits,
    "tier.misses" => misses,
    "tier.insertions" => insertions,
    "tier.disk_errors" => disk_errors,
    "tier.hot_entries" => hot_entries,
    "tier.disk_entries" => disk_entries,
    "tier.compactions" => compactions,
    "recovery.entries" => recovered_entries,
    "recovery.torn_bytes" => recovery_torn_bytes,
}

impl core::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "up {} ms · {} conns · {} pending · {} requests · {} shed · {} reaped",
            self.uptime_ms, self.connections, self.pending, self.requests, self.shed, self.reaped
        )?;
        for (name, p) in [
            ("accept", &self.accept),
            ("parse", &self.parse),
            ("dispatch", &self.dispatch),
            ("write", &self.write),
        ] {
            writeln!(
                f,
                "{name:>9}: {:>8} turns · p50 ≤ {} ns · p95 ≤ {} ns · p99 ≤ {} ns",
                p.count, p.p50_ns, p.p95_ns, p.p99_ns
            )?;
        }
        writeln!(
            f,
            "tier: {} hot + {} disk hits / {} misses · {} inserted · {}+{} entries · \
             recovered {} ({} torn bytes)",
            self.hot_hits,
            self.disk_hits,
            self.misses,
            self.insertions,
            self.hot_entries,
            self.disk_entries,
            self.recovered_entries,
            self.recovery_torn_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServerStats {
        ServerStats {
            uptime_ms: 1234,
            connections: 3,
            pending: 2,
            requests: 99,
            shed: 1,
            reaped: 4,
            accept: PhaseStats { count: 10, p50_ns: 100, p95_ns: 200, p99_ns: 400 },
            parse: PhaseStats { count: 11, p50_ns: 101, p95_ns: 201, p99_ns: 401 },
            dispatch: PhaseStats { count: 12, p50_ns: 102, p95_ns: 202, p99_ns: 402 },
            write: PhaseStats { count: 13, p50_ns: 103, p95_ns: 203, p99_ns: 403 },
            hot_hits: 5,
            disk_hits: 6,
            misses: 7,
            insertions: 8,
            disk_errors: 0,
            hot_entries: 9,
            disk_entries: 10,
            compactions: 1,
            recovered_entries: 11,
            recovery_torn_bytes: 12,
        }
    }

    #[test]
    fn pairs_round_trip_exactly() {
        let stats = sample();
        let pairs = stats.pairs();
        assert_eq!(ServerStats::from_pairs(pairs.iter().copied()), stats);
        // Every field is covered: flipping any pair must change the result.
        for i in 0..pairs.len() {
            let mut mutated: Vec<_> = pairs.clone();
            mutated[i].1 = mutated[i].1.wrapping_add(1);
            assert_ne!(ServerStats::from_pairs(mutated.into_iter()), stats, "pair {i} ignored");
        }
    }

    #[test]
    fn unknown_names_are_ignored_and_missing_default() {
        let got = ServerStats::from_pairs([("requests", 7u64), ("from.the.future", 1)]);
        assert_eq!(got.requests, 7);
        assert_eq!(got.shed, 0);
    }

    #[test]
    fn display_renders_every_phase() {
        let text = sample().to_string();
        for needle in ["accept", "parse", "dispatch", "write", "p99", "recovered 11"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
