//! A sharded, bounded, memoizing result store addressed by
//! [`CacheKey`](crate::key::CacheKey).
//!
//! The cache holds *pure-function results*: because every cached value is
//! a deterministic function of its key, eviction and cross-thread races
//! can only cost recomputation, never change a result — which is what
//! lets the memoized evaluation paths stay bit-identical to the uncached
//! ones at any thread count.
//!
//! Capacity is a hard bound: the store never holds more than `capacity`
//! entries, enforced per shard with LRU-ish eviction (each shard evicts
//! its least-recently-used entry when full). Hit / miss / eviction /
//! insertion counters are exact and lock-free to read.

use crate::key::CacheKey;
use m7_trace::{Counter, MetricClass, TraceCounter};
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

// Global registry mirrors of the per-instance counters (no-ops until
// `m7_trace::enable()`). The batcher probes and inserts serially, so
// totals are a pure function of the submitted work — deterministic
// across thread counts.
static G_HITS: TraceCounter = TraceCounter::new("serve.cache.hits", MetricClass::Deterministic);
static G_MISSES: TraceCounter = TraceCounter::new("serve.cache.misses", MetricClass::Deterministic);
static G_EVICTIONS: TraceCounter =
    TraceCounter::new("serve.cache.evictions", MetricClass::Deterministic);
static G_INSERTIONS: TraceCounter =
    TraceCounter::new("serve.cache.insertions", MetricClass::Deterministic);

/// Exact cache telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Values inserted (updates of an existing key count too).
    pub insertions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl core::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "hits {} / misses {} / evictions {} / entries {}",
            self.hits, self.misses, self.evictions, self.entries
        )
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    tick: u64,
    capacity: usize,
}

impl<V: Clone> Shard<V> {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, key: u64) -> Option<V> {
        let tick = self.touch();
        let entry = self.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Inserts, evicting the least-recently-used entry if the shard is
    /// full. Returns `true` when an eviction happened.
    fn insert(&mut self, key: u64, value: V) -> bool {
        let tick = self.touch();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, Entry { value, last_used: tick });
        evicted
    }
}

/// A thread-safe, bounded, content-addressed result cache.
///
/// # Examples
///
/// ```
/// use m7_serve::cache::EvalCache;
/// use m7_serve::key::CacheKey;
///
/// let cache: EvalCache<f64> = EvalCache::new(128);
/// let key = CacheKey(42);
/// assert_eq!(cache.get(key), None);
/// cache.insert(key, 3.25);
/// assert_eq!(cache.get(key), Some(3.25));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
pub struct EvalCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity: usize,
    // Per-instance telemetry lives on m7-trace's always-on counter type
    // (exact, lock-free); every bump is also mirrored into the global
    // trace registry under serve.cache.* when tracing is enabled.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    insertions: Counter,
}

impl<V: Clone> EvalCache<V> {
    /// Creates a cache bounded to at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        let nshards = SHARDS.min(capacity);
        // Distribute the bound exactly: sum of shard capacities == capacity.
        let shards = (0..nshards)
            .map(|i| {
                let cap = capacity / nshards + usize::from(i < capacity % nshards);
                Mutex::new(Shard { map: HashMap::new(), tick: 0, capacity: cap })
            })
            .collect();
        Self {
            shards,
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            insertions: Counter::new(),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard<V>> {
        // High bits pick the shard; low bits index the map, so the two
        // uses of the key are decorrelated.
        let idx = (key.0 >> 48) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up `key`, counting a hit or a miss.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<V> {
        let found = self.shard(key).lock().expect("cache shard poisoned").get(key.0);
        match found {
            Some(v) => {
                self.hits.incr();
                G_HITS.incr();
                Some(v)
            }
            None => {
                self.misses.incr();
                G_MISSES.incr();
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the shard's least-recently
    /// used entry if the bound requires it.
    pub fn insert(&self, key: CacheKey, value: V) {
        let evicted = self.shard(key).lock().expect("cache shard poisoned").insert(key.0, value);
        self.insertions.incr();
        G_INSERTIONS.incr();
        if evicted {
            self.evictions.incr();
            G_EVICTIONS.incr();
        }
    }

    /// Returns the cached value for `key`, or computes, stores, and
    /// returns it. The second element is `true` on a hit.
    ///
    /// `compute` runs outside the shard lock, so a slow evaluation never
    /// blocks other shards — at worst two threads race to fill the same
    /// key with the identical pure-function result.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.insert(key, v.clone());
        (v, false)
    }

    /// Current number of stored entries (always `<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured hard bound on stored entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact counters plus the current entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            insertions: self.insertions.get(),
            entries: self.len(),
        }
    }

    /// Drops every entry; counters are preserved.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").map.clear();
        }
    }
}

impl<V: Clone> core::fmt::Debug for EvalCache<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EvalCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        // Spread keys across shards like real FNV output would.
        CacheKey(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    #[test]
    fn get_insert_roundtrip_and_exact_counters() {
        let cache: EvalCache<f64> = EvalCache::new(64);
        assert_eq!(cache.get(key(1)), None);
        cache.insert(key(1), 1.5);
        assert_eq!(cache.get(key(1)), Some(1.5));
        assert_eq!(cache.get(key(2)), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 2, 1, 1));
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let cache: EvalCache<u32> = EvalCache::new(10);
        for i in 0..1000 {
            cache.insert(key(i), i as u32);
            assert!(cache.len() <= 10, "len {} exceeded capacity after insert {i}", cache.len());
        }
        assert!(cache.stats().evictions >= 990);
    }

    #[test]
    fn lru_prefers_recently_used_entries() {
        // Single-shard cache so recency is globally ordered.
        let cache: EvalCache<u32> = EvalCache::new(2);
        assert_eq!(cache.shards.len(), 2.min(SHARDS));
        let cache: EvalCache<u32> = EvalCache::new(1);
        cache.insert(CacheKey(1), 10);
        cache.insert(CacheKey(2), 20);
        assert_eq!(cache.get(CacheKey(1)), None, "older entry evicted");
        assert_eq!(cache.get(CacheKey(2)), Some(20));
    }

    #[test]
    fn update_of_existing_key_does_not_evict() {
        let cache: EvalCache<u32> = EvalCache::new(1);
        cache.insert(CacheKey(7), 1);
        cache.insert(CacheKey(7), 2);
        assert_eq!(cache.get(CacheKey(7)), Some(2));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn get_or_insert_with_reports_hits() {
        let cache: EvalCache<u64> = EvalCache::new(8);
        let (v, hit) = cache.get_or_insert_with(key(3), || 42);
        assert_eq!((v, hit), (42, false));
        let (v, hit) = cache.get_or_insert_with(key(3), || unreachable!("must be cached"));
        assert_eq!((v, hit), (42, true));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: EvalCache<u8> = EvalCache::new(8);
        cache.insert(key(1), 1);
        let _ = cache.get(key(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = EvalCache::<f64>::new(0);
    }

    #[test]
    fn concurrent_use_is_safe_and_bounded() {
        let cache: EvalCache<u64> = EvalCache::new(32);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, i);
                        let _ = cache.get(k);
                    }
                });
            }
        });
        assert!(cache.len() <= 32);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2000);
        assert_eq!(s.insertions, 2000);
    }
}
