//! The binary wire protocol: length-prefixed, versioned frames.
//!
//! Each frame is an 8-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       1     magic   (0xA7 — never a valid first byte of the legacy
//!                        text protocol, so one peeked byte selects the
//!                        protocol per connection)
//! 1       1     version (currently 1)
//! 2       1     kind    (request/response discriminant, below)
//! 3       1     reserved (must be 0)
//! 4       4     payload length, u32 little-endian
//! 8       len   payload
//! ```
//!
//! Kinds `0x01..=0x04` are requests (eval, stats, shutdown, telemetry);
//! kinds `0x81..=0x86` are responses (cost, stats, busy, stopping,
//! error, telemetry).
//! Integers are little-endian; floats travel as [`f64::to_bits`], so a
//! cost decoded from a frame is the server's cost bit for bit.
//!
//! [`FrameDecoder`] is incremental: feed it arbitrary byte chunks and
//! pull complete messages out. It validates the header *before*
//! allocating anything sized by the untrusted length field, so an
//! adversarial `len = u32::MAX` costs a clean [`FrameError::Oversized`],
//! never an allocation. Malformed input of any kind is an error, never a
//! panic — the fuzz suite in `tests/serve_frame_fuzz.rs` holds it to
//! that.

use crate::cache::CacheStats;
use crate::key::EvalRequest;
use crate::wire::{Request, Response};

/// First byte of every binary frame. `0xA7` is not valid leading UTF-8
/// and no legacy text message begins with it, so the server can sniff
/// the protocol from one byte.
pub const MAGIC: u8 = 0xA7;

/// Highest frame-layout version this build speaks.
pub const VERSION: u8 = 1;

/// Hard bound on one frame's payload. Headers announcing more are
/// rejected without allocating.
pub const MAX_PAYLOAD: usize = 256 * 1024;

/// Bytes in the fixed frame header.
pub const HEADER_BYTES: usize = 8;

const KIND_REQ_EVAL: u8 = 0x01;
const KIND_REQ_STATS: u8 = 0x02;
const KIND_REQ_SHUTDOWN: u8 = 0x03;
const KIND_REQ_TELEMETRY: u8 = 0x04;
const KIND_RESP_COST: u8 = 0x81;
const KIND_RESP_STATS: u8 = 0x82;
const KIND_RESP_BUSY: u8 = 0x83;
const KIND_RESP_STOPPING: u8 = 0x84;
const KIND_RESP_ERROR: u8 = 0x85;
const KIND_RESP_TELEMETRY: u8 = 0x86;

/// Longest workload tag / error message carried in a frame.
const MAX_STRING_BYTES: usize = 4096;
/// Most design values in one eval request.
const MAX_VALUES: usize = 4096;
/// Most `(name, value)` pairs in one telemetry response.
const MAX_TELEMETRY_PAIRS: usize = 256;

/// Why a byte stream is not a valid frame sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first byte of a frame was not [`MAGIC`].
    BadMagic(u8),
    /// The version byte names a layout this build does not speak.
    BadVersion(u8),
    /// The reserved header byte was nonzero.
    BadReserved(u8),
    /// The header announced a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Announced payload length.
        len: u64,
        /// The bound it exceeded.
        max: usize,
    },
    /// The kind byte is not a known request/response discriminant.
    UnknownKind(u8),
    /// The payload ended before the field being decoded.
    Truncated(&'static str),
    /// A decoded field was out of its domain.
    BadField(&'static str),
    /// Payload bytes remained after the last field of the message.
    TrailingBytes(usize),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x} (want 0x{MAGIC:02x})"),
            Self::BadVersion(v) => write!(f, "unsupported frame version {v} (speak {VERSION})"),
            Self::BadReserved(b) => write!(f, "reserved header byte must be 0, got 0x{b:02x}"),
            Self::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte bound")
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            Self::Truncated(field) => write!(f, "payload truncated inside `{field}`"),
            Self::BadField(field) => write!(f, "invalid value for `{field}`"),
            Self::TrailingBytes(n) => write!(f, "{n} unexpected bytes after the last field"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A little-endian payload reader that can only fail, never read out of
/// bounds.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated(field))?;
        if end > self.bytes.len() {
            return Err(FrameError::Truncated(field));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self, field: &'static str) -> Result<String, FrameError> {
        let len = self.u32(field)? as usize;
        if len > MAX_STRING_BYTES {
            return Err(FrameError::BadField(field));
        }
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadField(field))
    }

    fn finish(self) -> Result<(), FrameError> {
        let left = self.bytes.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes(left))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes one request as a binary frame.
///
/// # Examples
///
/// ```
/// use m7_serve::frame::{encode_request, FrameDecoder};
/// use m7_serve::key::EvalRequest;
/// use m7_serve::wire::Request;
///
/// let req = Request::Eval(EvalRequest::new("uav-mission", vec![1.0, 2.5], 42));
/// let mut decoder = FrameDecoder::new();
/// decoder.feed(&encode_request(&req));
/// assert_eq!(decoder.next_request().unwrap(), Some(req));
/// ```
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    match request {
        Request::Eval(eval) => {
            let mut p = Vec::new();
            put_string(&mut p, &eval.workload);
            p.extend_from_slice(&eval.seed.to_le_bytes());
            p.extend_from_slice(&(eval.values.len() as u32).to_le_bytes());
            for v in &eval.values {
                p.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            frame(KIND_REQ_EVAL, &p)
        }
        Request::Stats => frame(KIND_REQ_STATS, &[]),
        Request::Telemetry => frame(KIND_REQ_TELEMETRY, &[]),
        Request::Shutdown => frame(KIND_REQ_SHUTDOWN, &[]),
    }
}

/// Encodes one response as a binary frame.
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Cost { cost, cached } => {
            let mut p = Vec::with_capacity(9);
            p.extend_from_slice(&cost.to_bits().to_le_bytes());
            p.push(u8::from(*cached));
            frame(KIND_RESP_COST, &p)
        }
        Response::Stats(s) => {
            let mut p = Vec::with_capacity(40);
            for v in [s.hits, s.misses, s.evictions, s.insertions, s.entries as u64] {
                p.extend_from_slice(&v.to_le_bytes());
            }
            frame(KIND_RESP_STATS, &p)
        }
        Response::Telemetry(stats) => {
            let pairs = stats.pairs();
            debug_assert!(pairs.len() <= MAX_TELEMETRY_PAIRS);
            let mut p = Vec::with_capacity(4 + pairs.len() * 24);
            p.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (name, value) in pairs {
                put_string(&mut p, name);
                p.extend_from_slice(&value.to_le_bytes());
            }
            frame(KIND_RESP_TELEMETRY, &p)
        }
        Response::Busy => frame(KIND_RESP_BUSY, &[]),
        Response::Stopping => frame(KIND_RESP_STOPPING, &[]),
        Response::Error(msg) => {
            let mut p = Vec::new();
            let clipped: String = msg.chars().take(MAX_STRING_BYTES / 4).collect();
            put_string(&mut p, &clipped);
            frame(KIND_RESP_ERROR, &p)
        }
    }
}

fn decode_request_payload(kind: u8, payload: &[u8]) -> Result<Request, FrameError> {
    match kind {
        KIND_REQ_EVAL => {
            let mut r = Reader::new(payload);
            let workload = r.string("workload")?;
            let seed = r.u64("seed")?;
            let n = r.u32("values.len")? as usize;
            if n > MAX_VALUES {
                return Err(FrameError::BadField("values.len"));
            }
            // The remaining payload bounds the claimed count before any
            // allocation sized by it.
            let bits = r.take(n.saturating_mul(8), "values")?;
            let values = bits
                .chunks_exact(8)
                .map(|c| {
                    f64::from_bits(u64::from_le_bytes([
                        c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                    ]))
                })
                .collect();
            r.finish()?;
            Ok(Request::Eval(EvalRequest { workload, values, seed }))
        }
        KIND_REQ_STATS => {
            Reader::new(payload).finish()?;
            Ok(Request::Stats)
        }
        KIND_REQ_TELEMETRY => {
            Reader::new(payload).finish()?;
            Ok(Request::Telemetry)
        }
        KIND_REQ_SHUTDOWN => {
            Reader::new(payload).finish()?;
            Ok(Request::Shutdown)
        }
        other => Err(FrameError::UnknownKind(other)),
    }
}

fn decode_response_payload(kind: u8, payload: &[u8]) -> Result<Response, FrameError> {
    match kind {
        KIND_RESP_COST => {
            let mut r = Reader::new(payload);
            let cost = f64::from_bits(r.u64("cost")?);
            let cached = match r.u8("cached")? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::BadField("cached")),
            };
            r.finish()?;
            Ok(Response::Cost { cost, cached })
        }
        KIND_RESP_STATS => {
            let mut r = Reader::new(payload);
            let stats = CacheStats {
                hits: r.u64("hits")?,
                misses: r.u64("misses")?,
                evictions: r.u64("evictions")?,
                insertions: r.u64("insertions")?,
                entries: usize::try_from(r.u64("entries")?)
                    .map_err(|_| FrameError::BadField("entries"))?,
            };
            r.finish()?;
            Ok(Response::Stats(stats))
        }
        KIND_RESP_TELEMETRY => {
            let mut r = Reader::new(payload);
            let n = r.u32("telemetry.len")? as usize;
            if n > MAX_TELEMETRY_PAIRS {
                return Err(FrameError::BadField("telemetry.len"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.string("telemetry.name")?;
                let value = r.u64("telemetry.value")?;
                pairs.push((name, value));
            }
            r.finish()?;
            Ok(Response::Telemetry(Box::new(crate::introspect::ServerStats::from_pairs(
                pairs.iter().map(|(k, v)| (k.as_str(), *v)),
            ))))
        }
        KIND_RESP_BUSY => {
            Reader::new(payload).finish()?;
            Ok(Response::Busy)
        }
        KIND_RESP_STOPPING => {
            Reader::new(payload).finish()?;
            Ok(Response::Stopping)
        }
        KIND_RESP_ERROR => {
            let mut r = Reader::new(payload);
            let msg = r.string("error")?;
            r.finish()?;
            Ok(Response::Error(msg))
        }
        other => Err(FrameError::UnknownKind(other)),
    }
}

/// An incremental frame decoder: buffer arbitrary chunks, pull complete
/// messages.
///
/// Once a call returns an error the decoder is poisoned — the stream has
/// no recoverable framing — and every later call returns the same error.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned message.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Validates the next header and, if its frame is complete, returns
    /// `(kind, payload)`.
    fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = &self.buf[self.consumed..];
        if avail.is_empty() {
            self.compact();
            return Ok(None);
        }
        // Validate every header byte that has arrived so garbage fails
        // fast, before the full header is even in.
        if avail[0] != MAGIC {
            return self.poison(FrameError::BadMagic(avail[0]));
        }
        if avail.len() >= 2 && avail[1] != VERSION {
            return self.poison(FrameError::BadVersion(avail[1]));
        }
        if avail.len() >= 4 && avail[3] != 0 {
            return self.poison(FrameError::BadReserved(avail[3]));
        }
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        if len > MAX_PAYLOAD {
            return self.poison(FrameError::Oversized { len: len as u64, max: MAX_PAYLOAD });
        }
        let kind = avail[2];
        if !matches!(
            kind,
            KIND_REQ_EVAL
                | KIND_REQ_STATS
                | KIND_REQ_SHUTDOWN
                | KIND_REQ_TELEMETRY
                | KIND_RESP_COST
                | KIND_RESP_STATS
                | KIND_RESP_BUSY
                | KIND_RESP_STOPPING
                | KIND_RESP_ERROR
                | KIND_RESP_TELEMETRY
        ) {
            return self.poison(FrameError::UnknownKind(kind));
        }
        if avail.len() < HEADER_BYTES + len {
            return Ok(None);
        }
        let payload = avail[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        self.consumed += HEADER_BYTES + len;
        self.compact();
        Ok(Some((kind, payload)))
    }

    fn poison(&mut self, err: FrameError) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        self.poisoned = Some(err.clone());
        Err(err)
    }

    /// Reclaims consumed prefix bytes so the buffer never grows beyond
    /// one in-flight frame plus one read chunk.
    fn compact(&mut self) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Decodes the next complete request, or `Ok(None)` if more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// Any framing or payload violation — see [`FrameError`].
    pub fn next_request(&mut self) -> Result<Option<Request>, FrameError> {
        match self.next_frame()? {
            None => Ok(None),
            Some((kind, payload)) => match decode_request_payload(kind, &payload) {
                Ok(req) => Ok(Some(req)),
                Err(err) => {
                    self.poisoned = Some(err.clone());
                    Err(err)
                }
            },
        }
    }

    /// Decodes the next complete response, or `Ok(None)` if more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// Any framing or payload violation — see [`FrameError`].
    pub fn next_response(&mut self) -> Result<Option<Response>, FrameError> {
        match self.next_frame()? {
            None => Ok(None),
            Some((kind, payload)) => match decode_response_payload(kind, &payload) {
                Ok(resp) => Ok(Some(resp)),
                Err(err) => {
                    self.poisoned = Some(err.clone());
                    Err(err)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Eval(EvalRequest::new("uav-mission", vec![1.0, -0.0, 1e300], 42)),
            Request::Eval(EvalRequest::new("", vec![], 0)),
            Request::Stats,
            Request::Telemetry,
            Request::Shutdown,
        ];
        for req in reqs {
            let mut d = FrameDecoder::new();
            d.feed(&encode_request(&req));
            assert_eq!(d.next_request().unwrap(), Some(req));
            assert_eq!(d.next_request().unwrap(), None);
            assert_eq!(d.pending_bytes(), 0);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let stats = CacheStats { hits: 1, misses: 2, evictions: 3, insertions: 4, entries: 5 };
        let resps = [
            Response::Cost { cost: 1.0 / 3.0, cached: true },
            Response::Cost { cost: f64::NAN, cached: false },
            Response::Stats(stats),
            Response::Busy,
            Response::Stopping,
            Response::Error("line 2: unknown key `warp`".to_string()),
        ];
        for resp in resps {
            let mut d = FrameDecoder::new();
            d.feed(&encode_response(&resp));
            let got = d.next_response().unwrap().expect("complete frame");
            match (&got, &resp) {
                (Response::Cost { cost: a, .. }, Response::Cost { cost: b, .. }) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(got, resp),
            }
        }
    }

    #[test]
    fn split_feeds_reassemble() {
        let req = Request::Eval(EvalRequest::new("poly", vec![2.0, 3.0, 5.0], 7));
        let bytes = encode_request(&req);
        for split in 0..bytes.len() {
            let mut d = FrameDecoder::new();
            d.feed(&bytes[..split]);
            // Incomplete prefixes either need more bytes or are still
            // header-valid; they must never produce a message early.
            assert_eq!(d.next_request().unwrap(), None, "split at {split}");
            d.feed(&bytes[split..]);
            assert_eq!(d.next_request().unwrap(), Some(req.clone()), "split at {split}");
        }
    }

    #[test]
    fn two_frames_in_one_feed() {
        let a = Request::Stats;
        let b = Request::Eval(EvalRequest::new("w", vec![4.0], 1));
        let mut bytes = encode_request(&a);
        bytes.extend_from_slice(&encode_request(&b));
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_request().unwrap(), Some(a));
        assert_eq!(d.next_request().unwrap(), Some(b));
        assert_eq!(d.next_request().unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut hdr = vec![MAGIC, VERSION, KIND_REQ_EVAL, 0];
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&hdr);
        let err = d.next_request().unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
        // Poisoned: the error is sticky.
        assert_eq!(d.next_request().unwrap_err(), err);
    }

    #[test]
    fn bad_magic_version_kind_reserved_fail_fast() {
        let mut d = FrameDecoder::new();
        d.feed(b"op = eval\n");
        assert!(matches!(d.next_request().unwrap_err(), FrameError::BadMagic(b'o')));

        let mut d = FrameDecoder::new();
        d.feed(&[MAGIC, 9]);
        assert!(matches!(d.next_request().unwrap_err(), FrameError::BadVersion(9)));

        let mut d = FrameDecoder::new();
        d.feed(&[MAGIC, VERSION, 0x7f, 0, 0, 0, 0, 0]);
        assert!(matches!(d.next_request().unwrap_err(), FrameError::UnknownKind(0x7f)));

        let mut d = FrameDecoder::new();
        d.feed(&[MAGIC, VERSION, KIND_REQ_STATS, 1]);
        assert!(matches!(d.next_request().unwrap_err(), FrameError::BadReserved(1)));
    }

    #[test]
    fn truncated_payload_fields_error_cleanly() {
        // A well-formed header announcing 4 payload bytes, but the eval
        // payload needs more than that for its fields.
        let mut bytes = vec![MAGIC, VERSION, KIND_REQ_EVAL, 0];
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0]); // workload len 0, then nothing
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert!(matches!(d.next_request().unwrap_err(), FrameError::Truncated(_)));
    }

    #[test]
    fn values_count_is_bounded_by_payload() {
        // Claim 2^28 values in a tiny payload: must error, not allocate.
        let mut p = Vec::new();
        put_string(&mut p, "w");
        p.extend_from_slice(&7u64.to_le_bytes());
        p.extend_from_slice(&(1u32 << 28).to_le_bytes());
        let mut bytes = vec![MAGIC, VERSION, KIND_REQ_EVAL, 0];
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&p);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let err = d.next_request().unwrap_err();
        assert!(
            matches!(err, FrameError::BadField("values.len") | FrameError::Truncated(_)),
            "{err}"
        );
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut bytes = vec![MAGIC, VERSION, KIND_REQ_STATS, 0];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(b"xyz");
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_request().unwrap_err(), FrameError::TrailingBytes(3));
    }

    #[test]
    fn telemetry_response_round_trips() {
        let stats = crate::introspect::ServerStats {
            uptime_ms: 5000,
            requests: 123456789,
            shed: 7,
            ..crate::introspect::ServerStats::default()
        };
        let mut d = FrameDecoder::new();
        d.feed(&encode_response(&Response::Telemetry(Box::new(stats.clone()))));
        assert_eq!(d.next_response().unwrap(), Some(Response::Telemetry(Box::new(stats))));
        assert_eq!(d.pending_bytes(), 0);
    }

    #[test]
    fn telemetry_pair_count_is_bounded() {
        let mut p = Vec::new();
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = vec![MAGIC, VERSION, KIND_RESP_TELEMETRY, 0];
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&p);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_response().unwrap_err(), FrameError::BadField("telemetry.len"));
    }

    #[test]
    fn requests_do_not_decode_as_responses() {
        let mut d = FrameDecoder::new();
        d.feed(&encode_request(&Request::Stats));
        assert!(matches!(d.next_response().unwrap_err(), FrameError::UnknownKind(KIND_REQ_STATS)));
    }
}
