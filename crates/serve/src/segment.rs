//! The cold tier: a crash-safe, append-only, on-disk segment store.
//!
//! One segment file holds a fixed 8-byte header followed by
//! length-prefixed records:
//!
//! ```text
//! file header   b"M7SEG" ++ [version u8 = 1] ++ [0, 0]
//! record        [len u32le] [key u64le] [payload; len] [crc u32le]
//! ```
//!
//! The CRC (IEEE 802.3 CRC-32) covers the record's `len`, `key`, and
//! payload bytes, so a record is accepted only when every byte of it is
//! intact. The file is written strictly append-only; an entry is
//! **acknowledged** once [`SegmentStore::append`] returns, at which
//! point its bytes have been handed to the OS (call
//! [`SegmentStore::sync`] to force them to media).
//!
//! # Recovery rules
//!
//! On [`SegmentStore::open`] the whole file is scanned from the header:
//!
//! 1. each record's length is bounds-checked, then its CRC verified;
//! 2. the scan stops at end-of-file, at a partial record, or at the
//!    first CRC mismatch — everything from that point on is the **torn
//!    tail** (a crash mid-append, or corruption);
//! 3. the torn tail is physically truncated away, so the file is again
//!    a valid prefix of an append history and the next append cannot
//!    interleave with garbage;
//! 4. for duplicate keys the *last* intact record wins (append order is
//!    update order).
//!
//! The property suite in `tests/serve_recovery_props.rs` drives this
//! with crashes at arbitrary byte offsets: every record wholly before
//! the cut survives, nothing after it is ever served.

use m7_trace::{MetricClass, SpanSite, TraceCounter};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Mutex;

static RECOVERY_SPAN: SpanSite = SpanSite::new("serve.segment.recover", MetricClass::Diagnostic);
static G_RECOVERED: TraceCounter =
    TraceCounter::new("serve.segment.recovered_entries", MetricClass::Diagnostic);
static G_TORN: TraceCounter =
    TraceCounter::new("serve.segment.torn_bytes", MetricClass::Diagnostic);
static G_COMPACTIONS: TraceCounter =
    TraceCounter::new("serve.segment.compactions", MetricClass::Diagnostic);

/// File header: magic, layout version, two reserved zero bytes.
pub const FILE_HEADER: [u8; 8] = *b"M7SEG\x01\x00\x00";

/// Fixed bytes before each record's payload (`len` + `key`).
pub const RECORD_HEADER_BYTES: u64 = 12;

/// Bytes after the payload (the CRC).
pub const RECORD_TRAILER_BYTES: u64 = 4;

/// Hard bound on one record's payload; longer announced lengths are
/// treated as corruption.
pub const MAX_RECORD_PAYLOAD: usize = 1024 * 1024;

/// The default segment file name inside a cache directory.
pub const SEGMENT_FILE: &str = "segment.m7seg";

/// IEEE 802.3 CRC-32 (the zlib/PNG polynomial), bitwise — fast enough
/// for cache records, and dependency-free.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// How values cross the memory/disk boundary. Implementations must
/// round-trip: `decode(encode(v)) == Some(v)`.
pub trait DiskCodec: Sized {
    /// Appends the value's canonical byte form.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reconstructs a value, or `None` if the bytes are not a valid
    /// encoding (a decode failure is treated like a CRC failure: the
    /// record is not served).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl DiskCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

/// `Ok(cost)` ⇒ tag 0 + 8 bits bytes; `Err(message)` ⇒ tag 1 + UTF-8.
impl DiskCodec for Result<f64, String> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Err(msg) => {
                out.push(1);
                out.extend_from_slice(msg.as_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            0 => f64::decode(rest).map(Ok),
            1 => String::from_utf8(rest.to_vec()).ok().map(Err),
            _ => None,
        }
    }
}

/// Tuning for the on-disk tier.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentConfig {
    /// Directory holding the segment file (created if absent).
    pub dir: PathBuf,
    /// Compaction triggers only once the file exceeds this many bytes…
    pub compact_min_bytes: u64,
    /// …and dead (overwritten) record bytes exceed this fraction of the
    /// file.
    pub compact_dead_ratio: f64,
    /// Fsync after every append. Off by default: an acked append has
    /// reached the OS, and the recovery path tolerates losing a clean
    /// suffix; turn it on when the entry must survive power loss.
    pub fsync_each_append: bool,
}

impl SegmentConfig {
    /// Defaults for `dir`: compact past 4 MiB at ≥ 50% dead bytes, no
    /// per-append fsync.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            compact_min_bytes: 4 * 1024 * 1024,
            compact_dead_ratio: 0.5,
            fsync_each_append: false,
        }
    }
}

/// What [`SegmentStore::open`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Intact records replayed (including superseded duplicates).
    pub records: usize,
    /// Distinct keys live after replay (last record per key wins).
    pub live_entries: usize,
    /// Bytes truncated from the torn tail (0 on a clean file).
    pub torn_bytes: u64,
    /// File bytes scanned, header included.
    pub scanned_bytes: u64,
}

struct SegState {
    file: File,
    /// `key → (payload offset, payload length)` for the last intact
    /// record of each key.
    index: HashMap<u64, (u64, u32)>,
    /// Append position == current file length.
    tail: u64,
    /// Payload+framing bytes owned by superseded records.
    dead_bytes: u64,
}

/// A single-file append-only store: `key → latest payload`.
///
/// All operations take `&self`; the file and its index share one lock,
/// so appends are atomic with respect to reads.
pub struct SegmentStore {
    state: Mutex<SegState>,
    path: PathBuf,
    config: SegmentConfig,
    recovery: RecoveryReport,
    compactions: m7_trace::Counter,
}

fn record_bytes(payload_len: u64) -> u64 {
    RECORD_HEADER_BYTES + payload_len + RECORD_TRAILER_BYTES
}

impl SegmentStore {
    /// Opens (or creates) `dir/segment.m7seg`, replaying every intact
    /// record and truncating the torn tail.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if the file exists but does not
    /// start with the segment magic (it is some other file — refuse to
    /// clobber it).
    pub fn open(config: SegmentConfig) -> io::Result<Self> {
        let _span = RECOVERY_SPAN.enter();
        std::fs::create_dir_all(&config.dir)?;
        let path = config.dir.join(SEGMENT_FILE);
        // Never truncate here: recovery below decides what survives.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;

        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut recovery = RecoveryReport { scanned_bytes: raw.len() as u64, ..Default::default() };

        let mut index: HashMap<u64, (u64, u32)> = HashMap::new();
        let mut dead_bytes = 0u64;
        let good_end = if raw.is_empty() {
            file.write_all(&FILE_HEADER)?;
            file.flush()?;
            FILE_HEADER.len() as u64
        } else if raw.len() < FILE_HEADER.len() && raw == FILE_HEADER[..raw.len()] {
            // A crash tore the header itself: nothing was ever acked, so
            // rewrite it and start empty.
            recovery.torn_bytes = raw.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&FILE_HEADER)?;
            file.flush()?;
            FILE_HEADER.len() as u64
        } else if raw.len() < FILE_HEADER.len() || raw[..5] != FILE_HEADER[..5] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not an m7 segment file", path.display()),
            ));
        } else if raw[5] != FILE_HEADER[5] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("segment layout version {} is not supported", raw[5]),
            ));
        } else {
            let mut pos = FILE_HEADER.len();
            while let Some((key, payload_off, payload_len, next)) = Self::scan_record(&raw, pos) {
                if let Some((_, old_len)) = index.insert(key, (payload_off as u64, payload_len)) {
                    dead_bytes += record_bytes(u64::from(old_len));
                }
                recovery.records += 1;
                pos = next;
            }
            recovery.torn_bytes = (raw.len() - pos) as u64;
            pos as u64
        };
        recovery.live_entries = index.len();
        if recovery.torn_bytes > 0 {
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::Start(good_end))?;

        G_RECOVERED.add(recovery.records as u64);
        G_TORN.add(recovery.torn_bytes);

        Ok(Self {
            state: Mutex::new(SegState { file, index, tail: good_end, dead_bytes }),
            path,
            config,
            recovery,
            compactions: m7_trace::Counter::new(),
        })
    }

    /// Validates the record at `pos`; returns
    /// `(key, payload offset, payload len, next record offset)` or
    /// `None` where the intact prefix ends.
    fn scan_record(raw: &[u8], pos: usize) -> Option<(u64, usize, u32, usize)> {
        let header = raw.get(pos..pos + RECORD_HEADER_BYTES as usize)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if len as usize > MAX_RECORD_PAYLOAD {
            return None;
        }
        let key = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let payload_off = pos + RECORD_HEADER_BYTES as usize;
        let crc_off = payload_off + len as usize;
        let stored_crc = u32::from_le_bytes(raw.get(crc_off..crc_off + 4)?.try_into().unwrap());
        if crc32(&raw[pos..crc_off]) != stored_crc {
            return None;
        }
        Some((key, payload_off, len, crc_off + 4))
    }

    /// What [`SegmentStore::open`] replayed and repaired.
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Appends `key → payload`. The entry is acknowledged — and will
    /// survive reopen — once this returns.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for payloads over [`MAX_RECORD_PAYLOAD`];
    /// otherwise the underlying I/O error (the in-memory index is not
    /// updated on failure, so a failed append is invisible).
    pub fn append(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds the record bound", payload.len()),
            ));
        }
        let mut rec = Vec::with_capacity(
            (RECORD_HEADER_BYTES + RECORD_TRAILER_BYTES) as usize + payload.len(),
        );
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());

        let mut s = self.state.lock().expect("segment state poisoned");
        let tail = s.tail;
        s.file.seek(SeekFrom::Start(tail))?;
        s.file.write_all(&rec)?;
        s.file.flush()?;
        if self.config.fsync_each_append {
            s.file.sync_data()?;
        }
        let payload_off = s.tail + RECORD_HEADER_BYTES;
        if let Some((_, old_len)) = s.index.insert(key, (payload_off, payload.len() as u32)) {
            s.dead_bytes += record_bytes(u64::from(old_len));
        }
        s.tail += rec.len() as u64;
        drop(s);
        self.maybe_compact().map(|_| ())
    }

    /// Reads the latest payload for `key`, re-verifying its CRC.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; a CRC mismatch on read comes back as
    /// `InvalidData` (the record is never served corrupt).
    pub fn get(&self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let mut s = self.state.lock().expect("segment state poisoned");
        let Some(&(payload_off, len)) = s.index.get(&key) else {
            return Ok(None);
        };
        let rec_off = payload_off - RECORD_HEADER_BYTES;
        let total = record_bytes(u64::from(len)) as usize;
        let mut rec = vec![0u8; total];
        s.file.seek(SeekFrom::Start(rec_off))?;
        s.file.read_exact(&mut rec)?;
        // Restore the append position invariant for the next write.
        let tail = s.tail;
        s.file.seek(SeekFrom::Start(tail))?;
        drop(s);
        let crc_off = total - RECORD_TRAILER_BYTES as usize;
        let stored = u32::from_le_bytes(rec[crc_off..].try_into().unwrap());
        if crc32(&rec[..crc_off]) != stored {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "record failed CRC on read"));
        }
        Ok(Some(rec[RECORD_HEADER_BYTES as usize..crc_off].to_vec()))
    }

    /// Distinct live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("segment state poisoned").index.len()
    }

    /// `true` when no key is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current file size in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        self.state.lock().expect("segment state poisoned").tail
    }

    /// Compactions performed over this store's lifetime.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions.get()
    }

    /// Forces buffered appends to media (fsync).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn sync(&self) -> io::Result<()> {
        self.state.lock().expect("segment state poisoned").file.sync_data()
    }

    /// Rewrites the file to live records only, if the dead-byte ratio
    /// warrants it. Returns `true` when a compaction ran.
    ///
    /// The new file is written beside the old one and atomically renamed
    /// over it, so a crash mid-compaction leaves either the old or the
    /// new file intact — never a mixture.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; on failure the old file remains
    /// authoritative.
    pub fn maybe_compact(&self) -> io::Result<bool> {
        let mut s = self.state.lock().expect("segment state poisoned");
        if s.tail < self.config.compact_min_bytes {
            return Ok(false);
        }
        let dead_ratio = s.dead_bytes as f64 / s.tail.max(1) as f64;
        if dead_ratio < self.config.compact_dead_ratio {
            return Ok(false);
        }
        self.compact_locked(&mut s)?;
        G_COMPACTIONS.incr();
        self.compactions.incr();
        Ok(true)
    }

    /// Unconditional compaction (tests and explicit maintenance).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn compact(&self) -> io::Result<()> {
        let mut s = self.state.lock().expect("segment state poisoned");
        self.compact_locked(&mut s)?;
        G_COMPACTIONS.incr();
        self.compactions.incr();
        Ok(())
    }

    fn compact_locked(&self, s: &mut SegState) -> io::Result<()> {
        // Stable order: ascending original offset, i.e. append order.
        let mut live: Vec<(u64, u64, u32)> =
            s.index.iter().map(|(&k, &(off, len))| (off, k, len)).collect();
        live.sort_unstable();

        let tmp_path = self.path.with_extension("compact");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&FILE_HEADER)?;
        let mut new_index: HashMap<u64, (u64, u32)> = HashMap::with_capacity(live.len());
        let mut new_tail = FILE_HEADER.len() as u64;
        for (payload_off, key, len) in live {
            let mut payload = vec![0u8; len as usize];
            s.file.seek(SeekFrom::Start(payload_off))?;
            s.file.read_exact(&mut payload)?;
            let mut rec = Vec::with_capacity(record_bytes(u64::from(len)) as usize);
            rec.extend_from_slice(&len.to_le_bytes());
            rec.extend_from_slice(&key.to_le_bytes());
            rec.extend_from_slice(&payload);
            let crc = crc32(&rec);
            rec.extend_from_slice(&crc.to_le_bytes());
            tmp.write_all(&rec)?;
            new_index.insert(key, (new_tail + RECORD_HEADER_BYTES, len));
            new_tail += rec.len() as u64;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;

        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::Start(new_tail))?;
        s.file = file;
        s.index = new_index;
        s.tail = new_tail;
        s.dead_bytes = 0;
        Ok(())
    }
}

impl core::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("path", &self.path)
            .field("live_entries", &self.len())
            .field("file_bytes", &self.file_bytes())
            .field("recovery", &self.recovery)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "m7seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE reference vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn codec_round_trips() {
        for v in [0.0f64, -0.0, 1.0 / 3.0, f64::MAX] {
            let mut b = Vec::new();
            v.encode(&mut b);
            assert_eq!(f64::decode(&b).unwrap().to_bits(), v.to_bits());
        }
        for r in [Ok(2.5f64), Err("bad tier".to_string())] {
            let mut b = Vec::new();
            r.encode(&mut b);
            assert_eq!(<Result<f64, String>>::decode(&b), Some(r));
        }
        assert_eq!(f64::decode(&[0; 7]), None);
        assert_eq!(<Result<f64, String>>::decode(&[]), None);
        assert_eq!(<Result<f64, String>>::decode(&[9, 0]), None);
    }

    #[test]
    fn append_get_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            store.append(1, b"one").unwrap();
            store.append(2, b"two").unwrap();
            store.append(1, b"uno").unwrap(); // update: last record wins
            assert_eq!(store.get(1).unwrap().as_deref(), Some(&b"uno"[..]));
            assert_eq!(store.get(2).unwrap().as_deref(), Some(&b"two"[..]));
            assert_eq!(store.get(3).unwrap(), None);
            assert_eq!(store.len(), 2);
        }
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        let rec = store.recovery();
        assert_eq!((rec.records, rec.live_entries, rec.torn_bytes), (3, 2, 0));
        assert_eq!(store.get(1).unwrap().as_deref(), Some(&b"uno"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = temp_dir("torn");
        let path = dir.join(SEGMENT_FILE);
        let good_len = {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            store.append(10, b"alpha").unwrap();
            let keep = store.file_bytes();
            store.append(11, b"beta").unwrap();
            keep
        };
        // Crash: the second record is half-written.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(good_len + 3).unwrap();
        drop(file);

        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        let rec = store.recovery();
        assert_eq!((rec.records, rec.live_entries, rec.torn_bytes), (1, 1, 3));
        assert_eq!(store.get(10).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.get(11).unwrap(), None);
        assert_eq!(store.file_bytes(), good_len, "tail physically truncated");
        // Appending after recovery works and survives another reopen.
        store.append(12, b"gamma").unwrap();
        drop(store);
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        assert_eq!(store.get(12).unwrap().as_deref(), Some(&b"gamma"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_damage() {
        let dir = temp_dir("corrupt");
        let path = dir.join(SEGMENT_FILE);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            store.append(1, b"first").unwrap();
            store.append(2, b"second").unwrap();
        }
        // Flip one payload byte of the second record.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 6] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        assert_eq!(store.recovery().records, 1, "replay stops at the damaged record");
        assert!(store.recovery().torn_bytes > 0);
        assert_eq!(store.get(1).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(store.get(2).unwrap(), None, "the corrupt record is never served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_are_refused_not_clobbered() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SEGMENT_FILE), b"definitely not a segment").unwrap();
        let err = SegmentStore::open(SegmentConfig::new(&dir)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_dead_bytes_and_preserves_live_values() {
        let dir = temp_dir("compact");
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        for round in 0..20u8 {
            for key in 0..8u64 {
                store.append(key, &[round; 16]).unwrap();
            }
        }
        let before = store.file_bytes();
        store.compact().unwrap();
        assert!(store.file_bytes() < before / 4, "{} -> {}", before, store.file_bytes());
        assert_eq!(store.len(), 8);
        for key in 0..8u64 {
            assert_eq!(store.get(key).unwrap().as_deref(), Some(&[19u8; 16][..]));
        }
        // Compacted file replays cleanly.
        drop(store);
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        assert_eq!(store.recovery().live_entries, 8);
        assert_eq!(store.recovery().torn_bytes, 0);
        for key in 0..8u64 {
            assert_eq!(store.get(key).unwrap().as_deref(), Some(&[19u8; 16][..]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_compaction_trips_on_dead_ratio() {
        let dir = temp_dir("auto-compact");
        let mut config = SegmentConfig::new(&dir);
        config.compact_min_bytes = 256;
        config.compact_dead_ratio = 0.5;
        let store = SegmentStore::open(config).unwrap();
        for round in 0..64u8 {
            store.append(1, &[round; 32]).unwrap();
        }
        assert!(store.compactions() > 0, "overwrites of one key must trip compaction");
        assert_eq!(store.get(1).unwrap().as_deref(), Some(&[63u8; 32][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let dir = temp_dir("oversize");
        let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
        let big = vec![0u8; MAX_RECORD_PAYLOAD + 1];
        assert_eq!(store.append(1, &big).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert_eq!(store.len(), 0, "failed append leaves no trace");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
