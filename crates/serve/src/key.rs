//! Deterministic content-addressed keys for evaluation requests.
//!
//! A [`CacheKey`] is a 64-bit FNV-1a hash over a *canonicalized* request:
//! every field is written in a fixed order, floats are hashed via
//! [`f64::to_bits`] (so the key is bit-exact, never rounded), and strings
//! are length-prefixed so `("ab", "c")` and `("a", "bc")` cannot collide.
//! Two requests hash equal exactly when their canonical field sequences
//! are byte-identical — the key is a pure function of the request, never
//! of thread count, insertion order, or wall clock.

/// A content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

impl core::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a (64-bit) hasher with typed, canonical writes.
///
/// # Examples
///
/// ```
/// use m7_serve::key::KeyHasher;
///
/// let mut a = KeyHasher::new();
/// a.write_f64(1.5);
/// a.write_u64(7);
/// let mut b = KeyHasher::new();
/// b.write_f64(1.5);
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: Self::OFFSET }
    }

    /// Hashes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Hashes a `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `f64` via its exact bit pattern ([`f64::to_bits`]).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hashes a string, length-prefixed so field boundaries are
    /// unambiguous.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Hashes a slice of floats, length-prefixed, each via `to_bits`.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u64(values.len() as u64);
        for &v in values {
            self.write_f64(v);
        }
    }

    /// Finalizes the key.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        CacheKey(self.state)
    }
}

/// Derives a namespace tag for a family of requests (e.g. one objective
/// function at one root seed), so distinct evaluators never share keys.
#[must_use]
pub fn namespace(tag: &str, seed: u64) -> u64 {
    let mut h = KeyHasher::new();
    h.write_str(tag);
    h.write_u64(seed);
    h.finish().0
}

/// One evaluation request: a workload tag, the design's concrete level
/// values, and the simulation seed.
///
/// The canonical field order is `workload`, `seed`, `values` — fixed
/// forever, because the hash of this sequence *is* the cache address.
///
/// # Examples
///
/// ```
/// use m7_serve::key::EvalRequest;
///
/// let a = EvalRequest::new("mission", vec![1.0, 20.0], 42);
/// let b = EvalRequest::new("mission", vec![1.0, 20.0], 42);
/// assert_eq!(a.cache_key(0), b.cache_key(0));
/// // Any single-field change moves the key.
/// let c = EvalRequest::new("mission", vec![1.0, 20.0], 43);
/// assert_ne!(a.cache_key(0), c.cache_key(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Which evaluator the request addresses (e.g. `mission`).
    pub workload: String,
    /// Concrete design values, in dimension order.
    pub values: Vec<f64>,
    /// Simulation seed.
    pub seed: u64,
}

impl EvalRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(workload: impl Into<String>, values: Vec<f64>, seed: u64) -> Self {
        Self { workload: workload.into(), values, seed }
    }

    /// The content-addressed key of this request under `namespace`.
    #[must_use]
    pub fn cache_key(&self, namespace: u64) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_u64(namespace);
        h.write_str(&self.workload);
        h.write_u64(self.seed);
        h.write_f64_slice(&self.values);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_requests_hash_equal() {
        let a = EvalRequest::new("mission", vec![0.0, -1.5, 3.25], 7);
        let b = EvalRequest::new("mission", vec![0.0, -1.5, 3.25], 7);
        assert_eq!(a.cache_key(99), b.cache_key(99));
    }

    #[test]
    fn each_field_perturbation_changes_the_key() {
        let base = EvalRequest::new("mission", vec![1.0, 2.0], 7);
        let k = base.cache_key(0);
        assert_ne!(k, EvalRequest::new("missioN", vec![1.0, 2.0], 7).cache_key(0));
        assert_ne!(k, EvalRequest::new("mission", vec![1.0, 2.5], 7).cache_key(0));
        assert_ne!(k, EvalRequest::new("mission", vec![1.0, 2.0], 8).cache_key(0));
        assert_ne!(k, base.cache_key(1));
    }

    #[test]
    fn float_keys_are_bit_exact() {
        // -0.0 == 0.0 numerically but their bit patterns differ; the key
        // is content-addressed on bits, so they are distinct requests.
        let pos = EvalRequest::new("w", vec![0.0], 0).cache_key(0);
        let neg = EvalRequest::new("w", vec![-0.0], 0).cache_key(0);
        assert_ne!(pos, neg);
    }

    #[test]
    fn length_prefix_blocks_field_smearing() {
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = KeyHasher::new();
        c.write_f64_slice(&[1.0]);
        c.write_f64_slice(&[]);
        let mut d = KeyHasher::new();
        d.write_f64_slice(&[]);
        d.write_f64_slice(&[1.0]);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn namespace_separates_evaluators() {
        assert_ne!(namespace("e9-mission", 42), namespace("e9-mission", 43));
        assert_ne!(namespace("e9-mission", 42), namespace("rover", 42));
    }

    #[test]
    fn display_is_stable_hex() {
        assert_eq!(CacheKey(0xdead_beef).to_string(), "00000000deadbeef");
    }
}
