//! Message-type contracts for graph ports.
//!
//! The runtime moves *modeled* messages (a birth timestamp plus a byte
//! count), but the ports they flow through are typed: a source declares
//! what it produces, a server declares what it consumes and emits, and
//! [`GraphBuilder::connect`](crate::GraphBuilder::connect) refuses an
//! edge whose endpoint types disagree — the classic "IMU samples wired
//! into the image pre-processor" mistake becomes a build-time
//! [`FlowError::TypeMismatch`](crate::FlowError::TypeMismatch) instead
//! of a silently wrong simulation.

use std::any::TypeId;

/// A message type carried on a graph edge.
///
/// Implement this marker trait for each payload class in a workload.
/// The type itself is never instantiated at runtime — it only names and
/// type-checks the port.
///
/// # Examples
///
/// ```
/// use m7_flow::MessageType;
///
/// struct LidarSweep;
/// impl MessageType for LidarSweep {
///     const NAME: &'static str = "lidar_sweep";
/// }
/// ```
pub trait MessageType: 'static {
    /// Human-readable type name used in error messages and reports.
    const NAME: &'static str;
}

/// The resolved type of a node port: a [`MessageType`]'s identity plus
/// its display name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortType {
    id: TypeId,
    name: &'static str,
}

impl PortType {
    /// The port type of a [`MessageType`].
    #[must_use]
    pub fn of<T: MessageType>() -> Self {
        Self { id: TypeId::of::<T>(), name: T::NAME }
    }

    /// Display name of the message type.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether two ports carry the same message type.
    #[must_use]
    pub fn matches(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl core::fmt::Display for PortType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct A;
    impl MessageType for A {
        const NAME: &'static str = "a";
    }
    struct B;
    impl MessageType for B {
        const NAME: &'static str = "b";
    }

    #[test]
    fn identity_is_the_rust_type_not_the_name() {
        struct AliasOfA;
        impl MessageType for AliasOfA {
            const NAME: &'static str = "a"; // same display name, different type
        }
        assert!(PortType::of::<A>().matches(&PortType::of::<A>()));
        assert!(!PortType::of::<A>().matches(&PortType::of::<B>()));
        assert!(!PortType::of::<A>().matches(&PortType::of::<AliasOfA>()));
        assert_eq!(PortType::of::<A>().name(), PortType::of::<AliasOfA>().name());
    }
}
