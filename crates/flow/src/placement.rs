//! Per-node placement: which silicon a node runs on, at what DVFS
//! point, and on which shared memory bus.
//!
//! A [`Placement`] binds a graph node to an `m7-arch` [`Platform`] —
//! either a preset or a platform parsed from the spec DSL — plus an
//! optional [`OperatingPoint`] (DVFS) and an optional *site*. Nodes
//! that share a site contend for that site's bus: at seal time the
//! graph computes each node's sustained memory demand and stretches
//! its service time by the max-min-fair
//! [`SharedBus`](m7_arch::contention::SharedBus) slowdown factor.

use m7_arch::dvfs::{scaled_platform, OperatingPoint};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::spec::{parse_platform, ParseSpecError};

/// Where (and how fast) a node runs.
///
/// # Examples
///
/// ```
/// use m7_arch::dvfs::OperatingPoint;
/// use m7_arch::platform::PlatformKind;
/// use m7_flow::Placement;
///
/// let p = Placement::preset(PlatformKind::Gpu)
///     .with_point(OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 })
///     .at_site("soc0");
/// assert_eq!(p.site(), Some("soc0"));
/// assert!(p.effective_platform().name().contains("50%"));
/// ```
#[derive(Debug, Clone)]
pub struct Placement {
    platform: Platform,
    point: OperatingPoint,
    site: Option<String>,
}

impl Placement {
    /// Places on an explicit platform at the nominal operating point.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self { platform, point: OperatingPoint::NOMINAL, site: None }
    }

    /// Places on a built-in platform preset.
    #[must_use]
    pub fn preset(kind: PlatformKind) -> Self {
        Self::new(Platform::preset(kind))
    }

    /// Places on a platform described in the `m7-arch` spec DSL.
    ///
    /// # Errors
    ///
    /// Returns the DSL parse error verbatim.
    pub fn from_spec(text: &str) -> Result<Self, ParseSpecError> {
        Ok(Self::new(parse_platform(text)?))
    }

    /// Sets the DVFS operating point.
    #[must_use]
    pub fn with_point(mut self, point: OperatingPoint) -> Self {
        self.point = point;
        self
    }

    /// Assigns the node to a shared bus site declared via
    /// [`GraphBuilder::shared_site`](crate::GraphBuilder::shared_site).
    #[must_use]
    pub fn at_site(mut self, site: impl Into<String>) -> Self {
        self.site = Some(site.into());
        self
    }

    /// The nominal platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The DVFS operating point.
    #[must_use]
    pub fn point(&self) -> OperatingPoint {
        self.point
    }

    /// The shared-site name, if any.
    #[must_use]
    pub fn site(&self) -> Option<&str> {
        self.site.as_deref()
    }

    /// The platform with the operating point applied (frequency scales
    /// compute and the serial rate; `f·V²` scales active power;
    /// bandwidth is untouched).
    #[must_use]
    pub fn effective_platform(&self) -> Platform {
        if self.point == OperatingPoint::NOMINAL {
            self.platform.clone()
        } else {
            scaled_platform(&self.platform, self.point)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_arch::workload::KernelProfile;

    #[test]
    fn preset_at_nominal_is_the_preset() {
        let p = Placement::preset(PlatformKind::CpuSimd);
        let k = KernelProfile::gemm(128);
        assert_eq!(
            p.effective_platform().estimate(&k).latency,
            Platform::preset(PlatformKind::CpuSimd).estimate(&k).latency
        );
        assert_eq!(p.site(), None);
    }

    #[test]
    fn downclocked_placement_is_slower() {
        let k = KernelProfile::gemm(256);
        let nominal = Placement::preset(PlatformKind::Gpu);
        let slow = Placement::preset(PlatformKind::Gpu)
            .with_point(OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 });
        assert!(
            slow.effective_platform().estimate(&k).latency
                > nominal.effective_platform().estimate(&k).latency
        );
    }

    #[test]
    fn spec_dsl_placements_parse() {
        let p = Placement::from_spec("kind = asic\nname = planner-asic\npeak_tops = 4.0")
            .expect("valid spec");
        assert_eq!(p.platform().name(), "planner-asic");
        assert!(Placement::from_spec("kind = warp-drive").is_err());
    }
}
