//! Graph construction: typed nodes, bounded edges, placement, and the
//! seal step that turns declarations into a runnable [`Graph`].

use crate::message::{MessageType, PortType};
use crate::placement::Placement;
use crate::policy::QueuePolicy;
use m7_arch::spec::ParseSpecError;
use m7_arch::workload::KernelProfile;
use m7_par::ParConfig;
use m7_units::{Bytes, BytesPerSecond, Hertz, Seconds};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to a declared node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Handle to a declared edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

/// How long one service invocation takes on the node's placement.
#[derive(Debug, Clone)]
pub enum Service {
    /// A fixed modeled latency, independent of placement.
    Fixed(Seconds),
    /// A kernel profile costed on the node's (DVFS-scaled) platform via
    /// the roofline estimator. Requires a [`Placement`].
    Kernel(KernelProfile),
}

impl Service {
    /// A fixed modeled service time.
    #[must_use]
    pub fn fixed(latency: Seconds) -> Self {
        Self::Fixed(latency)
    }

    /// A kernel-profile service costed on the node's placement.
    #[must_use]
    pub fn kernel(profile: KernelProfile) -> Self {
        Self::Kernel(profile)
    }
}

/// Declaration of a source node: fires at a fixed rate, emitting one
/// message of `payload` bytes per firing.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    pub(crate) rate: Hertz,
    pub(crate) payload: Bytes,
}

impl SourceSpec {
    /// A source firing at `rate` with `payload` bytes per message.
    #[must_use]
    pub fn new(rate: Hertz, payload: Bytes) -> Self {
        Self { rate, payload }
    }
}

/// Declaration of a server node: a single-server queueing station with
/// a service model, an output payload, and an optional deadline.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    pub(crate) service: Service,
    pub(crate) output: Bytes,
    pub(crate) speedup: f64,
    pub(crate) deadline: Option<Seconds>,
}

impl ServerSpec {
    /// A server with the given service model, a 64-byte output payload,
    /// no speedup, and no deadline.
    #[must_use]
    pub fn new(service: Service) -> Self {
        Self { service, output: Bytes::new(64.0), speedup: 1.0, deadline: None }
    }

    /// Sets the output message payload in bytes.
    #[must_use]
    pub fn output_bytes(mut self, output: Bytes) -> Self {
        self.output = output;
        self
    }

    /// Applies an idealized accelerator speedup to the service time.
    #[must_use]
    pub fn speedup(mut self, factor: f64) -> Self {
        self.speedup = factor;
        self
    }

    /// Declares a completion deadline, measured from the triggering
    /// message's birth to service completion.
    #[must_use]
    pub fn deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Declaration of a sink node: records every received message.
#[derive(Debug, Clone, Default)]
pub struct SinkSpec {
    pub(crate) deadline: Option<Seconds>,
}

impl SinkSpec {
    /// A sink with no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an end-to-end deadline, measured from the message's
    /// birth at its source to arrival at this sink.
    #[must_use]
    pub fn deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// When a lossy edge draws its RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossSeed {
    /// Seeded from the run seed and the edge's index via
    /// `m7_par::derive_seed` — different edges get independent streams.
    Derived,
    /// Seeded from this exact value, ignoring the run seed (used by the
    /// legacy pipeline compatibility layer to reproduce its historical
    /// stream bit for bit).
    Fixed(u64),
}

/// Probabilistic in-transport message loss on an edge.
///
/// The loss probability may vary with virtual time (fault windows); the
/// RNG is only consulted when the probability is strictly positive, so
/// a schedule that is quiet at a message's timestamp consumes no
/// randomness.
#[derive(Clone)]
pub struct LossModel {
    pub(crate) rate: Arc<dyn Fn(Seconds) -> f64 + Send + Sync>,
    pub(crate) seed: LossSeed,
}

impl LossModel {
    /// A constant loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1)`.
    #[must_use]
    pub fn constant(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0, 1)");
        Self::from_fn(move |_| rate)
    }

    /// A time-varying loss probability.
    #[must_use]
    pub fn from_fn(rate: impl Fn(Seconds) -> f64 + Send + Sync + 'static) -> Self {
        Self { rate: Arc::new(rate), seed: LossSeed::Derived }
    }

    /// Overrides the RNG seeding strategy.
    #[must_use]
    pub fn with_seed(mut self, seed: LossSeed) -> Self {
        self.seed = seed;
        self
    }
}

impl core::fmt::Debug for LossModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LossModel").field("seed", &self.seed).finish_non_exhaustive()
    }
}

/// What kind of coupling an edge provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EdgeKind {
    /// A bounded queue feeding a server: every delivered message is
    /// eventually served (or dropped by the policy).
    Queue { capacity: usize, policy: QueuePolicy },
    /// A direct wire into a sink: delivery is recording.
    Wire,
    /// A latest-value register on a server: the consumer reads the
    /// freshest sample at each service start; older samples are
    /// superseded, never queued.
    Sampled,
}

/// Declaration of an edge: coupling kind, transport latency, loss.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    pub(crate) kind: EdgeKind,
    pub(crate) latency: Seconds,
    pub(crate) loss: Option<LossModel>,
}

impl EdgeSpec {
    /// A bounded queue of `capacity` messages with the
    /// [`QueuePolicy::DropNewest`] policy. Only valid into a server.
    #[must_use]
    pub fn queue(capacity: usize) -> Self {
        Self {
            kind: EdgeKind::Queue { capacity, policy: QueuePolicy::DropNewest },
            latency: Seconds::ZERO,
            loss: None,
        }
    }

    /// A direct wire. Only valid into a sink.
    #[must_use]
    pub fn wire() -> Self {
        Self { kind: EdgeKind::Wire, latency: Seconds::ZERO, loss: None }
    }

    /// A latest-value sampled coupling. Only valid into a server, which
    /// reads the freshest sample at each service start. Sampled edges
    /// are exempt from the acyclicity check, so state can feed back
    /// (e.g. the planner's last trajectory sampled by the perception
    /// front end).
    #[must_use]
    pub fn sampled() -> Self {
        Self { kind: EdgeKind::Sampled, latency: Seconds::ZERO, loss: None }
    }

    /// Sets the queue-overflow policy (queues only; ignored otherwise).
    #[must_use]
    pub fn policy(mut self, policy: QueuePolicy) -> Self {
        if let EdgeKind::Queue { policy: p, .. } = &mut self.kind {
            *p = policy;
        }
        self
    }

    /// Adds transport latency: a message sent at `t` arrives at
    /// `t + latency` (its logical timestamp advances; queue occupancy
    /// is still charged at send time).
    #[must_use]
    pub fn latency(mut self, latency: Seconds) -> Self {
        self.latency = latency;
        self
    }

    /// Adds probabilistic in-transport loss.
    #[must_use]
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = Some(loss);
        self
    }
}

/// Everything that can be wrong with a graph declaration.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// An edge's endpoint message types disagree.
    TypeMismatch {
        /// Producing node.
        from: String,
        /// Consuming node.
        to: String,
        /// What the producer emits.
        produces: &'static str,
        /// What the consumer expects.
        consumes: &'static str,
    },
    /// A bounded queue was declared with capacity zero.
    ZeroCapacity {
        /// Producing node.
        from: String,
        /// Consuming node.
        to: String,
    },
    /// A source rate or edge latency is non-positive or non-finite.
    InvalidRate {
        /// The offending node.
        node: String,
    },
    /// A service time, speedup, payload, or deadline is invalid.
    InvalidService {
        /// The offending node.
        node: String,
        /// What was wrong.
        what: &'static str,
    },
    /// Two nodes were declared with the same name.
    DuplicateName {
        /// The reused name.
        name: String,
    },
    /// An edge endpoint cannot play the requested role (queue into a
    /// sink, wire into a server, edge out of a sink, edge into a
    /// source, …).
    BadEndpoint {
        /// Producing node.
        from: String,
        /// Consuming node.
        to: String,
        /// Why the endpoints are incompatible.
        why: &'static str,
    },
    /// A server has no incoming trigger edge, or more than one.
    TriggerCount {
        /// The offending server.
        node: String,
        /// How many trigger edges it has.
        count: usize,
    },
    /// A [`QueuePolicy::Block`] edge's producer is not a server.
    BlockNeedsServerUpstream {
        /// Producing node.
        from: String,
        /// Consuming node.
        to: String,
    },
    /// The trigger edges form a cycle.
    Cyclic {
        /// The graph name.
        graph: String,
    },
    /// A kernel-profile service has no placement to be costed on.
    MissingPlacement {
        /// The offending server.
        node: String,
    },
    /// A placement names a site never declared via
    /// [`GraphBuilder::shared_site`].
    UnknownSite {
        /// The placed node.
        node: String,
        /// The undeclared site.
        site: String,
    },
    /// A run was requested over a non-finite or negative duration.
    InvalidDuration {
        /// The offending duration in seconds.
        seconds: f64,
    },
    /// A placement spec failed to parse.
    Spec(ParseSpecError),
}

impl core::fmt::Display for FlowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TypeMismatch { from, to, produces, consumes } => write!(
                f,
                "edge {from} -> {to}: producer emits `{produces}` but consumer expects `{consumes}`"
            ),
            Self::ZeroCapacity { from, to } => {
                write!(f, "edge {from} -> {to}: queue capacity must be at least 1")
            }
            Self::InvalidRate { node } => {
                write!(f, "node {node}: rates and latencies must be positive and finite")
            }
            Self::InvalidService { node, what } => write!(f, "node {node}: {what}"),
            Self::DuplicateName { name } => write!(f, "node name {name:?} declared twice"),
            Self::BadEndpoint { from, to, why } => write!(f, "edge {from} -> {to}: {why}"),
            Self::TriggerCount { node, count } => {
                write!(f, "server {node} must have exactly one incoming queue edge, found {count}")
            }
            Self::BlockNeedsServerUpstream { from, to } => write!(
                f,
                "edge {from} -> {to}: Block backpressure needs a server producer \
                 (a sensor cannot be asked to stop sensing)"
            ),
            Self::Cyclic { graph } => {
                write!(
                    f,
                    "graph {graph}: trigger edges form a cycle (use a sampled edge for feedback)"
                )
            }
            Self::MissingPlacement { node } => {
                write!(f, "server {node}: a kernel-profile service needs a placement")
            }
            Self::UnknownSite { node, site } => {
                write!(f, "node {node}: site {site:?} was never declared via shared_site()")
            }
            Self::InvalidDuration { seconds } => {
                write!(f, "run duration must be finite and non-negative, got {seconds}")
            }
            Self::Spec(e) => write!(f, "placement spec: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ParseSpecError> for FlowError {
    fn from(e: ParseSpecError) -> Self {
        Self::Spec(e)
    }
}

/// The role of a declared node.
#[derive(Debug, Clone)]
pub(crate) enum Role {
    Source(SourceSpec),
    Server(ServerSpec),
    Sink(SinkSpec),
}

#[derive(Debug, Clone)]
pub(crate) struct NodeDecl {
    pub name: String,
    pub role: Role,
    pub input: Option<PortType>,
    /// Dedicated port type for sampled in-edges, when it differs from
    /// the trigger port (fusion servers).
    pub sampled: Option<PortType>,
    pub output: Option<PortType>,
    pub placement: Option<Placement>,
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeDecl {
    pub from: usize,
    pub to: usize,
    pub spec: EdgeSpec,
}

/// Declarative builder for a dataflow graph.
///
/// Declare nodes, connect them with typed edges, optionally place them
/// on silicon, then [`GraphBuilder::seal`] to validate the topology and
/// pre-compute every service time.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<NodeDecl>,
    edges: Vec<EdgeDecl>,
    sites: BTreeMap<String, BytesPerSecond>,
}

impl GraphBuilder {
    /// Starts a graph. The name prefixes its `flow.*` metrics.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), nodes: Vec::new(), edges: Vec::new(), sites: BTreeMap::new() }
    }

    fn declare(&mut self, node: NodeDecl) -> Result<NodeId, FlowError> {
        if self.nodes.iter().any(|n| n.name == node.name) {
            return Err(FlowError::DuplicateName { name: node.name });
        }
        self.nodes.push(node);
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Declares a source emitting `T` messages.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidRate`] for a non-positive/non-finite rate or
    /// payload, [`FlowError::DuplicateName`] for a reused name.
    pub fn source<T: MessageType>(
        &mut self,
        name: impl Into<String>,
        spec: SourceSpec,
    ) -> Result<NodeId, FlowError> {
        let name = name.into();
        let rate = spec.rate.value();
        let payload = spec.payload.value();
        if !(rate > 0.0 && rate.is_finite() && payload > 0.0 && payload.is_finite()) {
            return Err(FlowError::InvalidRate { node: name });
        }
        self.declare(NodeDecl {
            name,
            role: Role::Source(spec),
            input: None,
            sampled: None,
            output: Some(PortType::of::<T>()),
            placement: None,
        })
    }

    /// Declares a server consuming `I` and emitting `O`.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidService`] for a negative/non-finite service
    /// time, non-positive speedup, non-positive output payload, or
    /// non-positive deadline; [`FlowError::DuplicateName`] for a reused
    /// name.
    pub fn server<I: MessageType, O: MessageType>(
        &mut self,
        name: impl Into<String>,
        spec: ServerSpec,
    ) -> Result<NodeId, FlowError> {
        self.server_with_ports(name.into(), spec, PortType::of::<I>(), None, PortType::of::<O>())
    }

    /// Declares a fusion server: triggered by `I` messages, observing
    /// the freshest `S` over [sampled](EdgeSpec::sampled) edges, and
    /// emitting `O`. This is the multi-rate shape — e.g. a 30 Hz camera
    /// trigger fused with 100 Hz IMU state.
    ///
    /// # Errors
    ///
    /// Same contract as [`GraphBuilder::server`].
    pub fn fusion_server<I: MessageType, S: MessageType, O: MessageType>(
        &mut self,
        name: impl Into<String>,
        spec: ServerSpec,
    ) -> Result<NodeId, FlowError> {
        self.server_with_ports(
            name.into(),
            spec,
            PortType::of::<I>(),
            Some(PortType::of::<S>()),
            PortType::of::<O>(),
        )
    }

    fn server_with_ports(
        &mut self,
        name: String,
        spec: ServerSpec,
        input: PortType,
        sampled: Option<PortType>,
        output: PortType,
    ) -> Result<NodeId, FlowError> {
        if let Service::Fixed(s) = &spec.service {
            if !(s.value() >= 0.0 && s.is_finite()) {
                return Err(FlowError::InvalidService {
                    node: name,
                    what: "fixed service time must be finite and non-negative",
                });
            }
        }
        if !(spec.speedup > 0.0 && spec.speedup.is_finite()) {
            return Err(FlowError::InvalidService {
                node: name,
                what: "speedup must be positive and finite",
            });
        }
        if !(spec.output.value() > 0.0 && spec.output.value().is_finite()) {
            return Err(FlowError::InvalidService {
                node: name,
                what: "output payload must be positive and finite",
            });
        }
        if let Some(d) = spec.deadline {
            if !(d.value() > 0.0 && d.is_finite()) {
                return Err(FlowError::InvalidService {
                    node: name,
                    what: "deadline must be positive and finite",
                });
            }
        }
        self.declare(NodeDecl {
            name,
            role: Role::Server(spec),
            input: Some(input),
            sampled,
            output: Some(output),
            placement: None,
        })
    }

    /// Declares a sink consuming `T`.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidService`] for a non-positive deadline,
    /// [`FlowError::DuplicateName`] for a reused name.
    pub fn sink<T: MessageType>(
        &mut self,
        name: impl Into<String>,
        spec: SinkSpec,
    ) -> Result<NodeId, FlowError> {
        let name = name.into();
        if let Some(d) = spec.deadline {
            if !(d.value() > 0.0 && d.is_finite()) {
                return Err(FlowError::InvalidService {
                    node: name,
                    what: "deadline must be positive and finite",
                });
            }
        }
        self.declare(NodeDecl {
            name,
            role: Role::Sink(spec),
            input: Some(PortType::of::<T>()),
            sampled: None,
            output: None,
            placement: None,
        })
    }

    /// Declares a shared bus site with the given total bandwidth.
    /// Nodes placed [`Placement::at_site`] here contend for it.
    pub fn shared_site(&mut self, name: impl Into<String>, capacity: BytesPerSecond) {
        self.sites.insert(name.into(), capacity);
    }

    /// Assigns a placement to a node.
    ///
    /// # Errors
    ///
    /// [`FlowError::UnknownSite`] if the placement names an undeclared
    /// site.
    pub fn place(&mut self, node: NodeId, placement: Placement) -> Result<(), FlowError> {
        if let Some(site) = placement.site() {
            if !self.sites.contains_key(site) {
                return Err(FlowError::UnknownSite {
                    node: self.nodes[node.0].name.clone(),
                    site: site.to_string(),
                });
            }
        }
        self.nodes[node.0].placement = Some(placement);
        Ok(())
    }

    /// Connects two nodes with a typed edge. Edges transmit in
    /// declaration order when a node fans out.
    ///
    /// # Errors
    ///
    /// [`FlowError::TypeMismatch`] when the port types disagree,
    /// [`FlowError::ZeroCapacity`] for an empty queue,
    /// [`FlowError::BadEndpoint`] for role-incompatible endpoints,
    /// [`FlowError::BlockNeedsServerUpstream`] for a blocking edge out
    /// of a source, [`FlowError::InvalidRate`] for a negative or
    /// non-finite edge latency.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        spec: EdgeSpec,
    ) -> Result<EdgeId, FlowError> {
        let (f, t) = (&self.nodes[from.0], &self.nodes[to.0]);
        let names = || (f.name.clone(), t.name.clone());
        let Some(out) = f.output else {
            let (from, to) = names();
            return Err(FlowError::BadEndpoint { from, to, why: "a sink has no output port" });
        };
        // A sampled edge lands on the consumer's dedicated sampled port
        // when it declares one (fusion servers); every other edge — and
        // sampled edges into plain servers — uses the trigger port.
        let port =
            if matches!(spec.kind, EdgeKind::Sampled) { t.sampled.or(t.input) } else { t.input };
        let Some(inp) = port else {
            let (from, to) = names();
            return Err(FlowError::BadEndpoint { from, to, why: "a source has no input port" });
        };
        if !out.matches(&inp) {
            let (from, to) = names();
            return Err(FlowError::TypeMismatch {
                from,
                to,
                produces: out.name(),
                consumes: inp.name(),
            });
        }
        if !(spec.latency.value() >= 0.0 && spec.latency.is_finite()) {
            return Err(FlowError::InvalidRate { node: f.name.clone() });
        }
        match spec.kind {
            EdgeKind::Queue { capacity, policy } => {
                if !matches!(t.role, Role::Server(_)) {
                    let (from, to) = names();
                    return Err(FlowError::BadEndpoint {
                        from,
                        to,
                        why: "a queue edge must feed a server (use wire() into a sink)",
                    });
                }
                if capacity == 0 {
                    let (from, to) = names();
                    return Err(FlowError::ZeroCapacity { from, to });
                }
                if policy == QueuePolicy::Block && !matches!(f.role, Role::Server(_)) {
                    let (from, to) = names();
                    return Err(FlowError::BlockNeedsServerUpstream { from, to });
                }
            }
            EdgeKind::Wire => {
                if !matches!(t.role, Role::Sink(_)) {
                    let (from, to) = names();
                    return Err(FlowError::BadEndpoint {
                        from,
                        to,
                        why: "a wire edge must feed a sink (use queue() into a server)",
                    });
                }
            }
            EdgeKind::Sampled => {
                if !matches!(t.role, Role::Server(_)) {
                    let (from, to) = names();
                    return Err(FlowError::BadEndpoint {
                        from,
                        to,
                        why: "a sampled edge must feed a server",
                    });
                }
            }
        }
        self.edges.push(EdgeDecl { from: from.0, to: to.0, spec });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Validates the topology, costs every placement (in parallel on
    /// `par`), applies shared-site contention, and returns a runnable
    /// [`Graph`].
    ///
    /// # Errors
    ///
    /// Any [`FlowError`] the declarations deferred: trigger-count
    /// violations, trigger cycles, kernel services without placements.
    pub fn seal(self, par: ParConfig) -> Result<Graph, FlowError> {
        crate::engine::seal(self, par)
    }

    pub(crate) fn into_parts(
        self,
    ) -> (String, Vec<NodeDecl>, Vec<EdgeDecl>, BTreeMap<String, BytesPerSecond>) {
        (self.name, self.nodes, self.edges, self.sites)
    }
}

pub use crate::engine::Graph;

#[cfg(test)]
mod tests {
    use super::*;

    struct Frame;
    impl MessageType for Frame {
        const NAME: &'static str = "frame";
    }
    struct Cmd;
    impl MessageType for Cmd {
        const NAME: &'static str = "cmd";
    }
    struct Imu;
    impl MessageType for Imu {
        const NAME: &'static str = "imu";
    }

    fn cam_spec() -> SourceSpec {
        SourceSpec::new(Hertz::new(30.0), Bytes::new(1000.0))
    }

    fn srv_spec() -> ServerSpec {
        ServerSpec::new(Service::fixed(Seconds::from_millis(1.0)))
    }

    #[test]
    fn type_mismatch_is_a_build_error() {
        let mut g = GraphBuilder::new("t");
        let cam = g.source::<Frame>("cam", cam_spec()).unwrap();
        let srv = g.server::<Imu, Cmd>("fuse", srv_spec()).unwrap();
        let err = g.connect(cam, srv, EdgeSpec::queue(2)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`frame`") && msg.contains("`imu`"), "{msg}");
    }

    #[test]
    fn fusion_server_types_its_sampled_port_separately() {
        let mut g = GraphBuilder::new("t");
        let cam = g.source::<Frame>("cam", cam_spec()).unwrap();
        let imu =
            g.source::<Imu>("imu", SourceSpec::new(Hertz::new(100.0), Bytes::new(24.0))).unwrap();
        let fuse = g.fusion_server::<Frame, Imu, Cmd>("fuse", srv_spec()).unwrap();
        g.connect(cam, fuse, EdgeSpec::queue(2)).unwrap();
        g.connect(imu, fuse, EdgeSpec::sampled()).unwrap();
        // The trigger port still rejects the sampled type and vice versa.
        let err = g.connect(imu, fuse, EdgeSpec::queue(2)).unwrap_err();
        assert!(matches!(err, FlowError::TypeMismatch { .. }), "{err}");
        let err = g.connect(cam, fuse, EdgeSpec::sampled()).unwrap_err();
        assert!(matches!(err, FlowError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn zero_capacity_is_a_build_error() {
        let mut g = GraphBuilder::new("t");
        let cam = g.source::<Frame>("cam", cam_spec()).unwrap();
        let srv = g.server::<Frame, Cmd>("srv", srv_spec()).unwrap();
        assert!(matches!(
            g.connect(cam, srv, EdgeSpec::queue(0)),
            Err(FlowError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn block_out_of_a_source_is_a_build_error() {
        let mut g = GraphBuilder::new("t");
        let cam = g.source::<Frame>("cam", cam_spec()).unwrap();
        let srv = g.server::<Frame, Cmd>("srv", srv_spec()).unwrap();
        assert!(matches!(
            g.connect(cam, srv, EdgeSpec::queue(1).policy(QueuePolicy::Block)),
            Err(FlowError::BlockNeedsServerUpstream { .. })
        ));
    }

    #[test]
    fn role_incompatible_endpoints_are_build_errors() {
        let mut g = GraphBuilder::new("t");
        let cam = g.source::<Frame>("cam", cam_spec()).unwrap();
        let srv = g.server::<Frame, Cmd>("srv", srv_spec()).unwrap();
        let sink = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
        // Queue into a sink, wire into a server, edge out of a sink,
        // edge into a source.
        assert!(matches!(
            g.connect(srv, sink, EdgeSpec::queue(1)),
            Err(FlowError::BadEndpoint { .. })
        ));
        assert!(matches!(
            g.connect(cam, srv, EdgeSpec::wire()),
            Err(FlowError::BadEndpoint { .. })
        ));
        assert!(matches!(
            g.connect(sink, srv, EdgeSpec::wire()),
            Err(FlowError::BadEndpoint { .. })
        ));
        assert!(matches!(
            g.connect(srv, cam, EdgeSpec::wire()),
            Err(FlowError::BadEndpoint { .. })
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut g = GraphBuilder::new("t");
        g.source::<Frame>("cam", cam_spec()).unwrap();
        assert!(matches!(
            g.source::<Frame>("cam", cam_spec()),
            Err(FlowError::DuplicateName { .. })
        ));
    }

    #[test]
    fn unknown_site_is_rejected() {
        let mut g = GraphBuilder::new("t");
        let srv = g.server::<Frame, Cmd>("srv", srv_spec()).unwrap();
        let p = Placement::preset(m7_arch::platform::PlatformKind::Gpu).at_site("nowhere");
        assert!(matches!(g.place(srv, p), Err(FlowError::UnknownSite { .. })));
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = FlowError::TriggerCount { node: "fuse".into(), count: 2 };
        assert!(e.to_string().contains("exactly one"));
        let e = FlowError::Cyclic { graph: "g".into() };
        assert!(e.to_string().contains("sampled edge"));
    }
}
