//! A small deterministic discrete-event simulation engine.
//!
//! Events are ordered by timestamp with FIFO tie-breaking (a monotone
//! sequence number), so identical schedules replay identically. This is
//! the virtual clock under every graph execution in this crate (and,
//! via the `m7_sim::des` re-export, under the legacy pipeline API).

use m7_units::Seconds;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event queue advancing simulated time monotonically.
///
/// # Examples
///
/// ```
/// use m7_flow::vtime::EventQueue;
/// use m7_units::Seconds;
///
/// let mut q = EventQueue::new();
/// q.schedule(Seconds::new(2.0), "later");
/// q.schedule(Seconds::new(1.0), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t, Seconds::new(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    now: f64,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct HeapEntry<E> {
    at: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.at
            .partial_cmp(&other.at)
            .expect("event times are finite")
            .then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), now: 0.0, next_seq: 0 }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Seconds {
        Seconds::new(self.now)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is non-finite or earlier than the current time.
    pub fn schedule(&mut self, at: Seconds, payload: E) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(at.value() >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry { at: at.value(), seq, payload }));
    }

    /// Schedules `payload` at `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: Seconds, payload: E) {
        assert!(delay.value() >= 0.0, "delay must be non-negative");
        self.schedule(Seconds::new(self.now + delay.value()), payload);
    }

    /// Pops the next event, advancing simulated time to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        self.heap.pop().map(|Reverse(entry)| {
            self.now = entry.at;
            (Seconds::new(entry.at), entry.payload)
        })
    }

    /// The timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|Reverse(e)| Seconds::new(e.at))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 'c');
        q.schedule(Seconds::new(1.0), 'a');
        q.schedule(Seconds::new(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), Seconds::new(3.0));
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(1.0), 1);
        q.schedule(Seconds::new(1.0), 2);
        q.schedule(Seconds::new(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), "first");
        q.pop();
        q.schedule_in(Seconds::new(2.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Seconds::new(7.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), ());
        q.pop();
        q.schedule(Seconds::new(1.0), ());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(4.0), ());
        assert_eq!(q.peek_time(), Some(Seconds::new(4.0)));
        assert_eq!(q.now(), Seconds::ZERO);
        assert_eq!(q.len(), 1);
    }
}
