//! Bounded-queue overflow policies.

use serde::{Deserialize, Serialize};

/// What a bounded queue does when a message arrives while it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Drop the arriving message (the behaviour of a real perception
    /// stack under overload, and of the legacy `m7-sim` pipeline).
    DropNewest,
    /// Drop the oldest queued message to make room — latest-data-wins,
    /// the right policy when stale sensor frames are worthless.
    DropOldest,
    /// Apply backpressure: the *producing server* parks its completed
    /// output and does not start its next service until the consumer
    /// frees a slot. Only valid on edges whose producer is a server —
    /// a sensor cannot be asked to stop sensing.
    Block,
}

impl core::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::DropNewest => "drop-newest",
            Self::DropOldest => "drop-oldest",
            Self::Block => "block",
        };
        f.write_str(s)
    }
}
