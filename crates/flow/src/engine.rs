//! The sealed graph and its virtual-time execution engine.
//!
//! [`seal`] validates a [`GraphBuilder`](crate::GraphBuilder)'s
//! topology, costs every placement (in parallel on the `m7-par` pool),
//! applies shared-site contention, and freezes the result into a
//! [`Graph`]. [`Graph::run_seeded`] then executes the graph on a
//! deterministic virtual clock: events sharing a timestamp are
//! *prepared* out of order (an `m7-par` fan-out with index-slotted
//! results) and *committed* in sequence order, so the report is
//! bit-identical at any thread count.

use crate::graph::{
    EdgeDecl, EdgeKind, FlowError, GraphBuilder, LossModel, LossSeed, Role, Service,
};
use crate::policy::QueuePolicy;
use crate::vtime::EventQueue;
use m7_arch::contention::SharedBus;
use m7_par::{derive_seed, ParConfig};
use m7_trace::metrics::{registry, MetricClass};
use m7_units::{BytesPerSecond, Hertz, Seconds};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};

/// Below this many same-timestamp events the prepare fan-out runs
/// inline; `par_map` is index-slotted, so both paths are bit-identical.
const PAR_BATCH_MIN: usize = 8;

/// The role a node plays, as reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Fires at a fixed rate.
    Source,
    /// A single-server queueing station.
    Server,
    /// Records received messages.
    Sink,
}

impl core::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Source => "source",
            Self::Server => "server",
            Self::Sink => "sink",
        })
    }
}

#[derive(Debug, Clone)]
enum SealedRole {
    Source { period: f64 },
    Server { service: f64, deadline: Option<f64>, energy_per_item: f64 },
    Sink { deadline: Option<f64> },
}

#[derive(Debug, Clone)]
struct SealedNode {
    name: String,
    role: SealedRole,
    /// Outgoing edges in declaration order — transmit order is part of
    /// the deterministic contract.
    out_edges: Vec<usize>,
    /// The single queue in-edge of a server.
    trigger: Option<usize>,
    /// Sampled in-edges of a server, in declaration order.
    sampled_in: Vec<usize>,
    platform: Option<String>,
    site: Option<String>,
    slowdown: f64,
}

#[derive(Clone)]
struct SealedEdge {
    from: usize,
    to: usize,
    kind: EdgeKind,
    latency: f64,
    loss: Option<LossModel>,
}

/// A validated, costed, runnable dataflow graph.
///
/// Produced by [`GraphBuilder::seal`](crate::GraphBuilder::seal); see
/// the crate-level example.
pub struct Graph {
    name: String,
    par: ParConfig,
    nodes: Vec<SealedNode>,
    edges: Vec<SealedEdge>,
}

/// A modeled message: when it was born at its source, when it arrives
/// at the consuming end of the current edge, and how big it is.
#[derive(Debug, Clone, Copy)]
struct Msg {
    born: f64,
    arrival: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Fire(usize),
    Done(usize),
}

#[derive(Debug, Clone, Copy)]
enum Prep {
    Fire,
    Done { out_born: f64, miss: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Srv {
    Idle,
    Serving,
    /// Output parked on `blocked_on` full downstream edges; the next
    /// service start waits for all of them to free a slot.
    Blocked,
}

struct NodeState {
    fired: u64,
    processed: u64,
    received: u64,
    deadline_misses: u64,
    srv: Srv,
    current: Option<Msg>,
    blocked_on: usize,
    latencies: Vec<f64>,
}

struct EdgeState {
    queue: VecDeque<Msg>,
    parked: Option<Msg>,
    slot_fresh: bool,
    has_slot: bool,
    delivered: u64,
    dropped: u64,
    lost: u64,
    superseded: u64,
    blocked: u64,
    max_depth: u64,
    rng: Option<ChaCha8Rng>,
}

enum Outcome {
    Ok,
    Lost,
    Dropped,
    Parked,
}

/// Per-node results of a run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// Source firings.
    pub fired: u64,
    /// Server completions.
    pub processed: u64,
    /// Messages consumed (trigger messages, fresh samples, sink
    /// receptions).
    pub received: u64,
    /// Completions (servers) or receptions (sinks) past the deadline.
    pub deadline_misses: u64,
    /// Effective platform name, if placed.
    pub platform: Option<String>,
    /// Shared-site name, if placed on one.
    pub site: Option<String>,
    /// Post-contention service time per item, for servers.
    pub service: Option<Seconds>,
    /// Contention stretch factor applied to the service time.
    pub slowdown: f64,
    /// Total modeled energy over the run, in joules.
    pub energy_j: f64,
    /// Sink latencies in completion order, seconds.
    pub latencies: Vec<f64>,
    /// Mean sink latency.
    pub mean_latency: Seconds,
    /// p99 sink latency.
    pub p99_latency: Seconds,
    /// Sink reception rate over the run.
    pub throughput: Hertz,
}

/// Per-edge results of a run.
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// Producing node.
    pub from: String,
    /// Consuming node.
    pub to: String,
    /// Human-readable edge kind, e.g. `queue(cap=4, drop-newest)`.
    pub kind: String,
    /// Messages accepted (queued, served directly, sampled, or
    /// recorded).
    pub delivered: u64,
    /// Messages dropped by the overflow policy.
    pub dropped: u64,
    /// Messages lost in transport.
    pub lost: u64,
    /// Samples overwritten before anyone read them.
    pub superseded: u64,
    /// Times the producer parked on this edge (Block policy).
    pub blocked: u64,
    /// High-water queue depth.
    pub max_depth: u64,
}

/// The result of one [`Graph::run_seeded`] execution.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// Graph name.
    pub name: String,
    /// Simulated duration.
    pub duration: Seconds,
    /// Per-node results, in declaration order.
    pub nodes: Vec<NodeReport>,
    /// Per-edge results, in declaration order.
    pub edges: Vec<EdgeReport>,
}

impl GraphReport {
    /// Looks a node up by name.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<&NodeReport> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Looks an edge up by its endpoint names.
    #[must_use]
    pub fn edge(&self, from: &str, to: &str) -> Option<&EdgeReport> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }
}

impl Graph {
    /// The graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the graph with seed 0.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidDuration`] for a non-finite or negative
    /// duration.
    pub fn run(&self, duration: Seconds) -> Result<GraphReport, FlowError> {
        self.run_seeded(duration, 0)
    }

    /// Runs the graph for `duration` of virtual time.
    ///
    /// `seed` feeds every [`LossSeed::Derived`] edge RNG (edges with
    /// [`LossSeed::Fixed`] ignore it). The report is bit-identical for
    /// a given `(graph, duration, seed)` regardless of `m7-par` thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidDuration`] for a non-finite or negative
    /// duration.
    pub fn run_seeded(&self, duration: Seconds, seed: u64) -> Result<GraphReport, FlowError> {
        if !(duration.value() >= 0.0 && duration.is_finite()) {
            return Err(FlowError::InvalidDuration { seconds: duration.value() });
        }
        let mut run = Run::new(self, seed);
        run.execute(duration);
        Ok(run.into_report(duration))
    }
}

struct Run<'g> {
    g: &'g Graph,
    ns: Vec<NodeState>,
    es: Vec<EdgeState>,
}

impl<'g> Run<'g> {
    fn new(g: &'g Graph, seed: u64) -> Self {
        let ns = g
            .nodes
            .iter()
            .map(|_| NodeState {
                fired: 0,
                processed: 0,
                received: 0,
                deadline_misses: 0,
                srv: Srv::Idle,
                current: None,
                blocked_on: 0,
                latencies: Vec::new(),
            })
            .collect();
        let es = g
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| EdgeState {
                queue: VecDeque::new(),
                parked: None,
                slot_fresh: false,
                has_slot: false,
                delivered: 0,
                dropped: 0,
                lost: 0,
                superseded: 0,
                blocked: 0,
                max_depth: 0,
                rng: e.loss.as_ref().map(|l| {
                    ChaCha8Rng::seed_from_u64(match l.seed {
                        LossSeed::Fixed(s) => s,
                        LossSeed::Derived => derive_seed(seed, i as u64),
                    })
                }),
            })
            .collect();
        Self { g, ns, es }
    }

    fn execute(&mut self, duration: Seconds) {
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (i, n) in self.g.nodes.iter().enumerate() {
            if matches!(n.role, SealedRole::Source { .. }) {
                q.schedule(Seconds::ZERO, Ev::Fire(i));
            }
        }
        let mut batch: Vec<Ev> = Vec::new();
        while let Some(t0) = q.peek_time() {
            // The first event strictly past the horizon ends the run;
            // events at exactly `duration` are still processed.
            if t0 > duration {
                break;
            }
            batch.clear();
            while q.peek_time() == Some(t0) {
                let (_, ev) = q.pop().expect("peeked event exists");
                batch.push(ev);
            }
            let t = t0.value();
            // Prepare out of order: pure per-event data, reading only
            // state frozen while the events were pending. par_map is
            // index-slotted, so the result vector is independent of
            // thread count.
            let preps: Vec<Prep> = if batch.len() >= PAR_BATCH_MIN {
                let shared = &*self;
                self.g.par.par_map(&batch, |ev| shared.prepare(*ev, t))
            } else {
                batch.iter().map(|ev| self.prepare(*ev, t)).collect()
            };
            // Commit in sequence order: counters, RNG draws, queue
            // mutation, new events.
            for (ev, prep) in batch.iter().copied().zip(preps) {
                self.commit(ev, prep, t, &mut q);
            }
        }
    }

    fn prepare(&self, ev: Ev, t: f64) -> Prep {
        match ev {
            Ev::Fire(_) => Prep::Fire,
            Ev::Done(i) => {
                let m = self.ns[i].current.expect("a Done event implies a message in service");
                let miss = match &self.g.nodes[i].role {
                    SealedRole::Server { deadline: Some(d), .. } => t - m.born > *d,
                    _ => false,
                };
                Prep::Done { out_born: m.born, miss }
            }
        }
    }

    fn commit(&mut self, ev: Ev, prep: Prep, t: f64, q: &mut EventQueue<Ev>) {
        match (ev, prep) {
            (Ev::Fire(i), Prep::Fire) => self.commit_fire(i, t, q),
            (Ev::Done(i), Prep::Done { out_born, miss }) => {
                self.commit_done(i, out_born, miss, t, q)
            }
            _ => unreachable!("prep matches its event"),
        }
    }

    fn commit_fire(&mut self, i: usize, t: f64, q: &mut EventQueue<Ev>) {
        let g = self.g;
        let SealedRole::Source { period } = &g.nodes[i].role else {
            unreachable!("only sources fire")
        };
        let period = *period;
        self.ns[i].fired += 1;
        let msg = Msg { born: t, arrival: t };
        for &e in &g.nodes[i].out_edges {
            let _ = self.transmit(e, msg, t, q);
        }
        q.schedule(Seconds::new(t + period), Ev::Fire(i));
    }

    fn commit_done(&mut self, i: usize, out_born: f64, miss: bool, t: f64, q: &mut EventQueue<Ev>) {
        self.ns[i].processed += 1;
        if miss {
            self.ns[i].deadline_misses += 1;
        }
        self.ns[i].current = None;
        let out = Msg { born: out_born, arrival: t };
        let mut parked = 0usize;
        let g = self.g;
        for &e in &g.nodes[i].out_edges {
            if matches!(self.transmit(e, out, t, q), Outcome::Parked) {
                parked += 1;
            }
        }
        if parked > 0 {
            self.ns[i].srv = Srv::Blocked;
            self.ns[i].blocked_on = parked;
        } else {
            self.finish_or_next(i, t, q);
        }
    }

    /// Sends `msg` down edge `e` at time `t`: loss draw first, then
    /// delivery according to the edge kind.
    fn transmit(&mut self, e: usize, mut msg: Msg, t: f64, q: &mut EventQueue<Ev>) -> Outcome {
        let g = self.g;
        let edge = &g.edges[e];
        if let Some(loss) = &edge.loss {
            let rate = (loss.rate)(Seconds::new(t));
            if rate > 0.0
                && self.es[e].rng.as_mut().expect("lossy edges have an RNG").gen_bool(rate)
            {
                self.es[e].lost += 1;
                return Outcome::Lost;
            }
        }
        msg.arrival = t + edge.latency;
        match edge.kind {
            EdgeKind::Wire => {
                self.deliver_to_sink(e, msg);
                Outcome::Ok
            }
            EdgeKind::Sampled => {
                let es = &mut self.es[e];
                if es.slot_fresh {
                    es.superseded += 1;
                }
                es.has_slot = true;
                es.slot_fresh = true;
                es.delivered += 1;
                Outcome::Ok
            }
            EdgeKind::Queue { capacity, policy } => {
                self.deliver_to_server(e, capacity, policy, msg, t, q)
            }
        }
    }

    fn deliver_to_sink(&mut self, e: usize, msg: Msg) {
        let g = self.g;
        let dst = g.edges[e].to;
        self.es[e].delivered += 1;
        self.ns[dst].received += 1;
        let latency = msg.arrival - msg.born;
        self.ns[dst].latencies.push(latency);
        if let SealedRole::Sink { deadline: Some(d) } = &g.nodes[dst].role {
            if latency > *d {
                self.ns[dst].deadline_misses += 1;
            }
        }
    }

    fn deliver_to_server(
        &mut self,
        e: usize,
        capacity: usize,
        policy: QueuePolicy,
        msg: Msg,
        t: f64,
        q: &mut EventQueue<Ev>,
    ) -> Outcome {
        let dst = self.g.edges[e].to;
        if self.ns[dst].srv == Srv::Idle {
            self.es[e].delivered += 1;
            self.start_service(dst, msg, t, q);
            return Outcome::Ok;
        }
        if self.es[e].queue.len() >= capacity {
            match policy {
                QueuePolicy::DropNewest => {
                    self.es[e].dropped += 1;
                    Outcome::Dropped
                }
                QueuePolicy::DropOldest => {
                    let es = &mut self.es[e];
                    es.queue.pop_front();
                    es.dropped += 1;
                    es.queue.push_back(msg);
                    es.delivered += 1;
                    Outcome::Ok
                }
                QueuePolicy::Block => {
                    let es = &mut self.es[e];
                    es.parked = Some(msg);
                    es.blocked += 1;
                    Outcome::Parked
                }
            }
        } else {
            let es = &mut self.es[e];
            es.queue.push_back(msg);
            es.delivered += 1;
            es.max_depth = es.max_depth.max(es.queue.len() as u64);
            Outcome::Ok
        }
    }

    fn start_service(&mut self, i: usize, msg: Msg, t: f64, q: &mut EventQueue<Ev>) {
        let g = self.g;
        let SealedRole::Server { service, .. } = &g.nodes[i].role else {
            unreachable!("only servers serve")
        };
        let service = *service;
        let start = t.max(msg.arrival);
        // Read the freshest sample from each sampled in-edge.
        for &e in &g.nodes[i].sampled_in {
            if self.es[e].slot_fresh {
                self.es[e].slot_fresh = false;
                self.ns[i].received += 1;
            }
        }
        self.ns[i].received += 1;
        self.ns[i].current = Some(msg);
        self.ns[i].srv = Srv::Serving;
        q.schedule(Seconds::new(start + service), Ev::Done(i));
    }

    /// A server finished (or got unblocked): pull the next trigger
    /// message, or go idle.
    fn finish_or_next(&mut self, i: usize, t: f64, q: &mut EventQueue<Ev>) {
        let Some(trig) = self.g.nodes[i].trigger else {
            self.ns[i].srv = Srv::Idle;
            return;
        };
        match self.es[trig].queue.pop_front() {
            Some(m) => {
                self.start_service(i, m, t, q);
                self.unpark_into(trig, t, q);
            }
            None => self.ns[i].srv = Srv::Idle,
        }
    }

    /// A slot just freed on `e`; if its producer parked a message
    /// here, move it into the queue and, once the producer is parked
    /// nowhere, let it start its next service. Chains are bounded by
    /// graph depth — the trigger topology is a DAG.
    fn unpark_into(&mut self, e: usize, t: f64, q: &mut EventQueue<Ev>) {
        let Some(m) = self.es[e].parked.take() else { return };
        let es = &mut self.es[e];
        es.queue.push_back(m);
        es.delivered += 1;
        es.max_depth = es.max_depth.max(es.queue.len() as u64);
        let producer = self.g.edges[e].from;
        debug_assert_eq!(self.ns[producer].srv, Srv::Blocked);
        self.ns[producer].blocked_on -= 1;
        if self.ns[producer].blocked_on == 0 {
            self.finish_or_next(producer, t, q);
        }
    }

    fn into_report(self, duration: Seconds) -> GraphReport {
        let nodes: Vec<NodeReport> = self
            .g
            .nodes
            .iter()
            .zip(self.ns)
            .map(|(n, s)| {
                let (kind, service, energy_per_item, is_sink) = match &n.role {
                    SealedRole::Source { .. } => (NodeKind::Source, None, 0.0, false),
                    SealedRole::Server { service, energy_per_item, .. } => {
                        (NodeKind::Server, Some(Seconds::new(*service)), *energy_per_item, false)
                    }
                    SealedRole::Sink { .. } => (NodeKind::Sink, None, 0.0, true),
                };
                // Same ordering and accumulation as the legacy
                // pipeline stats: sort, then mean over the sorted
                // values, then the p99 index.
                let mut sorted = s.latencies.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                let mean = if sorted.is_empty() {
                    0.0
                } else {
                    sorted.iter().sum::<f64>() / sorted.len() as f64
                };
                let p99 = if sorted.is_empty() {
                    0.0
                } else {
                    sorted[((sorted.len() as f64 * 0.99) as usize).min(sorted.len() - 1)]
                };
                let throughput = if is_sink {
                    Hertz::new(s.received as f64 / duration.value().max(1e-12))
                } else {
                    Hertz::ZERO
                };
                NodeReport {
                    name: n.name.clone(),
                    kind,
                    fired: s.fired,
                    processed: s.processed,
                    received: s.received,
                    deadline_misses: s.deadline_misses,
                    platform: n.platform.clone(),
                    site: n.site.clone(),
                    service,
                    slowdown: n.slowdown,
                    energy_j: energy_per_item * s.processed as f64,
                    latencies: s.latencies,
                    mean_latency: Seconds::new(mean),
                    p99_latency: Seconds::new(p99),
                    throughput,
                }
            })
            .collect();
        let edges: Vec<EdgeReport> = self
            .g
            .edges
            .iter()
            .zip(self.es)
            .map(|(e, s)| EdgeReport {
                from: self.g.nodes[e.from].name.clone(),
                to: self.g.nodes[e.to].name.clone(),
                kind: match e.kind {
                    EdgeKind::Queue { capacity, policy } => {
                        format!("queue(cap={capacity}, {policy})")
                    }
                    EdgeKind::Wire => "wire".to_string(),
                    EdgeKind::Sampled => "sampled".to_string(),
                },
                delivered: s.delivered,
                dropped: s.dropped,
                lost: s.lost,
                superseded: s.superseded,
                blocked: s.blocked,
                max_depth: s.max_depth,
            })
            .collect();
        let report = GraphReport { name: self.g.name.clone(), duration, nodes, edges };
        publish_metrics(&report);
        report
    }
}

/// Mirrors the run into the `m7-trace` registry under `flow.*` when
/// tracing is enabled, so `examples/trace_tail.rs` and the telemetry
/// plane see queue depths and drop counters live.
fn publish_metrics(r: &GraphReport) {
    if !m7_trace::enabled() {
        return;
    }
    let reg = registry();
    let class = MetricClass::Deterministic;
    for n in &r.nodes {
        let base = format!("flow.{}.{}", r.name, n.name);
        reg.counter(&format!("{base}.fired"), class).add(n.fired);
        reg.counter(&format!("{base}.processed"), class).add(n.processed);
        reg.counter(&format!("{base}.received"), class).add(n.received);
        reg.counter(&format!("{base}.deadline_miss"), class).add(n.deadline_misses);
        if n.kind == NodeKind::Sink {
            let h = reg.histogram(&format!("{base}.latency_ns"), class);
            for l in &n.latencies {
                h.record(seconds_to_ns(*l));
            }
        }
    }
    for e in &r.edges {
        let base = format!("flow.{}.edge.{}-{}", r.name, e.from, e.to);
        reg.counter(&format!("{base}.delivered"), class).add(e.delivered);
        reg.counter(&format!("{base}.dropped"), class).add(e.dropped);
        reg.counter(&format!("{base}.lost"), class).add(e.lost);
        reg.counter(&format!("{base}.superseded"), class).add(e.superseded);
        reg.counter(&format!("{base}.blocked"), class).add(e.blocked);
        reg.gauge(&format!("{base}.depth_max"), class).record_max(e.max_depth);
    }
}

fn seconds_to_ns(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * 1e9).min(u64::MAX as f64) as u64
    }
}

/// Validates and freezes a builder into a runnable [`Graph`]. See
/// [`GraphBuilder::seal`](crate::GraphBuilder::seal).
pub(crate) fn seal(builder: GraphBuilder, par: ParConfig) -> Result<Graph, FlowError> {
    let (name, decls, edge_decls, sites) = builder.into_parts();

    // Per-node edge topology.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); decls.len()];
    let mut triggers: Vec<Vec<usize>> = vec![Vec::new(); decls.len()];
    let mut sampled_in: Vec<Vec<usize>> = vec![Vec::new(); decls.len()];
    for (i, e) in edge_decls.iter().enumerate() {
        out_edges[e.from].push(i);
        match e.spec.kind {
            EdgeKind::Queue { .. } => triggers[e.to].push(i),
            EdgeKind::Sampled => sampled_in[e.to].push(i),
            EdgeKind::Wire => {}
        }
    }

    // Every server needs exactly one trigger.
    for (i, d) in decls.iter().enumerate() {
        if matches!(d.role, Role::Server(_)) && triggers[i].len() != 1 {
            return Err(FlowError::TriggerCount { node: d.name.clone(), count: triggers[i].len() });
        }
        if let Role::Server(spec) = &d.role {
            if matches!(spec.service, Service::Kernel(_)) && d.placement.is_none() {
                return Err(FlowError::MissingPlacement { node: d.name.clone() });
            }
        }
    }

    // The non-sampled topology must be a DAG (Kahn); sampled edges are
    // exempt so state can feed back.
    let order = topo_order(decls.len(), &edge_decls)
        .ok_or_else(|| FlowError::Cyclic { graph: name.clone() })?;

    // Propagate nominal rates along trigger edges in topological order.
    let mut rates = vec![0.0f64; decls.len()];
    for &i in &order {
        match &decls[i].role {
            Role::Source(s) => rates[i] = s.rate.value(),
            Role::Server(_) => rates[i] = rates[edge_decls[triggers[i][0]].from],
            Role::Sink(_) => {
                rates[i] = edge_decls.iter().filter(|e| e.to == i).map(|e| rates[e.from]).sum();
            }
        }
    }

    // Cost every node's service on its placement — an independent,
    // pure evaluation per node, fanned out on the m7-par pool.
    let costed: Vec<(f64, f64, Option<String>)> =
        par.par_map_indexed(decls.len(), |i| cost_node(&decls[i]));

    // Shared-site contention: each placed node's sustained memory
    // demand stretches every co-located service by the max-min-fair
    // bus slowdown.
    let mut slowdowns = vec![1.0f64; decls.len()];
    let mut members: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in decls.iter().enumerate() {
        if let Some(site) = d.placement.as_ref().and_then(|p| p.site()) {
            members.entry(site).or_default().push(i);
        }
    }
    for (site, nodes_here) in &members {
        let capacity = sites.get(*site).copied().expect("site validated at place()");
        let demands: Vec<BytesPerSecond> = nodes_here
            .iter()
            .map(|&i| BytesPerSecond::new(node_demand(i, &decls, &edge_decls, &rates)))
            .collect();
        let factors = SharedBus::new(capacity).slowdowns(&demands);
        for (&i, f) in nodes_here.iter().zip(factors) {
            slowdowns[i] = f;
        }
    }

    let nodes: Vec<SealedNode> = decls
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let (base_service, energy_rate, platform) = costed[i].clone();
            let role = match &d.role {
                Role::Source(s) => SealedRole::Source { period: s.rate.period().value() },
                Role::Server(s) => {
                    let service = if slowdowns[i] != 1.0 {
                        base_service * slowdowns[i]
                    } else {
                        base_service
                    };
                    SealedRole::Server {
                        service,
                        deadline: s.deadline.map(Seconds::value),
                        energy_per_item: energy_rate * service,
                    }
                }
                Role::Sink(s) => SealedRole::Sink { deadline: s.deadline.map(Seconds::value) },
            };
            SealedNode {
                name: d.name.clone(),
                role,
                out_edges: out_edges[i].clone(),
                trigger: triggers[i].first().copied(),
                sampled_in: sampled_in[i].clone(),
                platform,
                site: d.placement.as_ref().and_then(|p| p.site()).map(str::to_string),
                slowdown: slowdowns[i],
            }
        })
        .collect();

    let edges: Vec<SealedEdge> = edge_decls
        .into_iter()
        .map(|EdgeDecl { from, to, spec }| SealedEdge {
            from,
            to,
            kind: spec.kind,
            latency: spec.latency.value(),
            loss: spec.loss,
        })
        .collect();

    Ok(Graph { name, par, nodes, edges })
}

/// Kahn topological order over the non-sampled edges; `None` on a
/// cycle.
fn topo_order(n: usize, edges: &[EdgeDecl]) -> Option<Vec<usize>> {
    let mut indegree = vec![0usize; n];
    for e in edges {
        if !matches!(e.spec.kind, EdgeKind::Sampled) {
            indegree[e.to] += 1;
        }
    }
    let mut ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop_front() {
        order.push(i);
        for e in edges {
            if e.from == i && !matches!(e.spec.kind, EdgeKind::Sampled) {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    ready.push_back(e.to);
                }
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Base service time (s), active-power energy rate (W while serving),
/// and effective-platform label for one node. Pure — safe to fan out.
fn cost_node(d: &crate::graph::NodeDecl) -> (f64, f64, Option<String>) {
    let Role::Server(spec) = &d.role else { return (0.0, 0.0, None) };
    let platform = d.placement.as_ref().map(crate::Placement::effective_platform);
    let label = platform.as_ref().map(|p| p.name().to_string());
    match &spec.service {
        Service::Fixed(s) => {
            let base = s.value() / spec.speedup;
            let watts = platform.as_ref().map_or(0.0, |p| p.active_power().value());
            (base, watts, label)
        }
        Service::Kernel(profile) => {
            let p = platform.as_ref().expect("kernel placement validated at seal");
            let est = p.estimate(profile);
            let base = est.latency.value() / spec.speedup;
            // Energy as a rate so contention stretch scales it too.
            let watts = if base > 0.0 { est.energy.value() / base } else { 0.0 };
            (base, watts, label)
        }
    }
}

/// Sustained memory demand of a placed node: incoming message traffic
/// plus the kernel's own per-invocation traffic at the node's rate.
fn node_demand(
    i: usize,
    decls: &[crate::graph::NodeDecl],
    edges: &[EdgeDecl],
    rates: &[f64],
) -> f64 {
    let incoming: f64 = edges
        .iter()
        .filter(|e| e.to == i)
        .map(|e| {
            let bytes = match &decls[e.from].role {
                Role::Source(s) => s.payload.value(),
                Role::Server(s) => s.output.value(),
                Role::Sink(_) => 0.0,
            };
            rates[e.from] * bytes
        })
        .sum();
    let kernel: f64 = match &decls[i].role {
        Role::Server(spec) => match &spec.service {
            Service::Kernel(profile) => profile.bytes().value() * rates[i],
            Service::Fixed(_) => 0.0,
        },
        _ => 0.0,
    };
    incoming + kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeSpec, GraphBuilder, ServerSpec, SinkSpec, SourceSpec};
    use crate::message::MessageType;
    use crate::placement::Placement;
    use m7_arch::platform::PlatformKind;
    use m7_units::Bytes;

    struct Frame;
    impl MessageType for Frame {
        const NAME: &'static str = "frame";
    }
    struct Cmd;
    impl MessageType for Cmd {
        const NAME: &'static str = "cmd";
    }

    fn chain(rate: f64, service_ms: f64, capacity: usize, policy: QueuePolicy) -> Graph {
        let mut g = GraphBuilder::new("t");
        let src = g
            .source::<Frame>("src", SourceSpec::new(Hertz::new(rate), Bytes::new(1000.0)))
            .unwrap();
        let srv = g
            .server::<Frame, Cmd>(
                "srv",
                ServerSpec::new(Service::fixed(Seconds::from_millis(service_ms))),
            )
            .unwrap();
        let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
        g.connect(src, srv, EdgeSpec::queue(capacity).policy(policy)).unwrap();
        g.connect(srv, out, EdgeSpec::wire()).unwrap();
        g.seal(ParConfig::serial()).unwrap()
    }

    #[test]
    fn underloaded_chain_processes_every_firing() {
        let r = chain(10.0, 1.0, 2, QueuePolicy::DropNewest).run(Seconds::new(1.0)).unwrap();
        let fired = r.node("src").unwrap().fired;
        assert_eq!(fired, 11);
        // The final firing's completion lands past the horizon.
        assert_eq!(r.node("srv").unwrap().processed, fired - 1);
        assert_eq!(r.node("out").unwrap().received, fired - 1);
        assert_eq!(r.edge("src", "srv").unwrap().dropped, 0);
        // Service is 1 ms end to end.
        let out = r.node("out").unwrap();
        assert!((out.mean_latency.value() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn overloaded_drop_newest_drops_and_bounds_depth() {
        // 100 Hz into a 25 ms server: ~60% of frames dropped.
        let r = chain(100.0, 25.0, 2, QueuePolicy::DropNewest).run(Seconds::new(1.0)).unwrap();
        let e = r.edge("src", "srv").unwrap();
        assert!(e.dropped > 0, "overload must drop");
        assert!(e.max_depth <= 2);
        assert_eq!(
            r.node("src").unwrap().fired,
            e.delivered + e.dropped,
            "every firing is either delivered or dropped"
        );
    }

    #[test]
    fn drop_oldest_keeps_latest_latencies_bounded() {
        let newest = chain(100.0, 25.0, 2, QueuePolicy::DropNewest).run(Seconds::new(2.0)).unwrap();
        let oldest = chain(100.0, 25.0, 2, QueuePolicy::DropOldest).run(Seconds::new(2.0)).unwrap();
        // Same loss volume, but drop-oldest serves fresher frames.
        assert!(oldest.edge("src", "srv").unwrap().dropped > 0);
        assert!(oldest.node("out").unwrap().p99_latency <= newest.node("out").unwrap().p99_latency);
    }

    #[test]
    fn block_policy_backpressures_the_producer() {
        // src --queue--> a (1 ms) --queue(cap 1, Block)--> b (50 ms) --wire--> out
        let mut g = GraphBuilder::new("bp");
        let src = g
            .source::<Frame>("src", SourceSpec::new(Hertz::new(100.0), Bytes::new(100.0)))
            .unwrap();
        let a = g
            .server::<Frame, Frame>("a", ServerSpec::new(Service::fixed(Seconds::from_millis(1.0))))
            .unwrap();
        let b = g
            .server::<Frame, Cmd>("b", ServerSpec::new(Service::fixed(Seconds::from_millis(50.0))))
            .unwrap();
        let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
        g.connect(src, a, EdgeSpec::queue(4)).unwrap();
        g.connect(a, b, EdgeSpec::queue(1).policy(QueuePolicy::Block)).unwrap();
        g.connect(b, out, EdgeSpec::wire()).unwrap();
        let r = g.seal(ParConfig::serial()).unwrap().run(Seconds::new(1.0)).unwrap();
        let ab = r.edge("a", "b").unwrap();
        assert!(ab.blocked > 0, "a must park on the full edge");
        assert_eq!(ab.dropped, 0, "Block never drops");
        // While a is blocked it stops draining its own queue, so the
        // bounded src->a queue overflows instead.
        assert!(r.edge("src", "a").unwrap().dropped > 0);
        // b is the bottleneck: one frame per 50 ms, first completion at
        // 51 ms, last inside the horizon at 951 ms.
        assert_eq!(r.node("b").unwrap().processed, 19);
    }

    #[test]
    fn sampled_edge_supersedes_instead_of_queueing() {
        // Fast IMU sampled by a server triggered by a slow camera:
        // most samples are overwritten unread, none are queued.
        let mut g = GraphBuilder::new("s");
        let imu =
            g.source::<Cmd>("imu", SourceSpec::new(Hertz::new(100.0), Bytes::new(24.0))).unwrap();
        let cam =
            g.source::<Cmd>("cam", SourceSpec::new(Hertz::new(10.0), Bytes::new(1000.0))).unwrap();
        let fuse = g
            .server::<Cmd, Cmd>("fuse", ServerSpec::new(Service::fixed(Seconds::from_millis(5.0))))
            .unwrap();
        let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
        g.connect(cam, fuse, EdgeSpec::queue(2)).unwrap();
        g.connect(imu, fuse, EdgeSpec::sampled()).unwrap();
        g.connect(fuse, out, EdgeSpec::wire()).unwrap();
        let r = g.seal(ParConfig::serial()).unwrap().run(Seconds::new(1.0)).unwrap();
        let se = r.edge("imu", "fuse").unwrap();
        // 100 IMU samples written, only ~11 read: most are superseded.
        assert_eq!(se.delivered, 100);
        assert!(se.superseded > 80, "unread samples must be superseded, got {}", se.superseded);
        assert_eq!(se.dropped, 0);
        assert_eq!(se.max_depth, 0, "sampled edges never queue");
    }

    #[test]
    fn transport_latency_shifts_sink_latency() {
        let mut g = GraphBuilder::new("lat");
        let src =
            g.source::<Frame>("src", SourceSpec::new(Hertz::new(10.0), Bytes::new(1.0))).unwrap();
        let srv = g
            .server::<Frame, Cmd>("srv", ServerSpec::new(Service::fixed(Seconds::from_millis(1.0))))
            .unwrap();
        let out =
            g.sink::<Cmd>("out", SinkSpec::new().deadline(Seconds::from_millis(2.0))).unwrap();
        g.connect(src, srv, EdgeSpec::queue(1)).unwrap();
        g.connect(srv, out, EdgeSpec::wire().latency(Seconds::from_millis(2.0))).unwrap();
        let r = g.seal(ParConfig::serial()).unwrap().run(Seconds::new(1.0)).unwrap();
        let o = r.node("out").unwrap();
        assert!((o.mean_latency.value() - 3e-3).abs() < 1e-9);
        // 1 ms service + 2 ms wire > 2 ms deadline: every frame late.
        assert_eq!(o.deadline_misses, o.received);
    }

    #[test]
    fn lossy_edge_is_seed_deterministic() {
        let build = || {
            let mut g = GraphBuilder::new("loss");
            let src = g
                .source::<Frame>("src", SourceSpec::new(Hertz::new(200.0), Bytes::new(1.0)))
                .unwrap();
            let srv = g
                .server::<Frame, Cmd>(
                    "srv",
                    ServerSpec::new(Service::fixed(Seconds::from_millis(1.0))),
                )
                .unwrap();
            let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
            g.connect(src, srv, EdgeSpec::queue(2).loss(LossModel::constant(0.3))).unwrap();
            g.connect(srv, out, EdgeSpec::wire()).unwrap();
            g.seal(ParConfig::serial()).unwrap()
        };
        let a = build().run_seeded(Seconds::new(2.0), 7).unwrap();
        let b = build().run_seeded(Seconds::new(2.0), 7).unwrap();
        let c = build().run_seeded(Seconds::new(2.0), 8).unwrap();
        let lost = |r: &GraphReport| r.edge("src", "srv").unwrap().lost;
        assert_eq!(lost(&a), lost(&b), "same seed, same losses");
        assert!(lost(&a) > 50, "30% of 401 firings should be lost, got {}", lost(&a));
        assert_ne!(
            a.node("out").unwrap().latencies,
            c.node("out").unwrap().latencies,
            "different seeds should diverge"
        );
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let build = |par: ParConfig| {
            let mut g = GraphBuilder::new("det");
            let cam = g
                .source::<Frame>("cam", SourceSpec::new(Hertz::new(97.0), Bytes::new(5000.0)))
                .unwrap();
            let srv = g
                .server::<Frame, Cmd>(
                    "srv",
                    ServerSpec::new(Service::fixed(Seconds::from_millis(7.0))),
                )
                .unwrap();
            let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
            g.connect(cam, srv, EdgeSpec::queue(3).loss(LossModel::constant(0.1))).unwrap();
            g.connect(srv, out, EdgeSpec::wire()).unwrap();
            g.seal(par).unwrap()
        };
        let serial = build(ParConfig::serial()).run_seeded(Seconds::new(3.0), 42).unwrap();
        let wide = build(ParConfig::with_threads(8)).run_seeded(Seconds::new(3.0), 42).unwrap();
        assert_eq!(serial.node("out").unwrap().latencies, wide.node("out").unwrap().latencies);
        assert_eq!(serial.edge("cam", "srv").unwrap().lost, wide.edge("cam", "srv").unwrap().lost);
        assert_eq!(serial.node("srv").unwrap().processed, wide.node("srv").unwrap().processed);
    }

    #[test]
    fn contention_stretches_co_located_services() {
        let build = |shared: bool| {
            let mut g = GraphBuilder::new("bus");
            // Deliberately undersized: combined demand oversubscribes
            // the bus so co-located services visibly stretch.
            g.shared_site("soc0", BytesPerSecond::new(5e7));
            let cam = g
                .source::<Frame>("cam", SourceSpec::new(Hertz::new(30.0), Bytes::new(2e6)))
                .unwrap();
            let pre = g
                .server::<Frame, Frame>(
                    "pre",
                    ServerSpec::new(Service::kernel(
                        m7_arch::workload::KernelProfile::feature_extract(1280, 720),
                    )),
                )
                .unwrap();
            let plan = g
                .server::<Frame, Cmd>(
                    "plan",
                    ServerSpec::new(Service::kernel(m7_arch::workload::KernelProfile::gemm(256))),
                )
                .unwrap();
            let out = g.sink::<Cmd>("out", SinkSpec::new()).unwrap();
            g.connect(cam, pre, EdgeSpec::queue(2)).unwrap();
            g.connect(pre, plan, EdgeSpec::queue(2)).unwrap();
            g.connect(plan, out, EdgeSpec::wire()).unwrap();
            let mut place = |n, kind| {
                let p = Placement::preset(kind);
                let p = if shared { p.at_site("soc0") } else { p };
                g.place(n, p).unwrap();
            };
            place(pre, PlatformKind::CpuSimd);
            place(plan, PlatformKind::CpuSimd);
            g.seal(ParConfig::serial()).unwrap()
        };
        let alone = build(false).run(Seconds::new(1.0)).unwrap();
        let contended = build(true).run(Seconds::new(1.0)).unwrap();
        let svc = |r: &GraphReport, n: &str| r.node(n).unwrap().service.unwrap();
        assert!(contended.node("pre").unwrap().slowdown > 1.0);
        assert!(svc(&contended, "pre") > svc(&alone, "pre"));
        assert_eq!(alone.node("pre").unwrap().slowdown, 1.0);
    }

    #[test]
    fn nan_duration_is_a_typed_error_not_a_hang() {
        let g = chain(10.0, 1.0, 1, QueuePolicy::DropNewest);
        assert!(matches!(g.run(Seconds::new(f64::NAN)), Err(FlowError::InvalidDuration { .. })));
        assert!(matches!(g.run(Seconds::new(-1.0)), Err(FlowError::InvalidDuration { .. })));
        assert!(matches!(
            g.run(Seconds::new(f64::INFINITY)),
            Err(FlowError::InvalidDuration { .. })
        ));
    }

    #[test]
    fn zero_duration_processes_only_t0() {
        let r = chain(10.0, 1.0, 1, QueuePolicy::DropNewest).run(Seconds::ZERO).unwrap();
        assert_eq!(r.node("src").unwrap().fired, 1);
        assert_eq!(r.node("srv").unwrap().processed, 0, "service ends after the horizon");
    }
}
