//! # m7-flow — typed dataflow-graph runtime
//!
//! The perception → planning → control chain of an autonomous system is
//! not a fixed stage pipeline: sensors tick at different rates, fusion
//! nodes consume the freshest sample rather than every sample, planners
//! apply backpressure, and every node may live on a different piece of
//! silicon. This crate models that chain as a **typed dataflow graph**
//! (after "Dataflow Accelerator Architecture for Autonomous Machine
//! Computing", arXiv 2109.07047):
//!
//! - **Nodes** declare their message types, firing rates, service
//!   models, and deadlines ([`GraphBuilder::source`],
//!   [`GraphBuilder::server`], [`GraphBuilder::sink`]).
//! - **Edges** are bounded queues with explicit [`QueuePolicy`] drop /
//!   backpressure semantics, optional transport latency, and optional
//!   seeded message loss ([`EdgeSpec`], [`LossModel`]).
//! - **Placement**: each node can carry a [`Placement`] — a platform
//!   preset or a spec-DSL text from `m7-arch`, an optional DVFS
//!   operating point, and an optional shared bus site — so service
//!   times reflect the silicon the node runs on, including contention
//!   between co-located nodes.
//! - **Execution** is a deterministic virtual-time event simulation:
//!   events are ordered by timestamp with FIFO tie-breaking
//!   ([`vtime::EventQueue`]), same-timestamp batches are evaluated
//!   out-of-order on the `m7-par` pool and committed in sequence
//!   order, so reports are **bit-identical at any thread count**.
//!
//! # Example
//!
//! ```
//! use m7_flow::{EdgeSpec, GraphBuilder, MessageType, ServerSpec, Service, SinkSpec, SourceSpec};
//! use m7_par::ParConfig;
//! use m7_units::{Bytes, Hertz, Seconds};
//!
//! struct Frame;
//! impl MessageType for Frame {
//!     const NAME: &'static str = "frame";
//! }
//! struct Command;
//! impl MessageType for Command {
//!     const NAME: &'static str = "command";
//! }
//!
//! let mut g = GraphBuilder::new("demo");
//! let cam = g.source::<Frame>("camera", SourceSpec::new(Hertz::new(30.0), Bytes::new(640.0 * 480.0))).unwrap();
//! let plan = g
//!     .server::<Frame, Command>("planner", ServerSpec::new(Service::fixed(Seconds::from_millis(10.0))))
//!     .unwrap();
//! let out = g.sink::<Command>("control", SinkSpec::new()).unwrap();
//! g.connect(cam, plan, EdgeSpec::queue(2)).unwrap();
//! g.connect(plan, out, EdgeSpec::wire()).unwrap();
//! let graph = g.seal(ParConfig::serial()).unwrap();
//! let report = graph.run(Seconds::new(1.0)).unwrap();
//! assert_eq!(report.node("camera").unwrap().fired, 31); // t = 0, 1/30, …, 30/30
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod graph;
pub mod message;
pub mod placement;
pub mod policy;
pub mod vtime;

pub use engine::{EdgeReport, GraphReport, NodeReport};
pub use graph::{
    EdgeId, EdgeSpec, FlowError, Graph, GraphBuilder, LossModel, LossSeed, NodeId, ServerSpec,
    Service, SinkSpec, SourceSpec,
};
pub use message::{MessageType, PortType};
pub use placement::Placement;
pub use policy::QueuePolicy;
