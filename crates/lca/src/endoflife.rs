//! End-of-life management: recycling recovery and lifetime-extension
//! accounting (the paper's §3.3 "Lifecycle Analysis & End-of-Life
//! Management").

use crate::embodied::DieSpec;
use m7_units::KilogramsCo2e;
use serde::{Deserialize, Serialize};

/// What happens to a device at end of life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EndOfLife {
    /// Landfill: nothing recovered.
    Landfill,
    /// Material recycling: a fraction of the embodied carbon of the *next*
    /// device is avoided by recovered materials.
    Recycle {
        /// Fraction of embodied carbon credited back, in `[0, 1]`.
        recovery_fraction: f64,
    },
    /// Re-deployment into a second, lower-duty life (e.g. an inference
    /// accelerator retired into a teaching lab).
    SecondLife {
        /// Additional service years obtained.
        extra_years: f64,
    },
}

/// Amortized embodied carbon per service-year for a device with the given
/// first-life duration and end-of-life treatment.
///
/// # Panics
///
/// Panics if `service_years` is not positive, a recovery fraction is
/// outside `[0, 1]`, or `extra_years` is negative.
///
/// # Examples
///
/// ```
/// use m7_lca::embodied::DieSpec;
/// use m7_lca::endoflife::{amortized_embodied, EndOfLife};
/// use m7_units::SquareMillimeters;
///
/// let die = DieSpec::new(SquareMillimeters::new(100.0), 7.0);
/// let landfill = amortized_embodied(&die, 3.0, EndOfLife::Landfill);
/// let second_life = amortized_embodied(&die, 3.0, EndOfLife::SecondLife { extra_years: 3.0 });
/// assert!(second_life.value() < landfill.value() * 0.6);
/// ```
#[must_use]
pub fn amortized_embodied(die: &DieSpec, service_years: f64, eol: EndOfLife) -> KilogramsCo2e {
    assert!(service_years > 0.0, "service years must be positive");
    let embodied = die.embodied_carbon();
    match eol {
        EndOfLife::Landfill => embodied / service_years,
        EndOfLife::Recycle { recovery_fraction } => {
            assert!(
                (0.0..=1.0).contains(&recovery_fraction),
                "recovery fraction must be within [0, 1]"
            );
            embodied * (1.0 - recovery_fraction) / service_years
        }
        EndOfLife::SecondLife { extra_years } => {
            assert!(extra_years >= 0.0, "extra years must be non-negative");
            embodied / (service_years + extra_years)
        }
    }
}

/// Representative recovery fractions by recycling process quality.
#[must_use]
pub fn typical_recovery(process: RecyclingProcess) -> f64 {
    match process {
        RecyclingProcess::Shredding => 0.10,
        RecyclingProcess::Smelting => 0.25,
        RecyclingProcess::ComponentHarvesting => 0.45,
    }
}

/// Recycling process classes, coarsest to most careful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecyclingProcess {
    /// Bulk shredding and material sorting.
    Shredding,
    /// Precious-metal smelting recovery.
    Smelting,
    /// Desoldering and reusing whole components.
    ComponentHarvesting,
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_units::SquareMillimeters;

    fn die() -> DieSpec {
        DieSpec::new(SquareMillimeters::new(100.0), 7.0)
    }

    #[test]
    fn landfill_is_worst() {
        let d = die();
        let landfill = amortized_embodied(&d, 4.0, EndOfLife::Landfill);
        let recycle = amortized_embodied(&d, 4.0, EndOfLife::Recycle { recovery_fraction: 0.25 });
        let second = amortized_embodied(&d, 4.0, EndOfLife::SecondLife { extra_years: 4.0 });
        assert!(recycle < landfill);
        assert!(second < landfill);
    }

    #[test]
    fn longer_service_amortizes_linearly() {
        let d = die();
        let three = amortized_embodied(&d, 3.0, EndOfLife::Landfill);
        let six = amortized_embodied(&d, 6.0, EndOfLife::Landfill);
        assert!((three.value() / six.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_recovery_zeroes_amortized_carbon() {
        let d = die();
        let z = amortized_embodied(&d, 5.0, EndOfLife::Recycle { recovery_fraction: 1.0 });
        assert_eq!(z, KilogramsCo2e::ZERO);
    }

    #[test]
    fn recovery_fractions_are_ordered() {
        assert!(
            typical_recovery(RecyclingProcess::Shredding)
                < typical_recovery(RecyclingProcess::Smelting)
        );
        assert!(
            typical_recovery(RecyclingProcess::Smelting)
                < typical_recovery(RecyclingProcess::ComponentHarvesting)
        );
    }

    #[test]
    #[should_panic(expected = "recovery fraction")]
    fn rejects_bad_recovery() {
        let _ = amortized_embodied(&die(), 1.0, EndOfLife::Recycle { recovery_fraction: 1.5 });
    }
}
