//! Grid intensities, operational emissions, and combined lifecycle
//! footprints.

use m7_units::{CarbonIntensity, GramsCo2e, Joules, KilogramsCo2e, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Representative grid carbon intensities (gCO₂e/kWh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridIntensity {
    /// World average grid.
    WorldAverage,
    /// United States average.
    UnitedStates,
    /// European Union average.
    EuropeanUnion,
    /// Coal-heavy regional grid.
    CoalHeavy,
    /// Hydro/nuclear-dominated grid.
    LowCarbon,
    /// Dedicated solar + storage.
    Solar,
}

impl GridIntensity {
    /// The intensity value.
    #[must_use]
    pub fn value(self) -> CarbonIntensity {
        CarbonIntensity::new(match self {
            Self::WorldAverage => 480.0,
            Self::UnitedStates => 390.0,
            Self::EuropeanUnion => 280.0,
            Self::CoalHeavy => 820.0,
            Self::LowCarbon => 50.0,
            Self::Solar => 40.0,
        })
    }
}

/// A combined embodied + operational carbon footprint.
///
/// # Examples
///
/// ```
/// use m7_lca::carbon::{CarbonFootprint, GridIntensity};
/// use m7_units::{Joules, KilogramsCo2e};
///
/// let fp = CarbonFootprint::new(KilogramsCo2e::new(10.0))
///     .add_operation(Joules::from_kilowatt_hours(100.0), GridIntensity::UnitedStates);
/// assert!(fp.total().value() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonFootprint {
    embodied: KilogramsCo2e,
    operational: KilogramsCo2e,
}

impl CarbonFootprint {
    /// Creates a footprint with the given embodied carbon and zero
    /// operational carbon.
    #[must_use]
    pub fn new(embodied: KilogramsCo2e) -> Self {
        Self { embodied, operational: KilogramsCo2e::ZERO }
    }

    /// Adds operational emissions for `energy` drawn from `grid`.
    #[must_use]
    pub fn add_operation(mut self, energy: Joules, grid: GridIntensity) -> Self {
        let grams: GramsCo2e = grid.value().emissions_for(energy);
        self.operational += grams.to_kilograms();
        self
    }

    /// Embodied component.
    #[must_use]
    pub fn embodied(&self) -> KilogramsCo2e {
        self.embodied
    }

    /// Operational component.
    #[must_use]
    pub fn operational(&self) -> KilogramsCo2e {
        self.operational
    }

    /// Total lifecycle carbon.
    #[must_use]
    pub fn total(&self) -> KilogramsCo2e {
        self.embodied + self.operational
    }

    /// Fraction of the total that is embodied — high values mean the
    /// hardware should live longer or be reused (chiplets), the paper's
    /// end-of-life argument.
    #[must_use]
    pub fn embodied_fraction(&self) -> f64 {
        let total = self.total();
        if total.value() <= 0.0 {
            return 0.0;
        }
        self.embodied / total
    }
}

/// Operational carbon of a device drawing `power` continuously for
/// `duration` on `grid`, with a facility overhead factor `pue` (power
/// usage effectiveness; 1.0 = no overhead).
///
/// # Panics
///
/// Panics if `pue < 1.0`.
#[must_use]
pub fn operational_carbon(
    power: Watts,
    duration: Seconds,
    grid: GridIntensity,
    pue: f64,
) -> KilogramsCo2e {
    assert!(pue >= 1.0, "PUE cannot be below 1.0");
    let energy: Joules = power * duration * pue;
    grid.value().emissions_for(energy).to_kilograms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ordering() {
        assert!(GridIntensity::CoalHeavy.value() > GridIntensity::WorldAverage.value());
        assert!(GridIntensity::WorldAverage.value() > GridIntensity::EuropeanUnion.value());
        assert!(GridIntensity::EuropeanUnion.value() > GridIntensity::Solar.value());
    }

    #[test]
    fn footprint_accumulates() {
        let fp = CarbonFootprint::new(KilogramsCo2e::new(5.0))
            .add_operation(Joules::from_kilowatt_hours(10.0), GridIntensity::WorldAverage)
            .add_operation(Joules::from_kilowatt_hours(10.0), GridIntensity::WorldAverage);
        // 20 kWh × 480 g/kWh = 9.6 kg.
        assert!((fp.operational().value() - 9.6).abs() < 1e-9);
        assert!((fp.total().value() - 14.6).abs() < 1e-9);
        assert!((fp.embodied_fraction() - 5.0 / 14.6).abs() < 1e-9);
    }

    #[test]
    fn zero_footprint_fraction() {
        let fp = CarbonFootprint::new(KilogramsCo2e::ZERO);
        assert_eq!(fp.embodied_fraction(), 0.0);
    }

    #[test]
    fn operational_carbon_scales_with_pue() {
        let base = operational_carbon(
            Watts::new(100.0),
            Seconds::from_hours(1000.0),
            GridIntensity::UnitedStates,
            1.0,
        );
        let datacenter = operational_carbon(
            Watts::new(100.0),
            Seconds::from_hours(1000.0),
            GridIntensity::UnitedStates,
            1.5,
        );
        assert!((datacenter.value() / base.value() - 1.5).abs() < 1e-9);
        // 100 kWh × 390 = 39 kg.
        assert!((base.value() - 39.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn rejects_sub_unity_pue() {
        let _ = operational_carbon(Watts::new(1.0), Seconds::new(1.0), GridIntensity::Solar, 0.9);
    }
}
