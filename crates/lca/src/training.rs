//! Edge-vs-cloud ML training carbon comparison.
//!
//! The paper cites the finding that training on edge devices can emit
//! *more* carbon than cloud training despite the datacenter's overheads,
//! because cloud accelerators are far more energy-efficient per operation.
//! This module reproduces the comparison.

use crate::carbon::{operational_carbon, GridIntensity};
use m7_units::{Joules, KilogramsCo2e, Ops, OpsPerJoule, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Where a training job runs, and with what efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingVenue {
    /// Human-readable venue label.
    pub name: &'static str,
    /// Hardware energy efficiency.
    pub efficiency: OpsPerJoule,
    /// Facility overhead (PUE); edge devices have none (1.0).
    pub pue: f64,
    /// The grid powering the venue.
    pub grid: GridIntensity,
}

impl TrainingVenue {
    /// A cloud datacenter: efficient accelerators, some facility overhead,
    /// typically sited on cleaner grids.
    #[must_use]
    pub fn cloud() -> Self {
        Self {
            name: "cloud",
            efficiency: OpsPerJoule::from_tops_per_watt(1.5),
            pue: 1.1,
            grid: GridIntensity::LowCarbon,
        }
    }

    /// An edge device: no facility overhead, but an order of magnitude
    /// less efficient silicon on the local (average) grid.
    #[must_use]
    pub fn edge() -> Self {
        Self {
            name: "edge",
            efficiency: OpsPerJoule::from_tops_per_watt(0.08),
            pue: 1.0,
            grid: GridIntensity::WorldAverage,
        }
    }
}

/// A training job characterized by its total operation count.
///
/// # Examples
///
/// ```
/// use m7_lca::training::{TrainingJob, TrainingVenue};
/// use m7_units::Ops;
///
/// let job = TrainingJob::new(Ops::new(1e18));
/// let cloud = job.emissions(&TrainingVenue::cloud());
/// let edge = job.emissions(&TrainingVenue::edge());
/// // The paper's cited result shape: edge training emits more.
/// assert!(edge > cloud);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingJob {
    total_ops: Ops,
}

impl TrainingJob {
    /// Creates a job that must execute `total_ops` operations.
    ///
    /// # Panics
    ///
    /// Panics if the count is non-positive or non-finite.
    #[must_use]
    pub fn new(total_ops: Ops) -> Self {
        assert!(total_ops.value() > 0.0 && total_ops.is_finite(), "op count must be positive");
        Self { total_ops }
    }

    /// Total operations.
    #[must_use]
    pub fn total_ops(&self) -> Ops {
        self.total_ops
    }

    /// Energy the job draws at `venue` (before facility overhead).
    #[must_use]
    pub fn energy(&self, venue: &TrainingVenue) -> Joules {
        self.total_ops / venue.efficiency
    }

    /// Lifecycle-operational emissions of running the job at `venue`.
    #[must_use]
    pub fn emissions(&self, venue: &TrainingVenue) -> KilogramsCo2e {
        // Express the job as 1 W for `energy` seconds; PUE scales inside.
        let energy = self.energy(venue);
        operational_carbon(Watts::new(1.0), Seconds::new(energy.value()), venue.grid, venue.pue)
    }

    /// The edge-to-cloud emission ratio for this job — the headline number
    /// of experiment E8b.
    #[must_use]
    pub fn edge_to_cloud_ratio(&self) -> f64 {
        self.emissions(&TrainingVenue::edge()) / self.emissions(&TrainingVenue::cloud())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_dirtier_for_same_job() {
        let job = TrainingJob::new(Ops::new(1e18));
        let ratio = job.edge_to_cloud_ratio();
        assert!(ratio > 10.0, "edge/cloud ratio {ratio} should be large");
        assert!(ratio < 1000.0, "but not absurd");
    }

    #[test]
    fn ratio_is_independent_of_job_size() {
        let small = TrainingJob::new(Ops::new(1e15)).edge_to_cloud_ratio();
        let large = TrainingJob::new(Ops::new(1e20)).edge_to_cloud_ratio();
        assert!((small - large).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_ops() {
        let cloud = TrainingVenue::cloud();
        let a = TrainingJob::new(Ops::new(1e15)).energy(&cloud);
        let b = TrainingJob::new(Ops::new(2e15)).energy(&cloud);
        assert!((b.value() / a.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cloud_emissions_are_plausible() {
        // A 1e24-op (large-language-model-class) job on cloud hardware:
        // 1e24 / 1.5e12 ops/J ≈ 667 GJ ≈ 185 MWh; at 50 g/kWh × 1.1 ≈ 10 t.
        let job = TrainingJob::new(Ops::new(1e24));
        let t = job.emissions(&TrainingVenue::cloud()).value() / 1000.0;
        assert!(t > 5.0 && t < 20.0, "got {t} tonnes");
    }

    #[test]
    fn venue_presets_differ_as_documented() {
        let cloud = TrainingVenue::cloud();
        let edge = TrainingVenue::edge();
        assert!(cloud.efficiency > edge.efficiency);
        assert!(cloud.pue > edge.pue);
    }
}
