//! Fleet-scale compute emissions: the "datacenters on wheels" model.
//!
//! The paper cites the result that a global autonomous-vehicle fleet's
//! onboard computers could rival datacenters in emissions. This module
//! reproduces that accounting: per-vehicle compute power × duty cycle ×
//! fleet size, compared against a hyperscale-datacenter baseline.

use crate::carbon::{operational_carbon, GridIntensity};
use m7_units::{KilogramsCo2e, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A deployed fleet of autonomous vehicles with onboard compute.
///
/// # Examples
///
/// ```
/// use m7_lca::fleet::FleetModel;
/// use m7_units::Watts;
///
/// // The paper's headline scenario shape: ~100M AVs at ~1kW onboard.
/// let fleet = FleetModel::new(100_000_000, Watts::new(1000.0), 8.0);
/// let annual = fleet.annual_emissions();
/// // Hundreds of megatonnes-scale? No: ~140 Mt at world-average grid —
/// // datacenter-class.
/// assert!(annual.value() > 1e11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetModel {
    vehicles: u64,
    compute_power: Watts,
    duty_hours_per_day: f64,
    grid: GridIntensity,
}

impl FleetModel {
    /// Creates a fleet of `vehicles` each drawing `compute_power` for
    /// `duty_hours_per_day`, on the world-average grid.
    ///
    /// # Panics
    ///
    /// Panics if `duty_hours_per_day` is outside `[0, 24]`.
    #[must_use]
    pub fn new(vehicles: u64, compute_power: Watts, duty_hours_per_day: f64) -> Self {
        assert!((0.0..=24.0).contains(&duty_hours_per_day), "duty hours must be within a day");
        Self { vehicles, compute_power, duty_hours_per_day, grid: GridIntensity::WorldAverage }
    }

    /// Overrides the charging grid.
    #[must_use]
    pub fn with_grid(mut self, grid: GridIntensity) -> Self {
        self.grid = grid;
        self
    }

    /// Number of vehicles.
    #[must_use]
    pub fn vehicles(&self) -> u64 {
        self.vehicles
    }

    /// Per-vehicle compute power.
    #[must_use]
    pub fn compute_power(&self) -> Watts {
        self.compute_power
    }

    /// Total fleet compute power while operating.
    #[must_use]
    pub fn fleet_power(&self) -> Watts {
        self.compute_power * self.vehicles as f64
    }

    /// Annual per-vehicle compute energy duty time.
    #[must_use]
    pub fn annual_duty(&self) -> Seconds {
        Seconds::from_hours(self.duty_hours_per_day * 365.0)
    }

    /// Annual fleet-wide compute emissions.
    #[must_use]
    pub fn annual_emissions(&self) -> KilogramsCo2e {
        let per_vehicle =
            operational_carbon(self.compute_power, self.annual_duty(), self.grid, 1.0);
        per_vehicle * self.vehicles as f64
    }

    /// The fleet's annual emissions as a multiple of a reference
    /// hyperscale datacenter (100 MW IT load, PUE 1.2, 24/7, same grid).
    #[must_use]
    pub fn datacenter_equivalents(&self) -> f64 {
        let dc = operational_carbon(
            Watts::new(100e6),
            Seconds::from_hours(24.0 * 365.0),
            self.grid,
            1.2,
        );
        self.annual_emissions() / dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vehicle_sanity() {
        // 1 kW for 8 h/day ≈ 2920 kWh/yr ⇒ ~1.4 t at world average.
        let one = FleetModel::new(1, Watts::new(1000.0), 8.0);
        let kg = one.annual_emissions().value();
        assert!(kg > 1200.0 && kg < 1600.0, "got {kg}");
    }

    #[test]
    fn fleet_scales_linearly() {
        let one = FleetModel::new(1, Watts::new(1000.0), 8.0).annual_emissions();
        let million = FleetModel::new(1_000_000, Watts::new(1000.0), 8.0).annual_emissions();
        assert!((million.value() / one.value() - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn headline_fleet_rivals_datacenters() {
        // The paper's cited claim shape: a large AV fleet exceeds a
        // hyperscale datacenter's footprint by orders of magnitude.
        let fleet = FleetModel::new(100_000_000, Watts::new(840.0), 8.0);
        assert!(fleet.datacenter_equivalents() > 100.0);
    }

    #[test]
    fn efficient_compute_cuts_fleet_emissions_proportionally() {
        let hungry = FleetModel::new(1_000_000, Watts::new(1000.0), 8.0).annual_emissions();
        let lean = FleetModel::new(1_000_000, Watts::new(100.0), 8.0).annual_emissions();
        assert!((hungry.value() / lean.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cleaner_grid_helps() {
        let dirty = FleetModel::new(1000, Watts::new(500.0), 8.0)
            .with_grid(GridIntensity::CoalHeavy)
            .annual_emissions();
        let clean = FleetModel::new(1000, Watts::new(500.0), 8.0)
            .with_grid(GridIntensity::LowCarbon)
            .annual_emissions();
        assert!(dirty.value() / clean.value() > 10.0);
    }

    #[test]
    #[should_panic(expected = "duty hours")]
    fn rejects_impossible_duty() {
        let _ = FleetModel::new(1, Watts::new(1.0), 25.0);
    }
}
