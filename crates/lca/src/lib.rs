//! Lifecycle and carbon analysis for accelerators and autonomous systems.
//!
//! The paper's Challenge 7 ("Design Global") argues that accelerator
//! design must account for embodied manufacturing carbon, operational
//! carbon at deployment scale, and end-of-life reuse. This crate implements
//! an ACT-style accounting model:
//!
//! - [`embodied`] — manufacturing carbon from die area, process node,
//!   yield, and packaging.
//! - [`carbon`] — grids, operational emissions, and combined footprints.
//! - [`fleet`] — "datacenters on wheels": fleet-scale compute emissions for
//!   autonomous-vehicle deployments.
//! - [`training`] — edge-vs-cloud ML training comparison.
//! - [`chiplet`] — chiplet/monolithic embodied-carbon comparison with
//!   cross-generation reuse.
//!
//! Experiment E8 regenerates the paper's cited results from these models.
//!
//! # Examples
//!
//! ```
//! use m7_lca::embodied::DieSpec;
//! use m7_units::SquareMillimeters;
//!
//! let soc = DieSpec::new(SquareMillimeters::new(100.0), 7.0);
//! let footprint = soc.embodied_carbon();
//! assert!(footprint.value() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod carbon;
pub mod chiplet;
pub mod embodied;
pub mod endoflife;
pub mod fleet;
pub mod training;
