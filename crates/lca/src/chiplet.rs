//! Chiplet vs. monolithic embodied carbon, with cross-generation reuse —
//! the paper's sustainability argument for modular hardware.

use crate::embodied::DieSpec;
use m7_units::{KilogramsCo2e, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// A system built either as one monolithic die or as several chiplets of
/// equal total area.
///
/// # Examples
///
/// ```
/// use m7_lca::chiplet::SystemDesign;
/// use m7_units::SquareMillimeters;
///
/// let mono = SystemDesign::monolithic(SquareMillimeters::new(600.0), 7.0);
/// let chiplets = SystemDesign::chiplets(SquareMillimeters::new(600.0), 7.0, 4);
/// // Splitting the die recovers yield: less embodied carbon.
/// assert!(chiplets.embodied_carbon() < mono.embodied_carbon());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemDesign {
    total_area: SquareMillimeters,
    node_nm: f64,
    chiplet_count: usize,
    /// Extra packaging/interposer carbon per additional chiplet (kgCO₂e).
    integration_overhead_kg: f64,
}

impl SystemDesign {
    /// A single monolithic die.
    #[must_use]
    pub fn monolithic(total_area: SquareMillimeters, node_nm: f64) -> Self {
        Self { total_area, node_nm, chiplet_count: 1, integration_overhead_kg: 0.0 }
    }

    /// The same logic split into `count` equal chiplets (with a 0.05 kgCO₂e
    /// interposer/assembly overhead per extra chiplet).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn chiplets(total_area: SquareMillimeters, node_nm: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one chiplet");
        Self {
            total_area,
            node_nm,
            chiplet_count: count,
            integration_overhead_kg: 0.05 * count.saturating_sub(1) as f64,
        }
    }

    /// Number of dies.
    #[must_use]
    pub fn chiplet_count(&self) -> usize {
        self.chiplet_count
    }

    /// Embodied carbon of the full system (all dies + integration).
    #[must_use]
    pub fn embodied_carbon(&self) -> KilogramsCo2e {
        let per_die_area = self.total_area / self.chiplet_count as f64;
        let die = DieSpec::new(per_die_area, self.node_nm);
        die.embodied_carbon() * self.chiplet_count as f64
            + KilogramsCo2e::new(self.integration_overhead_kg)
    }

    /// Embodied carbon per product generation when `reused` of the
    /// chiplets carry over unchanged (I/O, analog, memory controllers) and
    /// only the rest are re-fabricated.
    ///
    /// # Panics
    ///
    /// Panics if `reused` exceeds the chiplet count.
    #[must_use]
    pub fn next_generation_carbon(&self, reused: usize) -> KilogramsCo2e {
        assert!(reused <= self.chiplet_count, "cannot reuse more chiplets than exist");
        let per_die_area = self.total_area / self.chiplet_count as f64;
        let die = DieSpec::new(per_die_area, self.node_nm);
        let newly_fabbed = (self.chiplet_count - reused) as f64;
        die.embodied_carbon() * newly_fabbed + KilogramsCo2e::new(self.integration_overhead_kg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chiplets_beat_monolithic_at_large_area() {
        let mono = SystemDesign::monolithic(SquareMillimeters::new(800.0), 7.0);
        let quad = SystemDesign::chiplets(SquareMillimeters::new(800.0), 7.0, 4);
        let saving = 1.0 - quad.embodied_carbon() / mono.embodied_carbon();
        assert!(saving > 0.2, "yield recovery should save >20%, got {saving}");
    }

    #[test]
    fn tiny_dies_gain_little_from_splitting() {
        // Yield is already ~1 for small dies; integration overhead can win.
        let mono = SystemDesign::monolithic(SquareMillimeters::new(40.0), 28.0);
        let split = SystemDesign::chiplets(SquareMillimeters::new(40.0), 28.0, 4);
        let ratio = split.embodied_carbon() / mono.embodied_carbon();
        assert!(ratio > 0.9, "splitting a tiny die is not worthwhile: {ratio}");
    }

    #[test]
    fn one_chiplet_equals_monolithic() {
        let mono = SystemDesign::monolithic(SquareMillimeters::new(300.0), 7.0);
        let single = SystemDesign::chiplets(SquareMillimeters::new(300.0), 7.0, 1);
        assert_eq!(mono.embodied_carbon(), single.embodied_carbon());
    }

    #[test]
    fn reuse_cuts_next_generation_carbon() {
        let quad = SystemDesign::chiplets(SquareMillimeters::new(600.0), 7.0, 4);
        let fresh = quad.next_generation_carbon(0);
        let half_reused = quad.next_generation_carbon(2);
        assert!(half_reused.value() < fresh.value() * 0.6);
        // Full reuse pays only integration.
        let full = quad.next_generation_carbon(4);
        assert!(full.value() < fresh.value() * 0.1);
    }

    #[test]
    #[should_panic(expected = "reuse")]
    fn rejects_over_reuse() {
        let quad = SystemDesign::chiplets(SquareMillimeters::new(600.0), 7.0, 4);
        let _ = quad.next_generation_carbon(5);
    }
}
