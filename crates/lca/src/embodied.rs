//! Embodied (manufacturing) carbon of silicon, ACT-style: carbon per
//! wafer area scaled by process node, divided by die yield, plus
//! packaging.

use m7_units::{KilogramsCo2e, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Fab carbon intensity per good square centimeter at a given node, in
/// kgCO₂e/cm² — representative of published ACT-class figures: newer nodes
/// need more lithography passes and energy per area.
#[must_use]
pub fn fab_intensity_kg_per_cm2(node_nm: f64) -> f64 {
    // Piecewise-linear fit through representative points:
    // 28 nm → 1.0, 14 nm → 1.4, 7 nm → 2.1, 3 nm → 2.9 kgCO2e/cm².
    let anchors = [(3.0, 2.9), (7.0, 2.1), (14.0, 1.4), (28.0, 1.0), (65.0, 0.7)];
    if node_nm <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (n0, c0) = w[0];
        let (n1, c1) = w[1];
        if node_nm <= n1 {
            let t = (node_nm - n0) / (n1 - n0);
            return c0 + t * (c1 - c0);
        }
    }
    anchors.last().expect("anchors nonempty").1
}

/// Poisson (Murphy) die-yield model for a defect density in defects/cm².
#[must_use]
pub fn poisson_yield(area: SquareMillimeters, defect_density_per_cm2: f64) -> f64 {
    let area_cm2 = area.value() / 100.0;
    (-defect_density_per_cm2 * area_cm2).exp()
}

/// A silicon die specification for embodied-carbon accounting.
///
/// # Examples
///
/// ```
/// use m7_lca::embodied::DieSpec;
/// use m7_units::SquareMillimeters;
///
/// let small = DieSpec::new(SquareMillimeters::new(50.0), 7.0);
/// let large = DieSpec::new(SquareMillimeters::new(500.0), 7.0);
/// // Embodied carbon grows super-linearly with area (yield loss).
/// let ratio = large.embodied_carbon().value() / small.embodied_carbon().value();
/// assert!(ratio > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieSpec {
    area: SquareMillimeters,
    node_nm: f64,
    defect_density_per_cm2: f64,
    packaging_kg: f64,
}

impl DieSpec {
    /// Creates a die at the given area and process node with representative
    /// defect density (0.1 /cm²) and packaging overhead (0.15 kgCO₂e).
    ///
    /// # Panics
    ///
    /// Panics if the area or node is non-positive or non-finite.
    #[must_use]
    pub fn new(area: SquareMillimeters, node_nm: f64) -> Self {
        assert!(area.value() > 0.0 && area.is_finite(), "die area must be positive");
        assert!(node_nm > 0.0 && node_nm.is_finite(), "process node must be positive");
        Self { area, node_nm, defect_density_per_cm2: 0.1, packaging_kg: 0.15 }
    }

    /// Overrides the defect density (defects/cm²).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    #[must_use]
    pub fn with_defect_density(mut self, d0: f64) -> Self {
        assert!(d0 >= 0.0, "defect density must be non-negative");
        self.defect_density_per_cm2 = d0;
        self
    }

    /// Overrides the packaging carbon (kgCO₂e).
    #[must_use]
    pub fn with_packaging(mut self, kg: f64) -> Self {
        self.packaging_kg = kg;
        self
    }

    /// Die area.
    #[must_use]
    pub fn area(&self) -> SquareMillimeters {
        self.area
    }

    /// Process node in nanometers.
    #[must_use]
    pub fn node_nm(&self) -> f64 {
        self.node_nm
    }

    /// Expected die yield under the Poisson model.
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        poisson_yield(self.area, self.defect_density_per_cm2)
    }

    /// Embodied manufacturing carbon per *good* die: fab intensity × area /
    /// yield + packaging.
    #[must_use]
    pub fn embodied_carbon(&self) -> KilogramsCo2e {
        let area_cm2 = self.area.value() / 100.0;
        let fab = fab_intensity_kg_per_cm2(self.node_nm) * area_cm2 / self.yield_fraction();
        KilogramsCo2e::new(fab + self.packaging_kg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn newer_nodes_are_dirtier_per_area() {
        assert!(fab_intensity_kg_per_cm2(7.0) > fab_intensity_kg_per_cm2(28.0));
        assert!(fab_intensity_kg_per_cm2(3.0) > fab_intensity_kg_per_cm2(7.0));
        // Anchor values are reproduced exactly.
        assert!((fab_intensity_kg_per_cm2(28.0) - 1.0).abs() < 1e-12);
        assert!((fab_intensity_kg_per_cm2(7.0) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn intensity_is_clamped_at_extremes() {
        assert_eq!(fab_intensity_kg_per_cm2(1.0), 2.9);
        assert_eq!(fab_intensity_kg_per_cm2(200.0), 0.7);
    }

    #[test]
    fn yield_decreases_with_area() {
        let small = poisson_yield(SquareMillimeters::new(50.0), 0.1);
        let large = poisson_yield(SquareMillimeters::new(600.0), 0.1);
        assert!(small > large);
        assert!(small > 0.9, "50 mm² at 0.1/cm² yields well");
        assert!(large < 0.6, "600 mm² at 0.1/cm² yields poorly");
    }

    #[test]
    fn zero_defects_is_perfect_yield() {
        assert_eq!(poisson_yield(SquareMillimeters::new(400.0), 0.0), 1.0);
    }

    #[test]
    fn embodied_carbon_is_plausible() {
        // A 100 mm² 7 nm SoC: a few kgCO2e.
        let soc = DieSpec::new(SquareMillimeters::new(100.0), 7.0);
        let kg = soc.embodied_carbon().value();
        assert!(kg > 1.0 && kg < 10.0, "got {kg}");
    }

    #[test]
    fn defect_density_override_raises_carbon() {
        let base = DieSpec::new(SquareMillimeters::new(200.0), 7.0);
        let dirty = base.with_defect_density(0.5);
        assert!(dirty.embodied_carbon() > base.embodied_carbon());
        assert!(dirty.yield_fraction() < base.yield_fraction());
    }

    proptest! {
        #[test]
        fn prop_carbon_monotone_in_area(a in 10.0..500.0f64, b in 10.0..500.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let small = DieSpec::new(SquareMillimeters::new(lo), 7.0).embodied_carbon();
            let large = DieSpec::new(SquareMillimeters::new(hi), 7.0).embodied_carbon();
            prop_assert!(small <= large);
        }

        #[test]
        fn prop_yield_in_unit_interval(area in 1.0..1000.0f64, d0 in 0.0..2.0f64) {
            let y = poisson_yield(SquareMillimeters::new(area), d0);
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }
}
