//! Feedback control kernels: PID, finite-horizon discrete LQR, and
//! trapezoidal trajectory generation.

use crate::linalg::{LinalgError, Matrix};
use serde::{Deserialize, Serialize};

/// A time-optimal trapezoidal velocity profile over a fixed distance,
/// under speed and acceleration limits — the reference-generation kernel
/// that sits in front of every tracking controller.
///
/// Degenerates to a triangular profile when the distance is too short to
/// reach cruise speed.
///
/// # Examples
///
/// ```
/// use m7_kernels::control::TrapezoidalProfile;
///
/// let profile = TrapezoidalProfile::new(10.0, 2.0, 1.0).unwrap();
/// assert!((profile.duration() - 7.0).abs() < 1e-12); // 2 s up, 3 s cruise, 2 s down
/// assert!((profile.position(profile.duration()) - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrapezoidalProfile {
    distance: f64,
    cruise_speed: f64,
    acceleration: f64,
    ramp_time: f64,
    cruise_time: f64,
}

/// Error constructing a [`TrapezoidalProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileError;

impl core::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("profile limits must be positive and finite")
    }
}

impl std::error::Error for ProfileError {}

impl TrapezoidalProfile {
    /// Plans a profile covering `distance` meters with at most `max_speed`
    /// and `max_acceleration`.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if any argument is non-positive or
    /// non-finite.
    pub fn new(distance: f64, max_speed: f64, max_acceleration: f64) -> Result<Self, ProfileError> {
        let valid = distance > 0.0
            && distance.is_finite()
            && max_speed > 0.0
            && max_speed.is_finite()
            && max_acceleration > 0.0
            && max_acceleration.is_finite();
        if !valid {
            return Err(ProfileError);
        }
        // Distance consumed accelerating to cruise and back.
        let ramp_distance = max_speed * max_speed / max_acceleration;
        if ramp_distance <= distance {
            let ramp_time = max_speed / max_acceleration;
            let cruise_time = (distance - ramp_distance) / max_speed;
            Ok(Self {
                distance,
                cruise_speed: max_speed,
                acceleration: max_acceleration,
                ramp_time,
                cruise_time,
            })
        } else {
            // Triangular: peak speed set by the distance.
            let peak = (distance * max_acceleration).sqrt();
            Ok(Self {
                distance,
                cruise_speed: peak,
                acceleration: max_acceleration,
                ramp_time: peak / max_acceleration,
                cruise_time: 0.0,
            })
        }
    }

    /// Total duration of the motion.
    #[must_use]
    pub fn duration(&self) -> f64 {
        2.0 * self.ramp_time + self.cruise_time
    }

    /// Peak speed actually reached.
    #[must_use]
    pub fn peak_speed(&self) -> f64 {
        self.cruise_speed
    }

    /// Commanded speed at time `t` (clamped to the motion interval).
    #[must_use]
    pub fn speed(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.duration());
        if t < self.ramp_time {
            self.acceleration * t
        } else if t < self.ramp_time + self.cruise_time {
            self.cruise_speed
        } else {
            (self.acceleration * (self.duration() - t)).max(0.0)
        }
    }

    /// Commanded position at time `t` (clamped to `[0, distance]`).
    #[must_use]
    pub fn position(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.duration());
        let ramp = self.ramp_time;
        let a = self.acceleration;
        if t < ramp {
            0.5 * a * t * t
        } else if t < ramp + self.cruise_time {
            0.5 * a * ramp * ramp + self.cruise_speed * (t - ramp)
        } else {
            let remaining = self.duration() - t;
            self.distance - 0.5 * a * remaining * remaining
        }
    }
}

/// A scalar PID controller with anti-windup clamping.
///
/// # Examples
///
/// ```
/// use m7_kernels::control::Pid;
///
/// let mut pid = Pid::new(2.0, 0.1, 0.05);
/// let u = pid.update(1.0 /* error */, 0.01 /* dt */);
/// assert!(u > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: Option<f64>,
    integral_limit: f64,
}

impl Pid {
    /// Creates a controller with the given gains and a default integral
    /// clamp of ±100.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        Self { kp, ki, kd, integral: 0.0, prev_error: None, integral_limit: 100.0 }
    }

    /// Sets the anti-windup clamp on the integral term.
    #[must_use]
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        self.integral_limit = limit.abs();
        self
    }

    /// Advances the controller by one step and returns the control output.
    ///
    /// `dt` must be positive; non-positive `dt` returns the proportional
    /// term only.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        if dt <= 0.0 {
            return self.kp * error;
        }
        self.integral =
            (self.integral + error * dt).clamp(-self.integral_limit, self.integral_limit);
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        self.kp * error + self.ki * self.integral + self.kd * derivative
    }

    /// Resets integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }
}

/// A finite-horizon discrete-time LQR solved by backward Riccati recursion.
///
/// For the system `x' = A x + B u` with stage cost `xᵀQx + uᵀRu`, computes
/// the time-invariant limit gain `K` (by iterating the recursion to
/// convergence) so that `u = −K x`.
///
/// # Examples
///
/// ```
/// use m7_kernels::control::Lqr;
/// use m7_kernels::linalg::Matrix;
///
/// // Double integrator, dt = 0.1.
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]);
/// let b = Matrix::from_rows(&[&[0.005], &[0.1]]);
/// let q = Matrix::identity(2);
/// let r = Matrix::from_diagonal(&[0.1]);
/// let lqr = Lqr::solve(&a, &b, &q, &r, 500).unwrap();
/// let u = lqr.control(&[1.0, 0.0]); // positive position error
/// assert!(u[0] < 0.0, "control should push the state back");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lqr {
    gain: Matrix,
    iterations_used: usize,
}

impl Lqr {
    /// Solves the Riccati recursion for at most `max_iterations` steps,
    /// stopping early on convergence of the cost-to-go matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] if the shapes are inconsistent or the
    /// `R + BᵀPB` innovation is singular.
    pub fn solve(
        a: &Matrix,
        b: &Matrix,
        q: &Matrix,
        r: &Matrix,
        max_iterations: usize,
    ) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch { expected: (n, n), found: a.shape() });
        }
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, b.cols()),
                found: b.shape(),
            });
        }
        let m = b.cols();
        if q.shape() != (n, n) {
            return Err(LinalgError::DimensionMismatch { expected: (n, n), found: q.shape() });
        }
        if r.shape() != (m, m) {
            return Err(LinalgError::DimensionMismatch { expected: (m, m), found: r.shape() });
        }

        let mut p = q.clone();
        let mut iterations_used = max_iterations;
        let at = a.transpose();
        let bt = b.transpose();
        for iter in 0..max_iterations {
            // K = (R + Bᵀ P B)⁻¹ Bᵀ P A
            let btp = bt.mul(&p)?;
            let s = r.add(&btp.mul(b)?)?;
            let k = s.solve(&btp.mul(a)?)?;
            // P' = Q + Aᵀ P (A − B K)
            let a_bk = a.sub(&b.mul(&k)?)?;
            let p_next = q.add(&at.mul(&p.mul(&a_bk)?)?)?;
            let delta = p_next.sub(&p)?.frobenius_norm();
            p = p_next;
            if delta < 1e-10 {
                iterations_used = iter + 1;
                break;
            }
        }
        // Final gain from the converged P.
        let btp = bt.mul(&p)?;
        let s = r.add(&btp.mul(b)?)?;
        let gain = s.solve(&btp.mul(a)?)?;
        Ok(Self { gain, iterations_used })
    }

    /// The feedback gain matrix `K`.
    #[must_use]
    pub fn gain(&self) -> &Matrix {
        &self.gain
    }

    /// Riccati iterations actually performed before convergence.
    #[must_use]
    pub fn iterations_used(&self) -> usize {
        self.iterations_used
    }

    /// Computes `u = −K x`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the state dimension.
    #[must_use]
    pub fn control(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.gain.cols(), "state dimension mismatch");
        let x = Matrix::column(state);
        let u = self.gain.mul(&x).expect("shapes verified");
        (0..u.rows()).map(|i| -u[(i, 0)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_proportional_only() {
        let mut pid = Pid::new(3.0, 0.0, 0.0);
        assert_eq!(pid.update(2.0, 0.1), 6.0);
    }

    #[test]
    fn pid_integral_accumulates_and_clamps() {
        let mut pid = Pid::new(0.0, 1.0, 0.0).with_integral_limit(0.5);
        let mut last = 0.0;
        for _ in 0..100 {
            last = pid.update(1.0, 0.1);
        }
        assert!((last - 0.5).abs() < 1e-9, "integral should clamp at 0.5, got {last}");
    }

    #[test]
    fn pid_derivative_damps() {
        let mut pid = Pid::new(0.0, 0.0, 1.0);
        pid.update(1.0, 0.1);
        let u = pid.update(0.5, 0.1);
        assert!(u < 0.0, "falling error gives negative derivative term");
    }

    #[test]
    fn pid_reset_clears_memory() {
        let mut pid = Pid::new(1.0, 1.0, 1.0);
        pid.update(1.0, 0.1);
        pid.reset();
        let u = pid.update(1.0, 0.1);
        // After reset, derivative is zero and integral restarts.
        assert!((u - (1.0 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn pid_zero_dt_is_safe() {
        let mut pid = Pid::new(2.0, 1.0, 1.0);
        assert_eq!(pid.update(1.5, 0.0), 3.0);
    }

    fn double_integrator() -> (Matrix, Matrix) {
        let dt = 0.1;
        let a = Matrix::from_rows(&[&[1.0, dt], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[0.5 * dt * dt], &[dt]]);
        (a, b)
    }

    #[test]
    fn lqr_stabilizes_double_integrator() {
        let (a, b) = double_integrator();
        let q = Matrix::identity(2);
        let r = Matrix::from_diagonal(&[0.1]);
        let lqr = Lqr::solve(&a, &b, &q, &r, 1000).unwrap();
        // Simulate the closed loop from a disturbed state.
        let mut x = vec![2.0, -1.0];
        for _ in 0..400 {
            let u = lqr.control(&x);
            let xm = Matrix::column(&x);
            let um = Matrix::column(&u);
            let next = a.mul(&xm).unwrap().add(&b.mul(&um).unwrap()).unwrap();
            x = vec![next[(0, 0)], next[(1, 0)]];
        }
        assert!(x[0].abs() < 1e-3 && x[1].abs() < 1e-3, "state did not converge: {x:?}");
    }

    #[test]
    fn lqr_converges_early() {
        let (a, b) = double_integrator();
        let lqr = Lqr::solve(&a, &b, &Matrix::identity(2), &Matrix::from_diagonal(&[1.0]), 10_000)
            .unwrap();
        assert!(lqr.iterations_used() < 10_000, "Riccati should converge well before the cap");
    }

    #[test]
    fn lqr_dimension_errors() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(matches!(
            Lqr::solve(&a, &b, &q, &r, 10),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn trapezoid_reaches_cruise() {
        let p = TrapezoidalProfile::new(10.0, 2.0, 1.0).unwrap();
        assert_eq!(p.peak_speed(), 2.0);
        assert_eq!(p.speed(2.0), 2.0);
        assert_eq!(p.speed(0.0), 0.0);
        assert!((p.speed(p.duration()) - 0.0).abs() < 1e-12);
        // Midpoint of cruise is halfway through the distance.
        assert!((p.position(3.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn short_distance_becomes_triangular() {
        let p = TrapezoidalProfile::new(1.0, 10.0, 1.0).unwrap();
        assert!(p.peak_speed() < 10.0, "cannot reach cruise, peak {}", p.peak_speed());
        assert!((p.peak_speed() - 1.0).abs() < 1e-12);
        assert!((p.position(p.duration()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_position_is_monotone() {
        let p = TrapezoidalProfile::new(7.3, 1.7, 0.9).unwrap();
        let mut prev = -1e-12;
        let steps = 200;
        for i in 0..=steps {
            let t = p.duration() * i as f64 / steps as f64;
            let x = p.position(t);
            assert!(x >= prev - 1e-9, "position must not decrease");
            prev = x;
        }
        assert!((prev - 7.3).abs() < 1e-9);
    }

    #[test]
    fn profile_rejects_bad_inputs() {
        assert!(TrapezoidalProfile::new(0.0, 1.0, 1.0).is_err());
        assert!(TrapezoidalProfile::new(1.0, -1.0, 1.0).is_err());
        assert!(TrapezoidalProfile::new(1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn higher_control_cost_means_gentler_gain() {
        let (a, b) = double_integrator();
        let q = Matrix::identity(2);
        let cheap = Lqr::solve(&a, &b, &q, &Matrix::from_diagonal(&[0.01]), 2000).unwrap();
        let pricey = Lqr::solve(&a, &b, &q, &Matrix::from_diagonal(&[10.0]), 2000).unwrap();
        assert!(
            cheap.gain().frobenius_norm() > pricey.gain().frobenius_norm(),
            "cheap control should use larger gains"
        );
    }
}
