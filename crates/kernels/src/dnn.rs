//! A small multilayer perceptron with SGD training and precision-swept
//! (quantized) inference.
//!
//! This is the perception-model workload behind experiment E3 ("Metrics
//! Matter"): quantizing weights raises modeled throughput on an accelerator
//! but *measurably* lowers task accuracy here — so a throughput-only metric
//! and a time-to-accuracy metric rank designs differently.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Numeric precision of the weights during inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full 32-bit floating point (reference).
    F32,
    /// 16-bit symmetric integer quantization.
    Int16,
    /// 8-bit symmetric integer quantization.
    Int8,
    /// 4-bit symmetric integer quantization.
    Int4,
    /// 2-bit symmetric integer quantization.
    Int2,
}

impl Precision {
    /// All precisions, highest to lowest.
    pub const ALL: [Self; 5] = [Self::F32, Self::Int16, Self::Int8, Self::Int4, Self::Int2];

    /// Bits per weight at this precision.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Self::F32 => 32,
            Self::Int16 => 16,
            Self::Int8 => 8,
            Self::Int4 => 4,
            Self::Int2 => 2,
        }
    }

    /// Largest representable quantized magnitude (`2^(bits-1) − 1`), or
    /// `None` for floating point.
    #[must_use]
    pub fn max_level(self) -> Option<f64> {
        match self {
            Self::F32 => None,
            _ => Some(f64::from((1u32 << (self.bits() - 1)) - 1)),
        }
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::F32 => write!(f, "f32"),
            other => write!(f, "int{}", other.bits()),
        }
    }
}

/// One dense layer: row-major weights `[out × in]` plus biases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    inputs: usize,
    outputs: usize,
    weights: Vec<f64>,
    biases: Vec<f64>,
}

impl Layer {
    fn random(inputs: usize, outputs: usize, rng: &mut impl Rng) -> Self {
        // He initialization.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs).map(|_| rng.gen_range(-scale..scale)).collect();
        let biases = vec![0.0; outputs];
        Self { inputs, outputs, weights, biases }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(acc);
        }
    }

    /// Returns a copy with weights fake-quantized at `precision`.
    fn quantized(&self, precision: Precision) -> Self {
        let Some((scale, levels)) = self.quant_params(precision) else {
            return self.clone();
        };
        let weights = self
            .weights
            .iter()
            .map(|w| (w / scale).round().clamp(-levels, levels) * scale)
            .collect();
        Self { weights, ..self.clone() }
    }

    /// Symmetric quantization grid for this layer at `precision`:
    /// `(scale, levels)`, or `None` when the weights pass through
    /// unquantized (floating point, or an all-zero layer).
    fn quant_params(&self, precision: Precision) -> Option<(f64, f64)> {
        let levels = precision.max_level()?;
        let max_abs = self.weights.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        if max_abs == 0.0 {
            return None;
        }
        Some((max_abs / levels, levels))
    }

    /// Packs the weights transposed (`wt[j * outputs + o] = w[o][j]`,
    /// SoA over the input index) into `wt`, quantizing on the fly —
    /// no intermediate quantized `Layer` clone. The fake-quantization
    /// expression is the same as [`Layer::quantized`], so the packed
    /// values are bit-identical to that path.
    fn pack_transposed(&self, precision: Precision, wt: &mut Vec<f64>) {
        wt.clear();
        wt.resize(self.weights.len(), 0.0);
        match self.quant_params(precision) {
            None => {
                for o in 0..self.outputs {
                    for j in 0..self.inputs {
                        wt[j * self.outputs + o] = self.weights[o * self.inputs + j];
                    }
                }
            }
            Some((scale, levels)) => {
                for o in 0..self.outputs {
                    for j in 0..self.inputs {
                        let w = self.weights[o * self.inputs + j];
                        wt[j * self.outputs + o] =
                            (w / scale).round().clamp(-levels, levels) * scale;
                    }
                }
            }
        }
    }

    /// Forward pass over transposed weights: initialize with the biases,
    /// then accumulate one SAXPY per input element — the inner loop walks
    /// a contiguous `wt` row across *all* outputs, a unit-stride mul-add
    /// chain the autovectorizer turns into packed FMAs.
    ///
    /// Each output still sums its terms in ascending-`j` order, exactly
    /// like the row-major dot product in [`Layer::forward`], so the
    /// result is bit-identical.
    fn forward_transposed(&self, input: &[f64], wt: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.biases);
        for (j, &x) in input.iter().enumerate() {
            let row = &wt[j * self.outputs..(j + 1) * self.outputs];
            for (acc, &w) in out.iter_mut().zip(row) {
                *acc += w * x;
            }
        }
    }
}

/// Reusable forward-pass workspace: ping-pong activation buffers plus the
/// transposed (possibly fake-quantized) weight buffer of the layer being
/// evaluated. One scratch amortizes all per-inference allocation across a
/// whole dataset — the hot path allocates nothing after warm-up.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    wt: Vec<f64>,
    a: Vec<f64>,
    b: Vec<f64>,
}

/// A ReLU multilayer perceptron classifier.
///
/// # Examples
///
/// ```
/// use m7_kernels::dnn::{Dataset, Mlp, Precision};
///
/// let data = Dataset::blobs(200, 3, 2, 42);
/// let mut mlp = Mlp::new(&[2, 16, 3], 7);
/// mlp.train(&data, 40, 0.05);
/// let acc = mlp.accuracy(&data, Precision::F32);
/// assert!(acc > 0.8, "blobs are separable, got {acc}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates a randomly initialized network with the given layer widths
    /// (`[inputs, hidden…, classes]`), deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    #[must_use]
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output widths");
        assert!(layer_sizes.iter().all(|&s| s > 0), "layer widths must be nonzero");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let layers = layer_sizes.windows(2).map(|w| Layer::random(w[0], w[1], &mut rng)).collect();
        Self { layers }
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layers[0].inputs
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs
    }

    /// Total weight count (excluding biases).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// Multiply-accumulate operations per forward pass.
    #[must_use]
    pub fn macs_per_inference(&self) -> f64 {
        self.layers.iter().map(|l| (l.inputs * l.outputs) as f64).sum()
    }

    /// Weight bytes read per forward pass at `precision`.
    #[must_use]
    pub fn weight_bytes(&self, precision: Precision) -> f64 {
        self.weight_count() as f64 * f64::from(precision.bits()) / 8.0
    }

    /// Class logits for one input at the given weight precision.
    ///
    /// Convenience wrapper over [`Mlp::forward_into`] with a throwaway
    /// scratch; use the `_into` variant (or [`Mlp::forward_batch_into`])
    /// on hot paths to amortize the buffers.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    #[must_use]
    pub fn forward(&self, input: &[f64], precision: Precision) -> Vec<f64> {
        let mut scratch = MlpScratch::default();
        self.forward_into(input, precision, &mut scratch).to_vec()
    }

    /// Class logits for one input, written into `scratch` — no per-layer
    /// allocation: activations ping-pong between two reused buffers and
    /// quantization happens while packing the transposed weight buffer,
    /// never by cloning a layer.
    ///
    /// Bit-identical to [`Mlp::forward_reference`] (the SAXPY layer walk
    /// preserves each output's summation order, and the on-the-fly
    /// quantization applies the same grid expression).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward_into<'s>(
        &self,
        input: &[f64],
        precision: Precision,
        scratch: &'s mut MlpScratch,
    ) -> &'s [f64] {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let MlpScratch { wt, a, b } = scratch;
        a.clear();
        a.extend_from_slice(input);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.pack_transposed(precision, wt);
            layer.forward_transposed(a, wt, b);
            if i != last {
                for v in b.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            core::mem::swap(a, b);
        }
        a
    }

    /// Batched class logits: `inputs` holds `batch` examples row-major
    /// (`batch × input_dim`), the result is `batch × classes` row-major.
    ///
    /// Each layer's transposed weight buffer is packed **once** for the
    /// whole batch, so per-example cost is pure mul-add over contiguous
    /// rows. Row `s` of the output is bit-identical to
    /// `forward(&inputs[s * dim..][..dim], precision)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of the input dimension.
    pub fn forward_batch_into<'s>(
        &self,
        inputs: &[f64],
        precision: Precision,
        scratch: &'s mut MlpScratch,
    ) -> &'s [f64] {
        let dim = self.input_dim();
        assert_eq!(inputs.len() % dim, 0, "input batch must be a multiple of the input dimension");
        let batch = inputs.len() / dim;
        let MlpScratch { wt, a, b } = scratch;
        a.clear();
        a.extend_from_slice(inputs);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.pack_transposed(precision, wt);
            b.clear();
            for s in 0..batch {
                let x = &a[s * layer.inputs..(s + 1) * layer.inputs];
                let start = b.len();
                b.extend_from_slice(&layer.biases);
                let out = &mut b[start..];
                for (j, &xv) in x.iter().enumerate() {
                    let row = &wt[j * layer.outputs..(j + 1) * layer.outputs];
                    for (acc, &w) in out.iter_mut().zip(row) {
                        *acc += w * xv;
                    }
                }
            }
            if i != last {
                for v in b.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            core::mem::swap(a, b);
        }
        a
    }

    /// Scalar-reference forward pass: per-layer quantized clone and
    /// row-major dot products, the original formulation. Kept public as
    /// the property-tested reference for [`Mlp::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    #[must_use]
    pub fn forward_reference(&self, input: &[f64], precision: Precision) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut current = input.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let layer = if precision == Precision::F32 {
                layer.clone()
            } else {
                layer.quantized(precision)
            };
            layer.forward(&current, &mut next);
            if i != last {
                for v in &mut next {
                    *v = v.max(0.0); // ReLU
                }
            }
            core::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// The argmax class for one input.
    #[must_use]
    pub fn predict(&self, input: &[f64], precision: Precision) -> usize {
        let mut scratch = MlpScratch::default();
        self.predict_with(input, precision, &mut scratch)
    }

    /// [`Mlp::predict`] with a caller-provided scratch, for allocation-free
    /// sweeps over many examples.
    pub fn predict_with(
        &self,
        input: &[f64],
        precision: Precision,
        scratch: &mut MlpScratch,
    ) -> usize {
        let logits = self.forward_into(input, precision, scratch);
        logits
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("logits are finite"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Fraction of `data` classified correctly at `precision`.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset, precision: Precision) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut scratch = MlpScratch::default();
        let correct = data
            .iter()
            .filter(|(x, y)| self.predict_with(x, precision, &mut scratch) == **y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Trains with plain SGD on softmax cross-entropy for `epochs` passes.
    pub fn train(&mut self, data: &Dataset, epochs: usize, learning_rate: f64) {
        for _ in 0..epochs {
            for (x, y) in data.iter() {
                self.sgd_step(x, *y, learning_rate);
            }
        }
    }

    /// Quantization-aware training: after every epoch the weights are
    /// snapped to the `precision` grid, so optimization must live with the
    /// representable set. At very low precisions training stalls — the
    /// mechanism behind the time-to-accuracy inversion of experiment E3.
    pub fn train_quantized(
        &mut self,
        data: &Dataset,
        epochs: usize,
        learning_rate: f64,
        precision: Precision,
    ) {
        for _ in 0..epochs {
            for (x, y) in data.iter() {
                self.sgd_step(x, *y, learning_rate);
            }
            if precision != Precision::F32 {
                for layer in &mut self.layers {
                    *layer = layer.quantized(precision);
                }
            }
        }
    }

    /// Trains epoch by epoch (quantization-aware at `precision`) until the
    /// model reaches `target_accuracy` on `data`, up to `max_epochs`.
    ///
    /// Returns the number of epochs needed, or `None` if the target was
    /// never reached — low precisions plateau below the target.
    pub fn epochs_to_accuracy(
        &mut self,
        data: &Dataset,
        target_accuracy: f64,
        learning_rate: f64,
        precision: Precision,
        max_epochs: usize,
    ) -> Option<usize> {
        for epoch in 1..=max_epochs {
            self.train_quantized(data, 1, learning_rate, precision);
            if self.accuracy(data, precision) >= target_accuracy {
                return Some(epoch);
            }
        }
        None
    }

    fn sgd_step(&mut self, input: &[f64], label: usize, lr: f64) {
        // Forward pass, keeping activations.
        let mut activations: Vec<Vec<f64>> = vec![input.to_vec()];
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(activations.last().expect("nonempty"), &mut out);
            if i != last {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            activations.push(out);
        }
        // Softmax + cross-entropy gradient at the output.
        let logits = activations.last().expect("nonempty").clone();
        let max = logits.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f64> = logits.iter().map(|v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let mut grad: Vec<f64> = exps.iter().map(|e| e / sum).collect();
        grad[label] -= 1.0;

        // Backward pass.
        for i in (0..self.layers.len()).rev() {
            let input_act = activations[i].clone();
            let layer = &mut self.layers[i];
            let mut grad_prev = vec![0.0; layer.inputs];
            #[allow(clippy::needless_range_loop)]
            for o in 0..layer.outputs {
                let g = grad[o];
                for j in 0..layer.inputs {
                    grad_prev[j] += layer.weights[o * layer.inputs + j] * g;
                    layer.weights[o * layer.inputs + j] -= lr * g * input_act[j];
                }
                layer.biases[o] -= lr * g;
            }
            if i > 0 {
                // ReLU derivative through the previous activation.
                for (gp, a) in grad_prev.iter_mut().zip(&activations[i]) {
                    if *a <= 0.0 {
                        *gp = 0.0;
                    }
                }
            }
            grad = grad_prev;
        }
    }
}

/// A labeled classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Generates `per_class * classes` points as Gaussian blobs on a circle
    /// of radius 3, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `dim < 2`.
    #[must_use]
    pub fn blobs(per_class: usize, classes: usize, dim: usize, seed: u64) -> Self {
        assert!(classes > 0, "need at least one class");
        assert!(dim >= 2, "blob dataset needs dim >= 2");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            let angle = 2.0 * core::f64::consts::PI * c as f64 / classes as f64;
            let (cx, cy) = (3.0 * angle.cos(), 3.0 * angle.sin());
            for _ in 0..per_class {
                let mut x = vec![0.0; dim];
                x[0] = cx + rng.gen_range(-0.8..0.8);
                x[1] = cy + rng.gen_range(-0.8..0.8);
                for v in x.iter_mut().skip(2) {
                    *v = rng.gen_range(-0.5..0.5);
                }
                features.push(x);
                labels.push(c);
            }
        }
        Self { features, labels }
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` if the dataset has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &usize)> {
        self.features.iter().map(Vec::as_slice).zip(self.labels.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_model() -> (Mlp, Dataset) {
        let data = Dataset::blobs(150, 4, 2, 11);
        let mut mlp = Mlp::new(&[2, 24, 4], 5);
        mlp.train(&data, 60, 0.03);
        (mlp, data)
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let (mlp, data) = trained_model();
        let acc = mlp.accuracy(&data, Precision::F32);
        assert!(acc > 0.9, "separable blobs should train to >90%, got {acc}");
    }

    #[test]
    fn accuracy_degrades_monotonically_with_precision_on_average() {
        let (mlp, data) = trained_model();
        let f32_acc = mlp.accuracy(&data, Precision::F32);
        let int8 = mlp.accuracy(&data, Precision::Int8);
        let int2 = mlp.accuracy(&data, Precision::Int2);
        assert!(int8 <= f32_acc + 1e-9);
        assert!(int2 <= int8 + 0.05, "2-bit should be no better than 8-bit (±5%)");
        assert!(int2 < f32_acc, "2-bit quantization must cost accuracy");
    }

    #[test]
    fn int16_is_nearly_lossless() {
        let (mlp, data) = trained_model();
        let delta = mlp.accuracy(&data, Precision::F32) - mlp.accuracy(&data, Precision::Int16);
        assert!(delta.abs() < 0.02, "16-bit quantization should be ~lossless, delta {delta}");
    }

    #[test]
    fn macs_and_bytes() {
        let mlp = Mlp::new(&[2, 16, 4], 1);
        assert_eq!(mlp.macs_per_inference(), (2 * 16 + 16 * 4) as f64);
        assert_eq!(mlp.weight_count(), 2 * 16 + 16 * 4);
        assert_eq!(mlp.weight_bytes(Precision::F32), (2 * 16 + 16 * 4) as f64 * 4.0);
        assert_eq!(mlp.weight_bytes(Precision::Int8), (2 * 16 + 16 * 4) as f64);
        assert_eq!(mlp.weight_bytes(Precision::Int2), (2 * 16 + 16 * 4) as f64 / 4.0);
    }

    #[test]
    fn deterministic_initialization_and_training() {
        let data = Dataset::blobs(50, 2, 2, 3);
        let mut a = Mlp::new(&[2, 8, 2], 9);
        let mut b = Mlp::new(&[2, 8, 2], 9);
        a.train(&data, 5, 0.05);
        b.train(&data, 5, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(Precision::F32.bits(), 32);
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int8.max_level(), Some(127.0));
        assert_eq!(Precision::F32.max_level(), None);
        assert_eq!(Precision::Int2.max_level(), Some(1.0));
        assert_eq!(format!("{}", Precision::Int8), "int8");
    }

    #[test]
    fn quantized_training_reaches_target_at_high_precision() {
        let data = Dataset::blobs(100, 3, 2, 21);
        let mut f32_model = Mlp::new(&[2, 16, 3], 4);
        let f32_epochs = f32_model.epochs_to_accuracy(&data, 0.9, 0.05, Precision::F32, 100);
        assert!(f32_epochs.is_some(), "f32 training should reach 90%");

        let mut int8_model = Mlp::new(&[2, 16, 3], 4);
        let int8_epochs = int8_model.epochs_to_accuracy(&data, 0.9, 0.05, Precision::Int8, 150);
        assert!(int8_epochs.is_some(), "int8 QAT should still reach 90%");
    }

    #[test]
    fn two_bit_training_stalls() {
        let data = Dataset::blobs(100, 6, 2, 22);
        let mut model = Mlp::new(&[2, 16, 6], 4);
        let epochs = model.epochs_to_accuracy(&data, 0.95, 0.05, Precision::Int2, 60);
        assert!(epochs.is_none(), "2-bit weights cannot express a 95% 6-class classifier here");
    }

    /// The scratch-buffer SAXPY forward is bit-identical to the clone-and-
    /// dot reference at every precision, including an all-zero layer
    /// (quantization passthrough edge case).
    #[test]
    fn scratch_forward_is_bit_identical_to_reference() {
        let (mlp, data) = trained_model();
        let mut scratch = MlpScratch::default();
        for precision in Precision::ALL {
            for (x, _) in data.iter().take(40) {
                let fast = mlp.forward_into(x, precision, &mut scratch).to_vec();
                let reference = mlp.forward_reference(x, precision);
                assert_eq!(fast, reference, "forward divergence at {precision}");
            }
        }
        // All-zero weights: quant_params must pass through, not divide by 0.
        let zero = Mlp {
            layers: vec![Layer {
                inputs: 2,
                outputs: 2,
                weights: vec![0.0; 4],
                biases: vec![1.0, -1.0],
            }],
        };
        for precision in Precision::ALL {
            assert_eq!(
                zero.forward_into(&[3.0, 4.0], precision, &mut scratch),
                zero.forward_reference(&[3.0, 4.0], precision).as_slice(),
            );
        }
    }

    /// Batched forward rows are bit-identical to per-example forwards.
    #[test]
    fn batched_forward_matches_single_forwards() {
        let (mlp, data) = trained_model();
        let examples: Vec<&[f64]> = data.iter().take(17).map(|(x, _)| x).collect();
        let flat: Vec<f64> = examples.iter().flat_map(|x| x.iter().copied()).collect();
        let mut scratch = MlpScratch::default();
        for precision in [Precision::F32, Precision::Int8, Precision::Int2] {
            let batched = mlp.forward_batch_into(&flat, precision, &mut scratch).to_vec();
            let classes = mlp.classes();
            assert_eq!(batched.len(), examples.len() * classes);
            for (s, x) in examples.iter().enumerate() {
                assert_eq!(
                    &batched[s * classes..(s + 1) * classes],
                    mlp.forward(x, precision).as_slice(),
                    "batch row {s} divergence at {precision}"
                );
            }
        }
    }

    #[test]
    fn predict_rejects_bad_input() {
        let mlp = Mlp::new(&[3, 4, 2], 0);
        let result = std::panic::catch_unwind(|| mlp.predict(&[1.0, 2.0], Precision::F32));
        assert!(result.is_err(), "wrong input dimension must panic");
    }

    #[test]
    fn empty_dataset_accuracy_is_zero() {
        let mlp = Mlp::new(&[2, 4, 2], 0);
        let empty = Dataset { features: Vec::new(), labels: Vec::new() };
        assert_eq!(mlp.accuracy(&empty, Precision::F32), 0.0);
    }
}
