//! A small dense, dynamically sized matrix with the solvers the EKF and LQR
//! kernels need: multiplication, transpose, Cholesky and LU decomposition,
//! and inversion for modest sizes.
//!
//! This is not a general-purpose linear-algebra library; it is the exact
//! substrate `m7-kernels` needs, implemented with plain row-major `Vec<f64>`
//! storage so cost models can reason about its memory traffic.

use serde::{Deserialize, Serialize};

/// Errors from matrix operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible with the operation.
    DimensionMismatch {
        /// Rows/columns expected by the operation.
        expected: (usize, usize),
        /// Rows/columns actually provided.
        found: (usize, usize),
    },
    /// The matrix is singular (or not positive-definite for Cholesky).
    Singular,
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            Self::Singular => write!(f, "matrix is singular or not positive-definite"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use m7_kernels::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.mul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n`×`n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a diagonal matrix from the given values.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    #[must_use]
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn column(values: &[f64]) -> Self {
        let mut m = Self::zeros(values.len(), 1);
        m.data.copy_from_slice(values);
        m
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major data.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Checked element access.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row = k * rhs.cols;
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[row + j];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.shape(),
                found: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        Ok(out)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Self) -> Result<Self, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.shape(),
                found: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        Ok(out)
    }

    /// Scales every element by `s`.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Solves `self * x = b` via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self` is not square or
    /// `b.rows() != self.rows()`, and [`LinalgError::Singular`] if no unique
    /// solution exists.
    pub fn solve(&self, b: &Self) -> Result<Self, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.rows),
                found: self.shape(),
            });
        }
        if b.rows != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, b.cols),
                found: b.shape(),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut x = b.clone();
        // Gaussian elimination with partial pivoting, applied to b in lockstep.
        for col in 0..n {
            let mut pivot = col;
            let mut best = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let v = lu[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    lu.swap(col * n + j, pivot * n + j);
                }
                for j in 0..x.cols {
                    x.data.swap(col * x.cols + j, pivot * x.cols + j);
                }
            }
            let d = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / d;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    lu[r * n + j] -= factor * lu[col * n + j];
                }
                for j in 0..x.cols {
                    x.data[r * x.cols + j] -= factor * x.data[col * x.cols + j];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let d = lu[col * n + col];
            for j in 0..x.cols {
                let mut acc = x.data[col * x.cols + j];
                for k in (col + 1)..n {
                    acc -= lu[col * n + k] * x.data[k * x.cols + j];
                }
                x.data[col * x.cols + j] = acc / d;
            }
        }
        Ok(x)
    }

    /// The matrix inverse, via [`Matrix::solve`] against the identity.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if not square, or
    /// [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Self, LinalgError> {
        self.solve(&Self::identity(self.rows))
    }

    /// Cholesky decomposition: returns lower-triangular `L` with
    /// `L * Lᵀ = self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if not square, or
    /// [`LinalgError::Singular`] if the matrix is not positive-definite.
    pub fn cholesky(&self) -> Result<Self, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.rows),
                found: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Self::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                for k in 0..j {
                    sum -= l.data[i * n + k] * l.data[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::Singular);
                    }
                    l.data[i * n + j] = sum.sqrt();
                } else {
                    l.data[i * n + j] = sum / l.data[j * n + j];
                }
            }
        }
        Ok(l)
    }

    /// The trace (sum of diagonal elements).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// The Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every corresponding element differs by less than
    /// `tol`.
    #[must_use]
    pub fn approx_eq(&self, rhs: &Self, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(&rhs.data).all(|(a, b)| (a - b).abs() < tol)
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.mul(&i).unwrap(), a);
    }

    #[test]
    fn mul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = Matrix::column(&[1.0, -2.0]);
        let b = a.mul(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn solve_singular_is_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::column(&[1.0, 2.0]);
        assert_eq!(a.solve(&b), Err(LinalgError::Singular));
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let back = l.mul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(a.cholesky(), Err(LinalgError::Singular));
    }

    #[test]
    fn trace_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn checked_get() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(1, 1), Some(1.0));
        assert_eq!(a.get(2, 0), None);
    }

    fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-2.0..2.0f64, n * n).prop_map(move |vals| {
            // B·Bᵀ + n·I is symmetric positive-definite.
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    b[(i, j)] = vals[i * n + j];
                }
            }
            let mut spd = b.mul(&b.transpose()).unwrap();
            for i in 0..n {
                spd[(i, i)] += n as f64;
            }
            spd
        })
    }

    proptest! {
        #[test]
        fn prop_solve_inverts(m in arb_spd(4), xs in prop::collection::vec(-5.0..5.0f64, 4)) {
            let x_true = Matrix::column(&xs);
            let b = m.mul(&x_true).unwrap();
            let x = m.solve(&b).unwrap();
            prop_assert!(x.approx_eq(&x_true, 1e-6));
        }

        #[test]
        fn prop_cholesky_round_trip(m in arb_spd(5)) {
            let l = m.cholesky().unwrap();
            let back = l.mul(&l.transpose()).unwrap();
            prop_assert!(back.approx_eq(&m, 1e-8));
        }

        #[test]
        fn prop_transpose_of_product((a, b) in (arb_spd(3), arb_spd(3))) {
            // (AB)ᵀ = BᵀAᵀ
            let left = a.mul(&b).unwrap().transpose();
            let right = b.transpose().mul(&a.transpose()).unwrap();
            prop_assert!(left.approx_eq(&right, 1e-9));
        }
    }
}
