//! Minimal 2D/3D geometry: vectors, rotations, rigid poses.
//!
//! These types are deliberately small and `Copy`; kernel inner loops use
//! them directly without allocation.

use serde::{Deserialize, Serialize};

/// A 2D vector (also used as a 2D point).
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a + Vec2::new(1.0, -1.0), Vec2::new(4.0, 3.0));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[inline]
    #[must_use]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2D cross product (z component of the 3D cross product).
    #[inline]
    #[must_use]
    pub fn cross(self, rhs: Self) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[inline]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec2::norm`]).
    #[inline]
    #[must_use]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    #[must_use]
    pub fn distance(self, rhs: Self) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance to another point.
    #[inline]
    #[must_use]
    pub fn distance_squared(self, rhs: Self) -> f64 {
        (self - rhs).norm_squared()
    }

    /// The unit vector in this direction, or zero if this is the zero
    /// vector.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Self::ZERO
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    #[must_use]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        self + (other - self) * t
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    #[must_use]
    pub fn rotated(self, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The angle of this vector from the +x axis, in `(-π, π]`.
    #[inline]
    #[must_use]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl core::ops::Add for Vec2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl core::ops::Sub for Vec2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl core::ops::Mul<f64> for Vec2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs)
    }
}

impl core::ops::Div<f64> for Vec2 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.x / rhs, self.y / rhs)
    }
}

impl core::ops::Neg for Vec2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl core::ops::AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl core::ops::SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

/// A 3D vector.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec3;
///
/// let x = Vec3::new(1.0, 0.0, 0.0);
/// let y = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    #[inline]
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    #[inline]
    #[must_use]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    #[must_use]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    #[must_use]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// The unit vector in this direction, or zero for the zero vector.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n > 0.0 {
            self * (1.0 / n)
        } else {
            Self::ZERO
        }
    }
}

impl core::ops::Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl core::ops::Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl core::ops::Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl core::ops::Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl core::ops::AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

/// Normalizes an angle into `(-π, π]`.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::normalize_angle;
///
/// let a = normalize_angle(3.0 * std::f64::consts::PI);
/// assert!((a - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn normalize_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * core::f64::consts::PI;
    let mut a = angle % two_pi;
    if a <= -core::f64::consts::PI {
        a += two_pi;
    } else if a > core::f64::consts::PI {
        a -= two_pi;
    }
    a
}

/// A planar rigid pose: position plus heading.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::{Pose2, Vec2};
///
/// let pose = Pose2::new(Vec2::new(1.0, 2.0), std::f64::consts::FRAC_PI_2);
/// let p = pose.transform_point(Vec2::new(1.0, 0.0));
/// assert!((p.x - 1.0).abs() < 1e-12);
/// assert!((p.y - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose2 {
    /// Position in the world frame.
    pub position: Vec2,
    /// Heading in radians, normalized to `(-π, π]` by [`Pose2::new`].
    pub heading: f64,
}

impl Pose2 {
    /// Creates a pose, normalizing the heading into `(-π, π]`.
    #[inline]
    #[must_use]
    pub fn new(position: Vec2, heading: f64) -> Self {
        Self { position, heading: normalize_angle(heading) }
    }

    /// The identity pose at the origin.
    #[inline]
    #[must_use]
    pub fn identity() -> Self {
        Self::default()
    }

    /// Maps a point from this pose's body frame into the world frame.
    #[inline]
    #[must_use]
    pub fn transform_point(self, local: Vec2) -> Vec2 {
        self.position + local.rotated(self.heading)
    }

    /// Maps a world-frame point into this pose's body frame.
    #[inline]
    #[must_use]
    pub fn inverse_transform_point(self, world: Vec2) -> Vec2 {
        (world - self.position).rotated(-self.heading)
    }

    /// Composes two poses: applies `rhs` in this pose's frame.
    #[inline]
    #[must_use]
    pub fn compose(self, rhs: Self) -> Self {
        Self::new(self.position + rhs.position.rotated(self.heading), self.heading + rhs.heading)
    }

    /// The inverse pose, such that `p.compose(p.inverse())` is identity.
    #[inline]
    #[must_use]
    pub fn inverse(self) -> Self {
        let inv_heading = -self.heading;
        Self::new((-self.position).rotated(inv_heading), inv_heading)
    }

    /// Unit vector along the heading direction.
    #[inline]
    #[must_use]
    pub fn forward(self) -> Vec2 {
        Vec2::new(self.heading.cos(), self.heading.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-9;

    fn approx(a: Vec2, b: Vec2) -> bool {
        (a - b).norm() < EPS
    }

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!((a * 2.0).x, 2.0);
        assert!(approx(a.lerp(b, 0.0), a));
        assert!(approx(a.lerp(b, 1.0), b));
    }

    #[test]
    fn vec2_rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.2345);
        assert!((r.norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn normalize_angle_range() {
        for k in -10..=10 {
            let a = normalize_angle(0.5 + k as f64 * 2.0 * core::f64::consts::PI);
            assert!((a - 0.5).abs() < 1e-9, "k={k} a={a}");
        }
    }

    #[test]
    fn pose_compose_inverse_is_identity() {
        let p = Pose2::new(Vec2::new(2.0, -1.0), 0.7);
        let id = p.compose(p.inverse());
        assert!(approx(id.position, Vec2::ZERO));
        assert!(id.heading.abs() < EPS);
    }

    #[test]
    fn pose_transform_round_trip() {
        let p = Pose2::new(Vec2::new(5.0, 3.0), -1.1);
        let local = Vec2::new(0.4, -0.9);
        let world = p.transform_point(local);
        let back = p.inverse_transform_point(world);
        assert!(approx(back, local));
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_norm(x in -100.0..100.0f64, y in -100.0..100.0f64, a in -10.0..10.0f64) {
            let v = Vec2::new(x, y);
            prop_assert!((v.rotated(a).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_normalize_angle_in_range(a in -1000.0..1000.0f64) {
            let n = normalize_angle(a);
            prop_assert!(n > -core::f64::consts::PI - 1e-12);
            prop_assert!(n <= core::f64::consts::PI + 1e-12);
            // Same direction as the input.
            prop_assert!(((n - a).rem_euclid(2.0 * core::f64::consts::PI)).abs() < 1e-6
                || ((n - a).rem_euclid(2.0 * core::f64::consts::PI) - 2.0 * core::f64::consts::PI).abs() < 1e-6);
        }

        #[test]
        fn prop_pose_compose_associative(
            x1 in -10.0..10.0f64, y1 in -10.0..10.0f64, h1 in -3.0..3.0f64,
            x2 in -10.0..10.0f64, y2 in -10.0..10.0f64, h2 in -3.0..3.0f64,
            x3 in -10.0..10.0f64, y3 in -10.0..10.0f64, h3 in -3.0..3.0f64,
        ) {
            let a = Pose2::new(Vec2::new(x1, y1), h1);
            let b = Pose2::new(Vec2::new(x2, y2), h2);
            let c = Pose2::new(Vec2::new(x3, y3), h3);
            let left = a.compose(b).compose(c);
            let right = a.compose(b.compose(c));
            prop_assert!((left.position - right.position).norm() < 1e-6);
            prop_assert!(normalize_angle(left.heading - right.heading).abs() < 1e-6);
        }

        #[test]
        fn prop_inverse_transform_round_trip(
            px in -10.0..10.0f64, py in -10.0..10.0f64, h in -3.0..3.0f64,
            qx in -10.0..10.0f64, qy in -10.0..10.0f64,
        ) {
            let p = Pose2::new(Vec2::new(px, py), h);
            let q = Vec2::new(qx, qy);
            let back = p.transform_point(p.inverse_transform_point(q));
            prop_assert!((back - q).norm() < 1e-8);
        }
    }
}
