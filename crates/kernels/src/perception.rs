//! A synthetic visual-feature front end: keypoint detection on procedurally
//! generated images and binary-descriptor matching.
//!
//! This stands in for the camera-side workload of a visual-inertial
//! odometry pipeline (Navion-class). The images are synthetic, but the
//! computational structure is faithful: a corner-score pass over every
//! pixel, non-maximum suppression, descriptor extraction, and
//! Hamming-distance brute-force matching — the same mix of stencil,
//! sort-like, and distance-kernel work a real front end spends its cycles
//! on.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// Creates an image from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or either dimension is 0.
    #[must_use]
    pub fn new(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Self { width, height, pixels }
    }

    /// Procedurally generates a textured scene image: smooth gradient plus
    /// seeded blobs, deterministic in `seed`.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let blobs: Vec<(f64, f64, f64, f64)> = (0..24)
            .map(|_| {
                (
                    rng.gen_range(0.0..width as f64),
                    rng.gen_range(0.0..height as f64),
                    rng.gen_range(3.0..12.0),
                    rng.gen_range(40.0..160.0),
                )
            })
            .collect();
        let mut pixels = vec![0u8; width * height];
        for y in 0..height {
            for x in 0..width {
                let mut v = 40.0 + 30.0 * (x as f64 / width as f64);
                for &(bx, by, r, amp) in &blobs {
                    let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                    if d2 < r * r {
                        v += amp * (1.0 - d2 / (r * r));
                    }
                }
                pixels[y * width + x] = v.clamp(0.0, 255.0) as u8;
            }
        }
        Self { width, height, pixels }
    }

    /// Image width in pixels.
    #[inline]
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Translates the image content by integer offsets, filling vacated
    /// pixels with 0. Used to synthesize camera motion between frames.
    #[must_use]
    pub fn shifted(&self, dx: isize, dy: isize) -> Self {
        let mut out = vec![0u8; self.pixels.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let sx = x as isize - dx;
                let sy = y as isize - dy;
                if sx >= 0 && sy >= 0 && (sx as usize) < self.width && (sy as usize) < self.height {
                    out[y * self.width + x] = self.pixels[sy as usize * self.width + sx as usize];
                }
            }
        }
        Self { width: self.width, height: self.height, pixels: out }
    }
}

/// A detected keypoint with its corner score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// Pixel column.
    pub x: usize,
    /// Pixel row.
    pub y: usize,
    /// Harris-style corner response.
    pub score: f64,
}

/// A 256-bit binary descriptor (BRIEF-style intensity comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor(pub [u64; 4]);

/// Descriptors processed per chunk in the batched Hamming sweep — enough
/// independent popcount chains to keep the execution ports busy, and the
/// fixed trip count lets the compiler unroll and (with
/// `target-cpu=native`) vectorize the XOR+popcount body.
pub const HAMMING_CHUNK: usize = 4;

impl Descriptor {
    /// Hamming distance to another descriptor.
    #[inline]
    #[must_use]
    pub fn distance(&self, other: &Self) -> u32 {
        self.0.iter().zip(&other.0).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Fully unrolled 4-word XOR+popcount — the same sum as
    /// [`Descriptor::distance`] (integer ops, so bit-identical), with the
    /// word loop flattened into four independent chains.
    #[inline]
    fn distance_unrolled(&self, other: &Self) -> u32 {
        let a = &self.0;
        let b = &other.0;
        (a[0] ^ b[0]).count_ones()
            + (a[1] ^ b[1]).count_ones()
            + (a[2] ^ b[2]).count_ones()
            + (a[3] ^ b[3]).count_ones()
    }

    /// Batched Hamming distances: fills `out` with the distance from
    /// `query` to every descriptor in `set`, in order.
    ///
    /// The sweep runs [`HAMMING_CHUNK`] descriptors per step with the
    /// 256-bit XOR+popcount fully unrolled, and reuses `out`'s allocation
    /// across calls. Distances are integers, so the buffer is bit-identical
    /// to calling [`Descriptor::distance`] per element.
    pub fn distances_into(query: &Self, set: &[Self], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(set.len());
        let mut chunks = set.chunks_exact(HAMMING_CHUNK);
        for c in chunks.by_ref() {
            out.push(query.distance_unrolled(&c[0]));
            out.push(query.distance_unrolled(&c[1]));
            out.push(query.distance_unrolled(&c[2]));
            out.push(query.distance_unrolled(&c[3]));
        }
        for d in chunks.remainder() {
            out.push(query.distance_unrolled(d));
        }
    }
}

/// The feature front end: detection, description, matching.
///
/// # Examples
///
/// ```
/// use m7_kernels::perception::{FeatureFrontEnd, Image};
///
/// let frontend = FeatureFrontEnd::new(200, 9);
/// let frame = Image::synthetic(160, 120, 3);
/// let (keypoints, descriptors) = frontend.extract(&frame);
/// assert_eq!(keypoints.len(), descriptors.len());
/// assert!(!keypoints.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FeatureFrontEnd {
    max_features: usize,
    nms_radius: usize,
}

impl FeatureFrontEnd {
    /// Creates a front end keeping at most `max_features` keypoints with
    /// non-maximum suppression over `nms_radius` pixels.
    #[must_use]
    pub fn new(max_features: usize, nms_radius: usize) -> Self {
        Self { max_features, nms_radius }
    }

    /// Detects keypoints and computes their descriptors.
    #[must_use]
    pub fn extract(&self, image: &Image) -> (Vec<Keypoint>, Vec<Descriptor>) {
        let kps = self.detect(image);
        let descs = kps.iter().map(|k| Self::describe(image, k)).collect();
        (kps, descs)
    }

    /// Harris-style corner detection with greedy non-maximum suppression.
    #[must_use]
    pub fn detect(&self, image: &Image) -> Vec<Keypoint> {
        let w = image.width();
        let h = image.height();
        if w < 3 || h < 3 {
            return Vec::new();
        }
        // Sobel gradient fields.
        let mut grad_x = vec![0.0f64; w * h];
        let mut grad_y = vec![0.0f64; w * h];
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let px = |dx: isize, dy: isize| {
                    f64::from(image.at((x as isize + dx) as usize, (y as isize + dy) as usize))
                };
                grad_x[y * w + x] = -px(-1, -1) - 2.0 * px(-1, 0) - px(-1, 1)
                    + px(1, -1)
                    + 2.0 * px(1, 0)
                    + px(1, 1);
                grad_y[y * w + x] = -px(-1, -1) - 2.0 * px(0, -1) - px(1, -1)
                    + px(-1, 1)
                    + 2.0 * px(0, 1)
                    + px(1, 1);
            }
        }
        // Harris response from the 3×3-windowed structure tensor; keep
        // pixels above a fraction of the strongest response.
        let mut responses = Vec::new();
        let mut max_response = 0.0f64;
        for y in 2..h - 2 {
            for x in 2..w - 2 {
                let (mut ixx, mut iyy, mut ixy) = (0.0, 0.0, 0.0);
                for wy in y - 1..=y + 1 {
                    for wx in x - 1..=x + 1 {
                        let gx = grad_x[wy * w + wx];
                        let gy = grad_y[wy * w + wx];
                        ixx += gx * gx;
                        iyy += gy * gy;
                        ixy += gx * gy;
                    }
                }
                let det = ixx * iyy - ixy * ixy;
                let trace = ixx + iyy;
                let response = det - 0.04 * trace * trace;
                if response > 0.0 {
                    max_response = max_response.max(response);
                    responses.push(Keypoint { x, y, score: response });
                }
            }
        }
        let threshold = max_response * 0.01;
        let mut scored: Vec<Keypoint> =
            responses.into_iter().filter(|k| k.score > threshold).collect();
        scored.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        let scored = scored;
        // Greedy NMS.
        let mut kept: Vec<Keypoint> = Vec::new();
        let r2 = (self.nms_radius * self.nms_radius) as isize;
        for k in scored {
            if kept.len() >= self.max_features {
                break;
            }
            let clear = kept.iter().all(|q| {
                let dx = k.x as isize - q.x as isize;
                let dy = k.y as isize - q.y as isize;
                dx * dx + dy * dy > r2
            });
            if clear {
                kept.push(k);
            }
        }
        kept
    }

    /// BRIEF-style descriptor: 256 fixed pseudo-random intensity
    /// comparisons in a 15-pixel patch (border-clamped).
    #[must_use]
    fn describe(image: &Image, kp: &Keypoint) -> Descriptor {
        // Fixed comparison pattern, identical for every keypoint.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xBEEF);
        let mut bits = [0u64; 4];
        for i in 0..256 {
            let (ax, ay, bx, by): (i32, i32, i32, i32) = (
                rng.gen_range(-7..=7),
                rng.gen_range(-7..=7),
                rng.gen_range(-7..=7),
                rng.gen_range(-7..=7),
            );
            let sample = |dx: i32, dy: i32| {
                let x = (kp.x as i32 + dx).clamp(0, image.width() as i32 - 1) as usize;
                let y = (kp.y as i32 + dy).clamp(0, image.height() as i32 - 1) as usize;
                image.at(x, y)
            };
            if sample(ax, ay) > sample(bx, by) {
                bits[i / 64] |= 1u64 << (i % 64);
            }
        }
        Descriptor(bits)
    }

    /// Brute-force mutual-best matching with a ratio test.
    ///
    /// Returns index pairs `(i, j)` into the two descriptor sets.
    ///
    /// Dispatches at compile time: on targets with vector popcount
    /// (AVX-512 `vpopcntq`, enabled by `-C target-cpu=native` on recent
    /// x86), the word-plane lane kernel
    /// ([`FeatureFrontEnd::match_descriptors_planes`]) wins; everywhere
    /// else its two branch-free sweeps cost more than they save over the
    /// interleaved scalar loop, so the scalar path is kept. Both paths
    /// produce bit-identical matches, so the dispatch is unobservable.
    #[must_use]
    pub fn match_descriptors(a: &[Descriptor], b: &[Descriptor]) -> Vec<(usize, usize)> {
        if cfg!(target_feature = "avx512vpopcntdq") {
            Self::match_descriptors_planes(a, b)
        } else {
            Self::match_descriptors_scalar(a, b)
        }
    }

    /// The lane matcher: word-plane layout, packed-key `min` reductions.
    ///
    /// The candidate set is first transposed into four word planes
    /// (`plane_w[j]` = word `w` of descriptor `j`), so each query sweeps
    /// four unit-stride `u64` arrays — the shape the auto-vectorizer turns
    /// into vector XOR + vector popcount on targets that have them
    /// (AVX-512 `vpopcntq` under `target-cpu=native`). Each candidate's
    /// distance and index are packed into a single key `(d << 32) | j`;
    /// the best match is a pure branch-free `min` reduction over keys, and
    /// the second-best distance is a second `min` sweep with the winning
    /// key masked out. Because `d` occupies the high bits and `j` the low
    /// bits, the minimum key is exactly the smallest distance with the
    /// *first* index on ties — the same first-wins rule as the scalar
    /// reference — so match output is bit-identical to
    /// [`FeatureFrontEnd::match_descriptors_scalar`].
    #[must_use]
    pub fn match_descriptors_planes(a: &[Descriptor], b: &[Descriptor]) -> Vec<(usize, usize)> {
        let mut matches = Vec::new();
        if a.is_empty() || b.is_empty() {
            return matches;
        }
        let n = b.len();
        // Transpose once: O(n) against the O(|a|·n) distance sweep.
        let mut planes = vec![0u64; 4 * n];
        let (p0, rest) = planes.split_at_mut(n);
        let (p1, rest) = rest.split_at_mut(n);
        let (p2, p3) = rest.split_at_mut(n);
        for (j, d) in b.iter().enumerate() {
            p0[j] = d.0[0];
            p1[j] = d.0[1];
            p2[j] = d.0[2];
            p3[j] = d.0[3];
        }
        for (i, da) in a.iter().enumerate() {
            let [q0, q1, q2, q3] = da.0;
            // Pass 1: minimum packed key = (best distance, first best index).
            let mut m1 = u64::MAX;
            for j in 0..n {
                let d = ((q0 ^ p0[j]).count_ones()
                    + (q1 ^ p1[j]).count_ones()
                    + (q2 ^ p2[j]).count_ones()
                    + (q3 ^ p3[j]).count_ones()) as u64;
                m1 = m1.min((d << 32) | j as u64);
            }
            // Pass 2: minimum over the remaining keys (winner masked out,
            // branch-free), giving the second-best distance. With a single
            // candidate this stays `u64::MAX`, whose high word is
            // `u32::MAX` — the same "no second" sentinel the scalar
            // reference produces.
            let mut m2 = u64::MAX;
            for j in 0..n {
                let d = ((q0 ^ p0[j]).count_ones()
                    + (q1 ^ p1[j]).count_ones()
                    + (q2 ^ p2[j]).count_ones()
                    + (q3 ^ p3[j]).count_ones()) as u64;
                let key = (d << 32) | j as u64;
                let masked = if key == m1 { u64::MAX } else { key };
                m2 = m2.min(masked);
            }
            let best = ((m1 & 0xffff_ffff) as usize, (m1 >> 32) as u32);
            let second = (m2 >> 32) as u32;
            // Lowe-style ratio test adapted to Hamming distances.
            if second == u32::MAX || (best.1 as f64) < 0.8 * second as f64 {
                matches.push((i, best.0));
            }
        }
        matches
    }

    /// Scalar-reference matcher: interleaved distance + selection per
    /// candidate, no chunking, no distance buffer. Kept public as the
    /// property-tested reference for
    /// [`FeatureFrontEnd::match_descriptors`].
    #[must_use]
    pub fn match_descriptors_scalar(a: &[Descriptor], b: &[Descriptor]) -> Vec<(usize, usize)> {
        let mut matches = Vec::new();
        for (i, da) in a.iter().enumerate() {
            let mut best = (usize::MAX, u32::MAX);
            let mut second = u32::MAX;
            for (j, db) in b.iter().enumerate() {
                let d = da.distance(db);
                if d < best.1 {
                    second = best.1;
                    best = (j, d);
                } else if d < second {
                    second = d;
                }
            }
            if best.0 != usize::MAX && (second == u32::MAX || (best.1 as f64) < 0.8 * second as f64)
            {
                matches.push((i, best.0));
            }
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_image_is_deterministic() {
        let a = Image::synthetic(64, 48, 5);
        let b = Image::synthetic(64, 48, 5);
        assert_eq!(a, b);
        let c = Image::synthetic(64, 48, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn detects_features_on_textured_image() {
        let img = Image::synthetic(160, 120, 1);
        let fe = FeatureFrontEnd::new(100, 7);
        let kps = fe.detect(&img);
        assert!(kps.len() > 10, "textured image should yield corners, got {}", kps.len());
        assert!(kps.len() <= 100);
        // NMS: no two keypoints closer than the radius.
        for (i, a) in kps.iter().enumerate() {
            for b in &kps[i + 1..] {
                let dx = a.x as isize - b.x as isize;
                let dy = a.y as isize - b.y as isize;
                assert!(dx * dx + dy * dy > 49);
            }
        }
    }

    #[test]
    fn descriptor_distance_properties() {
        let d0 = Descriptor([0, 0, 0, 0]);
        let d1 = Descriptor([u64::MAX, 0, 0, 0]);
        assert_eq!(d0.distance(&d0), 0);
        assert_eq!(d0.distance(&d1), 64);
        assert_eq!(d1.distance(&d0), 64);
    }

    #[test]
    fn matching_survives_small_shift() {
        // Seed chosen for a well-textured blob layout: plenty of corners
        // survive the shift, so the consistency margin is comfortable.
        let img = Image::synthetic(160, 120, 4);
        let moved = img.shifted(3, 1);
        let fe = FeatureFrontEnd::new(80, 7);
        let (ka, da) = fe.extract(&img);
        let (kb, db) = fe.extract(&moved);
        let matches = FeatureFrontEnd::match_descriptors(&da, &db);
        assert!(!matches.is_empty(), "shifted frame should still match");
        // Most matches should be consistent with the (3, 1) shift.
        let consistent = matches
            .iter()
            .filter(|&&(i, j)| {
                let dx = kb[j].x as isize - ka[i].x as isize;
                let dy = kb[j].y as isize - ka[i].y as isize;
                (dx - 3).abs() <= 2 && (dy - 1).abs() <= 2
            })
            .count();
        assert!(
            consistent * 2 > matches.len(),
            "{consistent}/{} matches consistent with the shift",
            matches.len()
        );
    }

    fn random_descriptors(n: usize, seed: u64) -> Vec<Descriptor> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Descriptor([rng.gen(), rng.gen(), rng.gen(), rng.gen()])).collect()
    }

    /// Chunked distance sweep is bit-identical to per-element `distance`
    /// at every remainder length (`len % HAMMING_CHUNK ∈ {0..CHUNK-1}`).
    #[test]
    fn chunked_distances_match_scalar_at_every_remainder() {
        let query = random_descriptors(1, 1)[0];
        let mut buf = Vec::new();
        for n in 0..=2 * HAMMING_CHUNK + 1 {
            let set = random_descriptors(n, n as u64 + 10);
            Descriptor::distances_into(&query, &set, &mut buf);
            let expected: Vec<u32> = set.iter().map(|d| query.distance(d)).collect();
            assert_eq!(buf, expected, "divergence at set length {n}");
        }
    }

    /// Buffered matcher is bit-identical to the scalar reference,
    /// including duplicate-distance tie-breaking and ratio-test edges.
    #[test]
    fn batched_matcher_matches_scalar_reference() {
        for (na, nb, seed) in [(0, 5, 1), (5, 0, 2), (7, 7, 3), (40, 37, 4), (33, 64, 5), (8, 1, 6)]
        {
            let a = random_descriptors(na, seed);
            let mut b = random_descriptors(nb, seed + 100);
            // Force duplicate distances so tie-breaking is exercised.
            if nb >= 2 {
                b[nb - 1] = b[0];
            }
            // The lane kernel itself, plus the compile-time dispatcher
            // (whichever path this build selected).
            assert_eq!(
                FeatureFrontEnd::match_descriptors_planes(&a, &b),
                FeatureFrontEnd::match_descriptors_scalar(&a, &b),
                "lane matcher divergence at sizes {na}x{nb}"
            );
            assert_eq!(
                FeatureFrontEnd::match_descriptors(&a, &b),
                FeatureFrontEnd::match_descriptors_scalar(&a, &b),
                "dispatcher divergence at sizes {na}x{nb}"
            );
        }
    }

    #[test]
    fn empty_on_tiny_image() {
        let img = Image::new(2, 2, vec![0; 4]);
        let fe = FeatureFrontEnd::new(10, 3);
        assert!(fe.detect(&img).is_empty());
    }
}
