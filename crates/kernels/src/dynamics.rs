//! Rigid-body dynamics for planar serial chains: recursive Newton-Euler
//! inverse dynamics (RNEA) and forward kinematics.
//!
//! This is the manipulator workload class targeted by robomorphic-computing
//! style accelerators; experiment E4 uses its per-joint recurrence as one of
//! the task kernels.

use serde::{Deserialize, Serialize};

/// Gravitational acceleration used by the chain model (m/s²).
pub const GRAVITY: f64 = 9.81;

/// One revolute link of a planar serial chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Link length (meters).
    pub length: f64,
    /// Link mass (kilograms).
    pub mass: f64,
    /// Distance from the joint to the link's center of mass (meters).
    pub com_offset: f64,
    /// Rotational inertia about the center of mass (kg·m²).
    pub inertia: f64,
}

impl Link {
    /// A uniform thin rod of the given length and mass.
    #[must_use]
    pub fn uniform_rod(length: f64, mass: f64) -> Self {
        Self { length, mass, com_offset: length / 2.0, inertia: mass * length * length / 12.0 }
    }
}

/// A planar serial manipulator with revolute joints.
///
/// # Examples
///
/// ```
/// use m7_kernels::dynamics::{Link, SerialChain};
///
/// let chain = SerialChain::new(vec![Link::uniform_rod(1.0, 2.0); 3]);
/// let q = [0.1, -0.2, 0.3];
/// let tip = chain.forward_kinematics(&q);
/// assert!(tip.0.hypot(tip.1) <= 3.0 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerialChain {
    links: Vec<Link>,
}

impl SerialChain {
    /// Creates a chain from its links (base to tip).
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    #[must_use]
    pub fn new(links: Vec<Link>) -> Self {
        assert!(!links.is_empty(), "a chain needs at least one link");
        Self { links }
    }

    /// Number of joints.
    #[must_use]
    pub fn dof(&self) -> usize {
        self.links.len()
    }

    /// The links, base to tip.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Tip position `(x, y)` for joint angles `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.dof()`.
    #[must_use]
    pub fn forward_kinematics(&self, q: &[f64]) -> (f64, f64) {
        assert_eq!(q.len(), self.dof(), "joint vector length mismatch");
        let mut angle = 0.0;
        let (mut x, mut y) = (0.0, 0.0);
        for (link, qi) in self.links.iter().zip(q) {
            angle += qi;
            x += link.length * angle.cos();
            y += link.length * angle.sin();
        }
        (x, y)
    }

    /// Inverse dynamics via the planar recursive Newton-Euler algorithm:
    /// joint torques required to realize accelerations `qdd` at state
    /// `(q, qd)` under gravity.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from `self.dof()`.
    #[must_use]
    pub fn inverse_dynamics(&self, q: &[f64], qd: &[f64], qdd: &[f64]) -> Vec<f64> {
        let n = self.dof();
        assert_eq!(q.len(), n, "q length mismatch");
        assert_eq!(qd.len(), n, "qd length mismatch");
        assert_eq!(qdd.len(), n, "qdd length mismatch");

        // Forward pass: absolute angle, angular velocity/acceleration, and
        // linear acceleration of each link origin and COM.
        let mut theta = vec![0.0; n];
        let mut omega = vec![0.0; n];
        let mut alpha = vec![0.0; n];
        // Acceleration of each joint origin; gravity enters as a base
        // acceleration of +g in y (d'Alembert).
        let mut ax = vec![0.0; n + 1];
        let mut ay = vec![0.0; n + 1];
        ay[0] = GRAVITY;
        let mut acc_theta = 0.0;
        let mut acc_omega = 0.0;
        let mut acc_alpha = 0.0;
        let mut com_ax = vec![0.0; n];
        let mut com_ay = vec![0.0; n];
        for i in 0..n {
            acc_theta += q[i];
            acc_omega += qd[i];
            acc_alpha += qdd[i];
            theta[i] = acc_theta;
            omega[i] = acc_omega;
            alpha[i] = acc_alpha;
            let (s, c) = theta[i].sin_cos();
            // COM acceleration: origin + rotational terms at com_offset.
            let r = self.links[i].com_offset;
            com_ax[i] = ax[i] - alpha[i] * r * s - omega[i] * omega[i] * r * c;
            com_ay[i] = ay[i] + alpha[i] * r * c - omega[i] * omega[i] * r * s;
            // Next joint origin: same with the full link length.
            let l = self.links[i].length;
            ax[i + 1] = ax[i] - alpha[i] * l * s - omega[i] * omega[i] * l * c;
            ay[i + 1] = ay[i] + alpha[i] * l * c - omega[i] * omega[i] * l * s;
        }

        // Backward pass: accumulate forces and torques from the tip.
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut torque_carry = 0.0;
        let mut tau = vec![0.0; n];
        for i in (0..n).rev() {
            let link = &self.links[i];
            let (s, c) = theta[i].sin_cos();
            let rcx = link.com_offset * c;
            let rcy = link.com_offset * s;
            let rlx = link.length * c;
            let rly = link.length * s;
            // Force balance: F_i = m a_com + F_{i+1}
            let fxi = link.mass * com_ax[i] + fx;
            let fyi = link.mass * com_ay[i] + fy;
            // Torque about the joint: inertia + COM force moment + child
            // wrench moment.
            let tau_i = link.inertia * alpha[i] + rcx * (link.mass * com_ay[i])
                - rcy * (link.mass * com_ax[i])
                + torque_carry
                + rlx * fy
                - rly * fx;
            tau[i] = tau_i;
            fx = fxi;
            fy = fyi;
            torque_carry = tau_i;
        }
        tau
    }

    /// Floating-point-operation estimate for one inverse-dynamics call
    /// (linear in the number of joints, like the algorithm itself).
    #[must_use]
    pub fn rnea_flops(&self) -> f64 {
        // ~60 flops per joint for the planar recursion.
        60.0 * self.dof() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn three_link() -> SerialChain {
        SerialChain::new(vec![
            Link::uniform_rod(1.0, 2.0),
            Link::uniform_rod(0.8, 1.5),
            Link::uniform_rod(0.5, 0.8),
        ])
    }

    #[test]
    fn fk_straight_chain() {
        let chain = three_link();
        let (x, y) = chain.forward_kinematics(&[0.0, 0.0, 0.0]);
        assert!((x - 2.3).abs() < 1e-12);
        assert!(y.abs() < 1e-12);
    }

    #[test]
    fn fk_folded_chain() {
        let chain = SerialChain::new(vec![Link::uniform_rod(1.0, 1.0); 2]);
        let (x, y) = chain.forward_kinematics(&[0.0, core::f64::consts::PI]);
        assert!(x.abs() < 1e-12, "folded back onto the base, x = {x}");
        assert!(y.abs() < 1e-12);
    }

    #[test]
    fn gravity_torque_of_horizontal_rod() {
        // A single uniform rod held horizontal: τ = m g l/2.
        let chain = SerialChain::new(vec![Link::uniform_rod(1.0, 2.0)]);
        let tau = chain.inverse_dynamics(&[0.0], &[0.0], &[0.0]);
        let expected = 2.0 * GRAVITY * 0.5;
        assert!((tau[0] - expected).abs() < 1e-9, "got {} want {expected}", tau[0]);
    }

    #[test]
    fn vertical_rod_needs_no_torque() {
        let chain = SerialChain::new(vec![Link::uniform_rod(1.0, 2.0)]);
        let tau = chain.inverse_dynamics(&[core::f64::consts::FRAC_PI_2], &[0.0], &[0.0]);
        assert!(tau[0].abs() < 1e-9, "upright rod is balanced, got {}", tau[0]);
    }

    #[test]
    fn acceleration_adds_inertial_torque() {
        // Rod pointing up (no gravity torque): τ = (I_com + m r²) qdd.
        let link = Link::uniform_rod(1.0, 2.0);
        let chain = SerialChain::new(vec![link]);
        let qdd = 3.0;
        let tau = chain.inverse_dynamics(&[core::f64::consts::FRAC_PI_2], &[0.0], &[qdd]);
        let expected = (link.inertia + link.mass * link.com_offset * link.com_offset) * qdd;
        assert!((tau[0] - expected).abs() < 1e-9, "got {} want {expected}", tau[0]);
    }

    #[test]
    fn torques_linear_in_acceleration() {
        // With qd = 0, τ(qdd) − τ(0) is linear in qdd.
        let chain = three_link();
        let q = [0.3, -0.5, 0.9];
        let tau0 = chain.inverse_dynamics(&q, &[0.0; 3], &[0.0; 3]);
        let tau1 = chain.inverse_dynamics(&q, &[0.0; 3], &[1.0, 0.0, 0.0]);
        let tau2 = chain.inverse_dynamics(&q, &[0.0; 3], &[2.0, 0.0, 0.0]);
        for j in 0..3 {
            let d1 = tau1[j] - tau0[j];
            let d2 = tau2[j] - tau0[j];
            assert!((d2 - 2.0 * d1).abs() < 1e-9, "joint {j}: {d1} vs {d2}");
        }
    }

    #[test]
    fn flops_scale_with_dof() {
        let small = SerialChain::new(vec![Link::uniform_rod(1.0, 1.0); 2]);
        let large = SerialChain::new(vec![Link::uniform_rod(1.0, 1.0); 8]);
        assert!((large.rnea_flops() / small.rnea_flops() - 4.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_fk_within_reach(
            q in prop::collection::vec(-3.0..3.0f64, 3),
        ) {
            let chain = three_link();
            let (x, y) = chain.forward_kinematics(&q);
            let reach: f64 = chain.links().iter().map(|l| l.length).sum();
            prop_assert!(x.hypot(y) <= reach + 1e-9);
        }

        #[test]
        fn prop_gravity_torques_bounded(
            q in prop::collection::vec(-3.0..3.0f64, 3),
        ) {
            // Static gravity torque at any pose is bounded by Σ m g · reach.
            let chain = three_link();
            let tau = chain.inverse_dynamics(&q, &[0.0; 3], &[0.0; 3]);
            let reach: f64 = chain.links().iter().map(|l| l.length).sum();
            let total_mass: f64 = chain.links().iter().map(|l| l.mass).sum();
            let bound = total_mass * GRAVITY * reach;
            for t in tau {
                prop_assert!(t.abs() <= bound + 1e-6);
            }
        }
    }
}
