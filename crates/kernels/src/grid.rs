//! 2D occupancy-grid mapping with log-odds updates and ray casting.
//!
//! The grid is the mapping substrate for the SLAM kernels and the obstacle
//! representation used by the end-to-end simulator. Updates follow the
//! standard log-odds Bayes filter: each lidar ray decrements the cells it
//! passes through (free) and increments the cell it terminates in
//! (occupied).

use crate::geometry::Vec2;
use serde::{Deserialize, Serialize};

/// Log-odds increment applied to the endpoint cell of a hit ray.
const LOG_ODDS_OCCUPIED: f64 = 0.85;
/// Log-odds decrement applied to traversed cells.
const LOG_ODDS_FREE: f64 = -0.4;
/// Saturation bound for cell log-odds.
const LOG_ODDS_CLAMP: f64 = 10.0;

/// A 2D occupancy grid over a rectangular region anchored at the origin.
///
/// Cell values are log-odds of occupancy; [`OccupancyGrid::probability`]
/// converts to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::grid::OccupancyGrid;
///
/// let mut grid = OccupancyGrid::new(10.0, 10.0, 0.5);
/// grid.integrate_ray(Vec2::new(1.0, 1.0), Vec2::new(4.0, 1.0), true);
/// // The hit cell is now more likely occupied than an untouched cell.
/// assert!(grid.probability(Vec2::new(4.0, 1.0)) > 0.5);
/// assert!(grid.probability(Vec2::new(2.0, 1.0)) < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyGrid {
    width_cells: usize,
    height_cells: usize,
    resolution: f64,
    log_odds: Vec<f64>,
}

impl OccupancyGrid {
    /// Creates an all-unknown grid covering `width` × `height` meters with
    /// square cells of side `resolution` meters.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or non-finite.
    #[must_use]
    pub fn new(width: f64, height: f64, resolution: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        assert!(height > 0.0 && height.is_finite(), "height must be positive");
        assert!(resolution > 0.0 && resolution.is_finite(), "resolution must be positive");
        let width_cells = (width / resolution).ceil() as usize;
        let height_cells = (height / resolution).ceil() as usize;
        Self {
            width_cells,
            height_cells,
            resolution,
            log_odds: vec![0.0; width_cells * height_cells],
        }
    }

    /// Grid width in cells.
    #[inline]
    #[must_use]
    pub fn width_cells(&self) -> usize {
        self.width_cells
    }

    /// Grid height in cells.
    #[inline]
    #[must_use]
    pub fn height_cells(&self) -> usize {
        self.height_cells
    }

    /// Cell side length in meters.
    #[inline]
    #[must_use]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Converts a world point to cell indices, or `None` if out of bounds.
    #[inline]
    #[must_use]
    pub fn cell_of(&self, p: Vec2) -> Option<(usize, usize)> {
        if p.x < 0.0 || p.y < 0.0 {
            return None;
        }
        let cx = (p.x / self.resolution) as usize;
        let cy = (p.y / self.resolution) as usize;
        if cx < self.width_cells && cy < self.height_cells {
            Some((cx, cy))
        } else {
            None
        }
    }

    /// The center of cell `(cx, cy)` in world coordinates.
    #[inline]
    #[must_use]
    pub fn cell_center(&self, cx: usize, cy: usize) -> Vec2 {
        Vec2::new((cx as f64 + 0.5) * self.resolution, (cy as f64 + 0.5) * self.resolution)
    }

    /// The occupancy probability of the cell containing `p`, or `0.5`
    /// (unknown) outside the grid.
    #[must_use]
    pub fn probability(&self, p: Vec2) -> f64 {
        match self.cell_of(p) {
            Some((cx, cy)) => {
                let lo = self.log_odds[cy * self.width_cells + cx];
                1.0 - 1.0 / (1.0 + lo.exp())
            }
            None => 0.5,
        }
    }

    /// Raw log-odds of cell `(cx, cy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    #[must_use]
    pub fn log_odds_at(&self, cx: usize, cy: usize) -> f64 {
        assert!(cx < self.width_cells && cy < self.height_cells, "cell out of bounds");
        self.log_odds[cy * self.width_cells + cx]
    }

    /// Integrates one range-sensor ray from `origin` toward `endpoint`.
    ///
    /// Cells traversed by the ray are updated as free; if `hit` is true the
    /// endpoint cell is updated as occupied (a max-range miss passes
    /// `hit = false`). Returns the number of cells updated.
    pub fn integrate_ray(&mut self, origin: Vec2, endpoint: Vec2, hit: bool) -> usize {
        let cells = self.traverse(origin, endpoint);
        let n = cells.len();
        for (i, (cx, cy)) in cells.into_iter().enumerate() {
            let last = i + 1 == n;
            let delta = if last && hit { LOG_ODDS_OCCUPIED } else { LOG_ODDS_FREE };
            let v = &mut self.log_odds[cy * self.width_cells + cx];
            *v = (*v + delta).clamp(-LOG_ODDS_CLAMP, LOG_ODDS_CLAMP);
        }
        n
    }

    /// The cells crossed by the segment `origin → endpoint` (integer
    /// supercover via DDA), clipped to the grid.
    #[must_use]
    pub fn traverse(&self, origin: Vec2, endpoint: Vec2) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let delta = endpoint - origin;
        let len = delta.norm();
        if len == 0.0 {
            if let Some(c) = self.cell_of(origin) {
                out.push(c);
            }
            return out;
        }
        // Step at half-resolution so no cell on the segment is skipped.
        let steps = (len / (self.resolution * 0.5)).ceil() as usize;
        let mut last = None;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let p = origin.lerp(endpoint, t);
            if let Some(c) = self.cell_of(p) {
                if last != Some(c) {
                    out.push(c);
                    last = Some(c);
                }
            }
        }
        out
    }

    /// Casts a ray against occupied cells (probability > `threshold`),
    /// returning the world point of the first hit, if any, within `max_range`.
    #[must_use]
    pub fn raycast(
        &self,
        origin: Vec2,
        direction: Vec2,
        max_range: f64,
        threshold: f64,
    ) -> Option<Vec2> {
        let dir = direction.normalized();
        if dir == Vec2::ZERO {
            return None;
        }
        let endpoint = origin + dir * max_range;
        for (cx, cy) in self.traverse(origin, endpoint) {
            let center = self.cell_center(cx, cy);
            if self.probability(center) > threshold {
                return Some(center);
            }
        }
        None
    }

    /// Fraction of cells whose state is known (log-odds moved away from 0),
    /// a coverage metric used by exploration missions.
    #[must_use]
    pub fn known_fraction(&self) -> f64 {
        let known = self.log_odds.iter().filter(|v| v.abs() > 1e-9).count();
        known as f64 / self.log_odds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_grid_is_unknown() {
        let g = OccupancyGrid::new(5.0, 5.0, 0.5);
        assert_eq!(g.width_cells(), 10);
        assert_eq!(g.height_cells(), 10);
        assert_eq!(g.probability(Vec2::new(2.0, 2.0)), 0.5);
        assert_eq!(g.known_fraction(), 0.0);
    }

    #[test]
    fn out_of_bounds_is_unknown() {
        let g = OccupancyGrid::new(5.0, 5.0, 0.5);
        assert_eq!(g.probability(Vec2::new(-1.0, 2.0)), 0.5);
        assert_eq!(g.probability(Vec2::new(2.0, 9.0)), 0.5);
        assert_eq!(g.cell_of(Vec2::new(100.0, 0.0)), None);
    }

    #[test]
    fn ray_marks_free_and_occupied() {
        let mut g = OccupancyGrid::new(10.0, 10.0, 0.25);
        for _ in 0..8 {
            g.integrate_ray(Vec2::new(1.0, 5.0), Vec2::new(8.0, 5.0), true);
        }
        assert!(g.probability(Vec2::new(8.0, 5.0)) > 0.9);
        assert!(g.probability(Vec2::new(4.0, 5.0)) < 0.1);
        assert!(g.known_fraction() > 0.0);
    }

    #[test]
    fn max_range_miss_marks_only_free() {
        let mut g = OccupancyGrid::new(10.0, 10.0, 0.25);
        g.integrate_ray(Vec2::new(1.0, 5.0), Vec2::new(8.0, 5.0), false);
        assert!(g.probability(Vec2::new(8.0, 5.0)) < 0.5);
    }

    #[test]
    fn raycast_finds_occupied_cell() {
        let mut g = OccupancyGrid::new(10.0, 10.0, 0.25);
        for _ in 0..10 {
            g.integrate_ray(Vec2::new(1.0, 5.0), Vec2::new(7.0, 5.0), true);
        }
        let hit = g.raycast(Vec2::new(1.0, 5.0), Vec2::new(1.0, 0.0), 9.0, 0.7);
        let hit = hit.expect("should hit the occupied cell");
        assert!((hit.x - 7.0).abs() < 0.5);
        let miss = g.raycast(Vec2::new(1.0, 2.0), Vec2::new(1.0, 0.0), 9.0, 0.7);
        assert!(miss.is_none());
    }

    #[test]
    fn traverse_includes_both_ends() {
        let g = OccupancyGrid::new(10.0, 10.0, 1.0);
        let cells = g.traverse(Vec2::new(0.5, 0.5), Vec2::new(3.5, 0.5));
        assert_eq!(cells.first(), Some(&(0, 0)));
        assert_eq!(cells.last(), Some(&(3, 0)));
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn zero_length_ray() {
        let mut g = OccupancyGrid::new(4.0, 4.0, 1.0);
        let n = g.integrate_ray(Vec2::new(1.5, 1.5), Vec2::new(1.5, 1.5), true);
        assert_eq!(n, 1);
        assert!(g.probability(Vec2::new(1.5, 1.5)) > 0.5);
    }

    #[test]
    fn log_odds_saturate() {
        let mut g = OccupancyGrid::new(2.0, 2.0, 1.0);
        for _ in 0..1000 {
            g.integrate_ray(Vec2::new(0.5, 0.5), Vec2::new(0.5, 0.5), true);
        }
        assert!(g.log_odds_at(0, 0) <= 10.0 + 1e-12);
    }

    proptest! {
        #[test]
        fn prop_probability_in_unit_interval(
            x in 0.0..10.0f64, y in 0.0..10.0f64,
            ex in 0.0..10.0f64, ey in 0.0..10.0f64,
            hit in proptest::bool::ANY,
        ) {
            let mut g = OccupancyGrid::new(10.0, 10.0, 0.5);
            g.integrate_ray(Vec2::new(x, y), Vec2::new(ex, ey), hit);
            for cx in 0..g.width_cells() {
                for cy in 0..g.height_cells() {
                    let p = g.probability(g.cell_center(cx, cy));
                    prop_assert!((0.0..=1.0).contains(&p));
                }
            }
        }

        #[test]
        fn prop_traverse_cells_are_in_bounds(
            x in -5.0..15.0f64, y in -5.0..15.0f64,
            ex in -5.0..15.0f64, ey in -5.0..15.0f64,
        ) {
            let g = OccupancyGrid::new(10.0, 10.0, 0.5);
            for (cx, cy) in g.traverse(Vec2::new(x, y), Vec2::new(ex, ey)) {
                prop_assert!(cx < g.width_cells());
                prop_assert!(cy < g.height_cells());
            }
        }
    }
}
