//! Executable autonomous-system kernels for the `magseven` framework.
//!
//! This crate implements, from scratch, the computational workloads that the
//! paper's seven challenges are about — real algorithms, not stubs:
//!
//! - [`geometry`] — 2D/3D vectors, rotation, rigid poses.
//! - [`linalg`] — a small dense dynamic matrix with solvers (Cholesky, LU),
//!   the substrate for the EKF and LQR.
//! - [`grid`] — occupancy-grid mapping with ray casting.
//! - [`planning`] — sampling-based motion planning (RRT, RRT*, PRM) on top
//!   of both a *scalar* and a *batched structure-of-arrays* collision
//!   checker; the batched path reproduces the vectorization speedups the
//!   paper cites (Challenge 5).
//! - [`slam`] — landmark EKF-SLAM plus an intentionally "obsolete" dense
//!   grid-correlation variant used by the Build-Bridges experiment
//!   (Challenge 1).
//! - [`perception`] — a synthetic visual-feature front end (detection,
//!   descriptor matching), the camera-side workload.
//! - [`control`] — PID and finite-horizon discrete LQR controllers.
//! - [`dynamics`] — recursive Newton-Euler inverse dynamics for serial
//!   chains (the manipulator workload).
//! - [`dnn`] — a multilayer perceptron with full-precision and quantized
//!   inference, plus a small SGD trainer; the substrate of the Metrics-Matter
//!   experiment (Challenge 2).
//!
//! All randomized components take explicit seeds and are fully
//! deterministic.
//!
//! # Examples
//!
//! ```
//! use m7_kernels::geometry::Vec2;
//! use m7_kernels::planning::{CollisionWorld, Rrt, RrtConfig};
//!
//! let mut world = CollisionWorld::new(20.0, 20.0);
//! world.add_circle(Vec2::new(10.0, 10.0), 2.0);
//! let rrt = Rrt::new(RrtConfig::default(), 7);
//! let path = rrt.plan(&world, Vec2::new(1.0, 1.0), Vec2::new(19.0, 19.0));
//! assert!(path.is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod camera;
pub mod control;
pub mod dnn;
pub mod dynamics;
pub mod geometry;
pub mod geometry3;
pub mod grid;
pub mod linalg;
pub mod perception;
pub mod planning;
pub mod slam;
