//! Pinhole camera geometry: projection, back-projection, and two-view
//! landmark triangulation — the geometric core of a visual-odometry
//! front end.
//!
//! Works in the planar world of the rest of the crate by modeling a
//! camera that looks along the robot's heading and images landmarks onto
//! a 1D image line (the planar reduction of the epipolar geometry; every
//! identity exercised here — projection round trips, triangulation from
//! two views — has the same algebraic shape as its 3D counterpart).

use crate::geometry::{Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// A planar pinhole camera: focal length and principal point in pixels
/// over a 1D image line of `width` pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinholeCamera {
    /// Focal length in pixels.
    pub focal_px: f64,
    /// Principal point (image center) in pixels.
    pub center_px: f64,
    /// Image width in pixels.
    pub width_px: f64,
}

impl PinholeCamera {
    /// A camera with the given horizontal field of view (radians) and
    /// image width.
    ///
    /// # Panics
    ///
    /// Panics if the FoV is not in `(0, π)` or the width is non-positive.
    #[must_use]
    pub fn with_fov(fov_rad: f64, width_px: f64) -> Self {
        assert!(fov_rad > 0.0 && fov_rad < core::f64::consts::PI, "fov must be in (0, pi)");
        assert!(width_px > 0.0, "image width must be positive");
        let focal_px = width_px / (2.0 * (fov_rad / 2.0).tan());
        Self { focal_px, center_px: width_px / 2.0, width_px }
    }

    /// Projects a world point into the image, given the camera pose
    /// (camera looks along `pose.heading`).
    ///
    /// Returns `None` when the point is behind the camera or outside the
    /// image bounds.
    #[must_use]
    pub fn project(&self, pose: Pose2, world: Vec2) -> Option<f64> {
        let local = pose.inverse_transform_point(world);
        // Camera frame: x forward (depth), y lateral.
        if local.x <= 1e-9 {
            return None;
        }
        let u = self.center_px + self.focal_px * (local.y / local.x);
        if (0.0..=self.width_px).contains(&u) {
            Some(u)
        } else {
            None
        }
    }

    /// The bearing (radians, relative to the camera axis) of image
    /// coordinate `u`.
    #[must_use]
    pub fn bearing(&self, u: f64) -> f64 {
        ((u - self.center_px) / self.focal_px).atan()
    }

    /// Triangulates a landmark from observations in two camera poses.
    ///
    /// Returns `None` if the rays are (near-)parallel or intersect behind
    /// either camera.
    #[must_use]
    pub fn triangulate(&self, pose_a: Pose2, u_a: f64, pose_b: Pose2, u_b: f64) -> Option<Vec2> {
        let dir = |pose: Pose2, u: f64| {
            let angle = pose.heading + self.bearing(u);
            Vec2::new(angle.cos(), angle.sin())
        };
        let da = dir(pose_a, u_a);
        let db = dir(pose_b, u_b);
        let origin_delta = pose_b.position - pose_a.position;
        // Solve pa + ta·da = pb + tb·db.
        let denom = da.cross(db);
        if denom.abs() < 1e-9 {
            return None;
        }
        let ta = origin_delta.cross(db) / denom;
        let tb = origin_delta.cross(da) / denom;
        if ta <= 0.0 || tb <= 0.0 {
            return None;
        }
        Some(pose_a.position + da * ta)
    }

    /// Reprojection error (pixels) of a hypothesized landmark against an
    /// observation, or `None` if the landmark does not project.
    #[must_use]
    pub fn reprojection_error(&self, pose: Pose2, landmark: Vec2, observed_u: f64) -> Option<f64> {
        self.project(pose, landmark).map(|u| (u - observed_u).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vga_camera() -> PinholeCamera {
        PinholeCamera::with_fov(core::f64::consts::FRAC_PI_2, 640.0)
    }

    #[test]
    fn fov_sets_focal_length() {
        let cam = vga_camera();
        // 90° FoV: focal = width/2.
        assert!((cam.focal_px - 320.0).abs() < 1e-9);
        assert_eq!(cam.center_px, 320.0);
    }

    #[test]
    fn center_projection() {
        let cam = vga_camera();
        let pose = Pose2::identity();
        // A point straight ahead lands on the principal point.
        let u = cam.project(pose, Vec2::new(5.0, 0.0)).unwrap();
        assert!((u - 320.0).abs() < 1e-9);
    }

    #[test]
    fn behind_camera_is_invisible() {
        let cam = vga_camera();
        assert!(cam.project(Pose2::identity(), Vec2::new(-1.0, 0.0)).is_none());
    }

    #[test]
    fn outside_fov_is_invisible() {
        let cam = vga_camera();
        // 80° off-axis is outside a 90° FoV.
        let angle = 80.0f64.to_radians();
        let p = Vec2::new(angle.cos(), angle.sin()) * 5.0;
        assert!(cam.project(Pose2::identity(), p).is_none());
    }

    #[test]
    fn projection_bearing_round_trip() {
        let cam = vga_camera();
        let pose = Pose2::new(Vec2::new(2.0, 3.0), 0.4);
        let landmark = Vec2::new(8.0, 5.0);
        let u = cam.project(pose, landmark).unwrap();
        // Bearing from the image coordinate matches the geometric bearing.
        let geometric = (landmark - pose.position).angle() - pose.heading;
        assert!((cam.bearing(u) - geometric).abs() < 1e-9);
    }

    #[test]
    fn triangulation_recovers_landmark() {
        let cam = vga_camera();
        let landmark = Vec2::new(6.0, 2.0);
        let pose_a = Pose2::new(Vec2::new(0.0, 0.0), 0.2);
        let pose_b = Pose2::new(Vec2::new(2.0, -1.0), 0.5);
        let u_a = cam.project(pose_a, landmark).unwrap();
        let u_b = cam.project(pose_b, landmark).unwrap();
        let est = cam.triangulate(pose_a, u_a, pose_b, u_b).unwrap();
        assert!(est.distance(landmark) < 1e-6, "got {est:?}");
        assert!(cam.reprojection_error(pose_a, est, u_a).unwrap() < 1e-6);
    }

    #[test]
    fn parallel_rays_fail_triangulation() {
        let cam = vga_camera();
        // Two cameras side by side looking the same way at the principal
        // point: rays are parallel.
        let pose_a = Pose2::identity();
        let pose_b = Pose2::new(Vec2::new(0.0, 1.0), 0.0);
        assert!(cam.triangulate(pose_a, 320.0, pose_b, 320.0).is_none());
    }

    proptest! {
        #[test]
        fn prop_triangulation_round_trips(
            lx in 3.0..20.0f64, ly in -5.0..5.0f64,
            bx in 0.5..2.5f64, by in -2.0..2.0f64,
        ) {
            let cam = vga_camera();
            let landmark = Vec2::new(lx, ly);
            let pose_a = Pose2::identity();
            let pose_b = Pose2::new(Vec2::new(bx, by), 0.0);
            if let (Some(ua), Some(ub)) =
                (cam.project(pose_a, landmark), cam.project(pose_b, landmark))
            {
                if let Some(est) = cam.triangulate(pose_a, ua, pose_b, ub) {
                    prop_assert!(est.distance(landmark) < 1e-5);
                }
            }
        }

        #[test]
        fn prop_visible_points_project_in_bounds(
            x in 0.5..30.0f64, y in -30.0..30.0f64,
        ) {
            let cam = vga_camera();
            if let Some(u) = cam.project(Pose2::identity(), Vec2::new(x, y)) {
                prop_assert!((0.0..=640.0).contains(&u));
            }
        }
    }
}
