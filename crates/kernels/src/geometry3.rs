//! 3D rotations and rigid transforms: unit quaternions, 3×3 rotation
//! matrices, and SE(3) poses over [`Vec3`].
//!
//! The 3D counterpart of [`crate::geometry`]; state estimators and
//! aerial-vehicle models that outgrow the planar reduction build on these
//! types.

use crate::geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A unit quaternion representing a 3D rotation.
///
/// Constructors normalize; `w` is the scalar part.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec3;
/// use m7_kernels::geometry3::Quat;
///
/// let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
/// let rotated = q.rotate(Vec3::new(1.0, 0.0, 0.0));
/// assert!((rotated.y - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// A rotation of `angle` radians about `axis` (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is the zero vector.
    #[must_use]
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let n = axis.norm();
        assert!(n > 0.0, "rotation axis must be nonzero");
        let axis = axis * (1.0 / n);
        let (s, c) = (angle / 2.0).sin_cos();
        Self { w: c, x: axis.x * s, y: axis.y * s, z: axis.z * s }
    }

    /// A rotation from intrinsic Z-Y-X Euler angles (yaw, pitch, roll).
    #[must_use]
    pub fn from_euler(yaw: f64, pitch: f64, roll: f64) -> Self {
        let z = Self::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), yaw);
        let y = Self::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), pitch);
        let x = Self::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), roll);
        z.compose(y).compose(x)
    }

    /// The quaternion norm (1.0 for a valid rotation).
    #[must_use]
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized quaternion.
    ///
    /// # Panics
    ///
    /// Panics if the norm is zero.
    #[must_use]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize a zero quaternion");
        Self { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
    }

    /// Hamilton product: the rotation applying `rhs` first, then `self`.
    #[must_use]
    pub fn compose(self, rhs: Self) -> Self {
        Self {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }

    /// The inverse rotation (conjugate, for unit quaternions).
    #[must_use]
    pub fn inverse(self) -> Self {
        Self { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Rotates a vector.
    #[must_use]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 q_v × (q_v × v + w v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// The rotation angle in `[0, π]`.
    #[must_use]
    pub fn angle(self) -> f64 {
        2.0 * self.w.abs().clamp(-1.0, 1.0).acos()
    }

    /// Converts to a rotation matrix.
    #[must_use]
    pub fn to_matrix(self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3 {
            m: [
                [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
                [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
                [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
            ],
        }
    }
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// A 3×3 matrix (row-major), chiefly used as a rotation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// Matrix-vector product.
    #[must_use]
    pub fn mul_vec(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Matrix product.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }

    /// The transpose (= inverse, for rotation matrices).
    #[must_use]
    pub fn transpose(self) -> Self {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.m[j][i];
            }
        }
        Self { m: out }
    }

    /// The determinant (+1 for a proper rotation).
    #[must_use]
    pub fn determinant(self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// A rigid transform in 3D: rotation plus translation (SE(3)).
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec3;
/// use m7_kernels::geometry3::{Pose3, Quat};
///
/// let pose = Pose3::new(
///     Vec3::new(1.0, 2.0, 3.0),
///     Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2),
/// );
/// let p = pose.transform_point(Vec3::new(1.0, 0.0, 0.0));
/// assert!((p.x - 1.0).abs() < 1e-12);
/// assert!((p.y - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose3 {
    /// Translation.
    pub position: Vec3,
    /// Orientation.
    pub orientation: Quat,
}

impl Pose3 {
    /// Creates a pose (the quaternion is normalized).
    #[must_use]
    pub fn new(position: Vec3, orientation: Quat) -> Self {
        Self { position, orientation: orientation.normalized() }
    }

    /// The identity pose.
    #[must_use]
    pub fn identity() -> Self {
        Self::default()
    }

    /// Maps a body-frame point into the world frame.
    #[must_use]
    pub fn transform_point(self, local: Vec3) -> Vec3 {
        self.position + self.orientation.rotate(local)
    }

    /// Maps a world-frame point into the body frame.
    #[must_use]
    pub fn inverse_transform_point(self, world: Vec3) -> Vec3 {
        self.orientation.inverse().rotate(world - self.position)
    }

    /// Composes two poses: applies `rhs` in this pose's frame.
    #[must_use]
    pub fn compose(self, rhs: Self) -> Self {
        Self {
            position: self.position + self.orientation.rotate(rhs.position),
            orientation: self.orientation.compose(rhs.orientation).normalized(),
        }
    }

    /// The inverse pose.
    #[must_use]
    pub fn inverse(self) -> Self {
        let inv = self.orientation.inverse();
        Self { position: inv.rotate(-self.position), orientation: inv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-9;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < EPS
    }

    #[test]
    fn axis_angle_basics() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), core::f64::consts::FRAC_PI_2);
        assert!(close(q.rotate(Vec3::new(1.0, 0.0, 0.0)), Vec3::new(0.0, 1.0, 0.0)));
        assert!((q.angle() - core::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((q.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn euler_yaw_matches_planar_rotation() {
        let q = Quat::from_euler(0.7, 0.0, 0.0);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!((v.x - 0.7f64.cos()).abs() < EPS);
        assert!((v.y - 0.7f64.sin()).abs() < EPS);
        assert!(v.z.abs() < EPS);
    }

    #[test]
    fn compose_inverse_is_identity() {
        let q = Quat::from_euler(0.3, -0.5, 1.1);
        let id = q.compose(q.inverse());
        assert!((id.w.abs() - 1.0).abs() < EPS);
        assert!(id.x.abs() < EPS && id.y.abs() < EPS && id.z.abs() < EPS);
    }

    #[test]
    fn quaternion_and_matrix_agree() {
        let q = Quat::from_euler(0.4, 0.2, -0.9);
        let m = q.to_matrix();
        for v in [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.3, -0.7, 2.0)] {
            assert!(close(q.rotate(v), m.mul_vec(v)));
        }
        assert!((m.determinant() - 1.0).abs() < EPS, "proper rotation");
        // Rᵀ R = I.
        let eye = m.transpose().mul(m);
        assert!((eye.m[0][0] - 1.0).abs() < EPS && eye.m[0][1].abs() < EPS);
    }

    #[test]
    fn pose_round_trip() {
        let pose = Pose3::new(Vec3::new(2.0, -1.0, 0.5), Quat::from_euler(1.0, 0.3, -0.2));
        let p = Vec3::new(0.7, 0.1, -2.0);
        let back = pose.inverse_transform_point(pose.transform_point(p));
        assert!(close(back, p));
        // inverse() agrees with inverse_transform_point.
        let via_inverse = pose.inverse().transform_point(pose.transform_point(p));
        assert!(close(via_inverse, p));
    }

    #[test]
    fn pose_compose_matches_sequential_transforms() {
        let a = Pose3::new(Vec3::new(1.0, 0.0, 0.0), Quat::from_euler(0.5, 0.0, 0.0));
        let b = Pose3::new(Vec3::new(0.0, 2.0, 0.0), Quat::from_euler(0.0, 0.4, 0.0));
        let p = Vec3::new(0.3, 0.6, -0.9);
        let composed = a.compose(b).transform_point(p);
        let sequential = a.transform_point(b.transform_point(p));
        assert!(close(composed, sequential));
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn zero_axis_rejected() {
        let _ = Quat::from_axis_angle(Vec3::ZERO, 1.0);
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_norm(
            yaw in -3.0..3.0f64, pitch in -1.5..1.5f64, roll in -3.0..3.0f64,
            x in -10.0..10.0f64, y in -10.0..10.0f64, z in -10.0..10.0f64,
        ) {
            let q = Quat::from_euler(yaw, pitch, roll);
            let v = Vec3::new(x, y, z);
            prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_rotation_preserves_dot(
            yaw in -3.0..3.0f64, pitch in -1.5..1.5f64, roll in -3.0..3.0f64,
        ) {
            let q = Quat::from_euler(yaw, pitch, roll);
            let a = Vec3::new(1.0, 2.0, 3.0);
            let b = Vec3::new(-0.5, 0.7, 0.2);
            prop_assert!((q.rotate(a).dot(q.rotate(b)) - a.dot(b)).abs() < 1e-9);
        }

        #[test]
        fn prop_pose_compose_associative(
            y1 in -2.0..2.0f64, y2 in -2.0..2.0f64, y3 in -2.0..2.0f64,
            t in -5.0..5.0f64,
        ) {
            let a = Pose3::new(Vec3::new(t, 0.0, 1.0), Quat::from_euler(y1, 0.1, 0.0));
            let b = Pose3::new(Vec3::new(0.0, t, 0.0), Quat::from_euler(y2, 0.0, 0.2));
            let c = Pose3::new(Vec3::new(1.0, 1.0, t), Quat::from_euler(y3, -0.1, 0.0));
            let p = Vec3::new(0.4, -0.6, 0.9);
            let left = a.compose(b).compose(c).transform_point(p);
            let right = a.compose(b.compose(c)).transform_point(p);
            prop_assert!((left - right).norm() < 1e-8);
        }
    }
}
