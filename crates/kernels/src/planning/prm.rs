//! The Probabilistic Roadmap (PRM) planner: build a reusable roadmap once,
//! answer many queries against it.
//!
//! PRM is the planner whose edge-validation phase is *embarrassingly
//! batchable* — all candidate edges are known before any is checked — which
//! makes it the showcase workload for the batched collision checker
//! (experiment E6 runs its roadmap construction both ways).

use super::collision::CollisionWorld;
use super::kdtree::KdTree;
use super::path::Path;
use crate::geometry::Vec2;
use m7_par::ParConfig;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Tuning parameters for [`Prm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrmConfig {
    /// Number of roadmap samples.
    pub samples: usize,
    /// Connection radius: samples closer than this get candidate edges.
    pub connection_radius: f64,
    /// Maximum candidate neighbors per sample.
    pub max_neighbors: usize,
}

impl Default for PrmConfig {
    fn default() -> Self {
        Self { samples: 500, connection_radius: 2.0, max_neighbors: 12 }
    }
}

/// A built probabilistic roadmap over one [`CollisionWorld`].
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::{CollisionWorld, Prm, PrmConfig};
///
/// let world = CollisionWorld::new(10.0, 10.0);
/// let prm = Prm::build(&world, PrmConfig::default(), 17);
/// let path = prm.query(&world, Vec2::new(0.5, 0.5), Vec2::new(9.5, 9.5)).unwrap();
/// assert!(path.is_valid(&world));
/// ```
#[derive(Debug, Clone)]
pub struct Prm {
    config: PrmConfig,
    vertices: Vec<Vec2>,
    /// Adjacency list: `(neighbor, edge length)` pairs per vertex.
    edges: Vec<Vec<(usize, f64)>>,
    tree: KdTree,
    /// Number of segment collision checks spent building the roadmap.
    edge_checks: usize,
}

impl Prm {
    /// Builds a roadmap using the conventional one-edge-at-a-time scalar
    /// checker.
    #[must_use]
    pub fn build(world: &CollisionWorld, config: PrmConfig, seed: u64) -> Self {
        Self::build_inner(world, config, seed, None)
    }

    /// Builds an identical roadmap, validating all candidate edges through
    /// the batched structure-of-arrays checker.
    #[must_use]
    pub fn build_batched(world: &CollisionWorld, config: PrmConfig, seed: u64) -> Self {
        Self::build_inner(world, config, seed, Some(ParConfig::serial()))
    }

    /// [`Prm::build_batched`] with the batch queries spread over the
    /// deterministic pool: the roadmap is bit-identical to the serial
    /// batched build at any thread count (sampling stays on one RNG
    /// stream; batch results are ordered by input index).
    #[must_use]
    pub fn build_batched_par(
        world: &CollisionWorld,
        config: PrmConfig,
        seed: u64,
        par: ParConfig,
    ) -> Self {
        Self::build_inner(world, config, seed, Some(par))
    }

    fn build_inner(
        world: &CollisionWorld,
        config: PrmConfig,
        seed: u64,
        batched: Option<ParConfig>,
    ) -> Self {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Sample free configurations.
        let mut vertices = Vec::with_capacity(config.samples);
        if let Some(par) = batched {
            // Batch the point checks too: oversample, filter in one pass.
            let batch = world.to_batch_checker();
            while vertices.len() < config.samples {
                let candidates: Vec<Vec2> = (0..config.samples * 2)
                    .map(|_| {
                        Vec2::new(
                            rng.gen_range(0.0..world.width()),
                            rng.gen_range(0.0..world.height()),
                        )
                    })
                    .collect();
                let free = batch.par_points_free(&candidates, par);
                for (p, ok) in candidates.into_iter().zip(free) {
                    if ok && vertices.len() < config.samples {
                        vertices.push(p);
                    }
                }
            }
        } else {
            while vertices.len() < config.samples {
                let p = Vec2::new(
                    rng.gen_range(0.0..world.width()),
                    rng.gen_range(0.0..world.height()),
                );
                if world.point_free(p) {
                    vertices.push(p);
                }
            }
        }

        let mut tree = KdTree::new();
        for (i, v) in vertices.iter().enumerate() {
            tree.insert(*v, i);
        }

        // Collect candidate edges.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for (i, v) in vertices.iter().enumerate() {
            let mut nbrs = tree.within_radius(*v, config.connection_radius);
            nbrs.sort_by(|&a, &b| {
                vertices[a]
                    .distance_squared(*v)
                    .partial_cmp(&vertices[b].distance_squared(*v))
                    .expect("distances are finite")
            });
            for &j in nbrs.iter().filter(|&&j| j > i).take(config.max_neighbors) {
                candidates.push((i, j));
            }
        }

        // Validate candidate edges — the phase E6 measures both ways. The
        // scalar path uses the conventional resolution-sampled motion
        // validator (what a general-purpose planning library does); the
        // batched path checks the same edges exactly in one SoA sweep.
        let mut edges = vec![Vec::new(); vertices.len()];
        let edge_checks = candidates.len();
        let keep: Vec<bool> = if let Some(par) = batched {
            let batch = world.to_batch_checker();
            let segs: Vec<(Vec2, Vec2)> =
                candidates.iter().map(|&(i, j)| (vertices[i], vertices[j])).collect();
            batch.par_segments_free(&segs, par)
        } else {
            candidates
                .iter()
                .map(|&(i, j)| world.segment_free_sampled(vertices[i], vertices[j], 0.05))
                .collect()
        };
        for (&(i, j), ok) in candidates.iter().zip(keep) {
            if ok {
                let len = vertices[i].distance(vertices[j]);
                edges[i].push((j, len));
                edges[j].push((i, len));
            }
        }

        Self { config, vertices, edges, tree, edge_checks }
    }

    /// Number of roadmap vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the roadmap has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of segment collision checks spent during construction.
    #[must_use]
    pub fn edge_checks(&self) -> usize {
        self.edge_checks
    }

    /// Total number of (undirected) roadmap edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Queries the roadmap for a path from `start` to `goal` using Dijkstra
    /// search, connecting the endpoints to their nearest visible vertices.
    ///
    /// Returns `None` if either endpoint cannot connect or the endpoints lie
    /// in different roadmap components.
    #[must_use]
    pub fn query(&self, world: &CollisionWorld, start: Vec2, goal: Vec2) -> Option<Path> {
        let start_v = self.connect(world, start)?;
        let goal_v = self.connect(world, goal)?;
        let chain = self.dijkstra(start_v, goal_v)?;
        let mut pts = Vec::with_capacity(chain.len() + 2);
        pts.push(start);
        pts.extend(chain.into_iter().map(|i| self.vertices[i]));
        pts.push(goal);
        Some(Path::new(pts))
    }

    /// Finds the nearest roadmap vertex visible from `p`.
    fn connect(&self, world: &CollisionWorld, p: Vec2) -> Option<usize> {
        if !world.point_free(p) {
            return None;
        }
        let mut nbrs = self.tree.within_radius(p, self.config.connection_radius * 2.0);
        nbrs.sort_by(|&a, &b| {
            self.vertices[a]
                .distance_squared(p)
                .partial_cmp(&self.vertices[b].distance_squared(p))
                .expect("distances are finite")
        });
        nbrs.into_iter().find(|&v| world.segment_free(p, self.vertices[v]))
    }

    fn dijkstra(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            vertex: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> core::cmp::Ordering {
                // Min-heap on cost.
                other.cost.partial_cmp(&self.cost).expect("costs are finite")
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.vertices.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Entry { cost: 0.0, vertex: from });
        while let Some(Entry { cost, vertex }) = heap.pop() {
            if vertex == to {
                break;
            }
            if cost > dist[vertex] {
                continue;
            }
            for &(nb, len) in &self.edges[vertex] {
                let next = cost + len;
                if next < dist[nb] {
                    dist[nb] = next;
                    prev[nb] = vertex;
                    heap.push(Entry { cost: next, vertex: nb });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut chain = vec![to];
        let mut cursor = to;
        while cursor != from {
            cursor = prev[cursor];
            chain.push(cursor);
        }
        chain.reverse();
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries_empty_world() {
        let world = CollisionWorld::new(10.0, 10.0);
        let prm = Prm::build(&world, PrmConfig::default(), 1);
        assert_eq!(prm.len(), 500);
        assert!(prm.edge_count() > 0);
        let p = prm.query(&world, Vec2::new(0.5, 0.5), Vec2::new(9.5, 9.5)).unwrap();
        assert!(p.is_valid(&world));
        assert_eq!(p.start(), Vec2::new(0.5, 0.5));
        assert_eq!(p.goal(), Vec2::new(9.5, 9.5));
    }

    #[test]
    fn batched_build_matches_scalar_topology() {
        let mut world = CollisionWorld::new(15.0, 15.0);
        world.scatter_circles(8, 0.5, 1.5, 4);
        let a = Prm::build(&world, PrmConfig::default(), 2);
        let b = Prm::build_batched(&world, PrmConfig::default(), 2);
        // Different sampling loops draw different vertices, but both must
        // produce connected, queryable roadmaps of the same size and both
        // must spend candidate-edge checks.
        assert_eq!(a.len(), b.len());
        assert!(a.edge_checks() > 0);
        assert!(b.edge_checks() > 0);
    }

    #[test]
    fn parallel_batched_build_is_bit_identical() {
        let mut world = CollisionWorld::new(15.0, 15.0);
        world.scatter_circles(10, 0.5, 1.5, 4);
        let serial = Prm::build_batched(&world, PrmConfig::default(), 2);
        for threads in [1usize, 2, 4, 8] {
            let par = Prm::build_batched_par(
                &world,
                PrmConfig::default(),
                2,
                ParConfig::with_threads(threads),
            );
            assert_eq!(serial.vertices, par.vertices, "threads = {threads}");
            assert_eq!(serial.edges, par.edges, "threads = {threads}");
            assert_eq!(serial.edge_checks(), par.edge_checks());
        }
    }

    #[test]
    fn respects_walls() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_rect(Vec2::new(4.5, 0.0), Vec2::new(5.5, 10.0));
        let prm = Prm::build(&world, PrmConfig { samples: 800, ..PrmConfig::default() }, 3);
        // Full wall: no crossing path exists.
        assert!(prm.query(&world, Vec2::new(1.0, 5.0), Vec2::new(9.0, 5.0)).is_none());
    }

    #[test]
    fn gap_in_wall_is_found() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_rect(Vec2::new(4.5, 0.0), Vec2::new(5.5, 8.0));
        let prm = Prm::build(&world, PrmConfig { samples: 1200, ..PrmConfig::default() }, 3);
        let p = prm
            .query(&world, Vec2::new(1.0, 5.0), Vec2::new(9.0, 5.0))
            .expect("gap above the wall");
        assert!(p.is_valid(&world));
        assert!(p.waypoints().iter().any(|w| w.y > 7.5));
    }

    #[test]
    fn blocked_endpoint_fails() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_circle(Vec2::new(9.0, 9.0), 1.0);
        let prm = Prm::build(&world, PrmConfig::default(), 6);
        assert!(prm.query(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0)).is_none());
    }

    #[test]
    fn deterministic_build() {
        let world = CollisionWorld::new(10.0, 10.0);
        let a = Prm::build(&world, PrmConfig::default(), 12);
        let b = Prm::build(&world, PrmConfig::default(), 12);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
