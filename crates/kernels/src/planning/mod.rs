//! Sampling-based motion planning: RRT, RRT*, and PRM over a 2D workspace,
//! with both a conventional *scalar* collision checker and a *batched
//! structure-of-arrays* checker.
//!
//! The two checker implementations are deliberately kept side by side: the
//! batched path applies exactly the transformations (structure-of-arrays
//! layout, squared-distance arithmetic, batch evaluation, branch-free inner
//! loops) that the paper's Challenge 5 credits for up-to-500× software
//! speedups in motion planning. Experiment E6 measures the gap.
//!
//! # Examples
//!
//! ```
//! use m7_kernels::geometry::Vec2;
//! use m7_kernels::planning::{CollisionWorld, RrtStar, RrtConfig};
//!
//! let mut world = CollisionWorld::new(10.0, 10.0);
//! world.add_circle(Vec2::new(5.0, 5.0), 1.5);
//! let planner = RrtStar::new(RrtConfig::default(), 42);
//! let path = planner
//!     .plan(&world, Vec2::new(0.5, 0.5), Vec2::new(9.5, 9.5))
//!     .expect("free space is connected");
//! assert!(path.waypoints().len() >= 2);
//! ```

mod astar;
mod collision;
mod kdtree;
mod path;
mod prm;
mod rrt;
mod rrt_star;

pub use astar::{astar, AstarConfig};
pub use collision::{BatchChecker, CollisionWorld, Obstacle};
pub use kdtree::KdTree;
pub use path::Path;
pub use prm::{Prm, PrmConfig};
pub use rrt::{Rrt, RrtConfig};
pub use rrt_star::RrtStar;
