//! The Rapidly-exploring Random Tree (RRT) planner.

use super::collision::CollisionWorld;
use super::kdtree::KdTree;
use super::path::Path;
use crate::geometry::Vec2;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning parameters shared by [`Rrt`](super::Rrt) and
/// [`RrtStar`](super::RrtStar).
///
/// # Examples
///
/// ```
/// use m7_kernels::planning::RrtConfig;
///
/// let cfg = RrtConfig { max_iterations: 5000, ..RrtConfig::default() };
/// assert_eq!(cfg.max_iterations, 5000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrtConfig {
    /// Maximum tree-growth iterations before giving up.
    pub max_iterations: usize,
    /// Maximum extension distance per iteration (meters).
    pub step_size: f64,
    /// Probability of sampling the goal instead of a random point.
    pub goal_bias: f64,
    /// Distance at which the goal counts as reached (meters).
    pub goal_tolerance: f64,
    /// RRT* rewiring radius (ignored by plain RRT).
    pub rewire_radius: f64,
}

impl Default for RrtConfig {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            step_size: 0.5,
            goal_bias: 0.05,
            goal_tolerance: 0.5,
            rewire_radius: 1.5,
        }
    }
}

pub(super) struct TreeNode {
    pub point: Vec2,
    pub parent: Option<usize>,
    pub cost: f64,
}

/// Extracts the waypoint chain from `nodes` ending at `goal_index`.
pub(super) fn extract_path(nodes: &[TreeNode], goal_index: usize) -> Path {
    let mut chain = Vec::new();
    let mut cursor = Some(goal_index);
    while let Some(i) = cursor {
        chain.push(nodes[i].point);
        cursor = nodes[i].parent;
    }
    chain.reverse();
    Path::new(chain)
}

/// The classic RRT planner: grows a tree from the start by extending toward
/// random samples, returning the first path that reaches the goal.
///
/// Deterministic for a fixed seed.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::{CollisionWorld, Rrt, RrtConfig};
///
/// let world = CollisionWorld::new(10.0, 10.0);
/// let planner = Rrt::new(RrtConfig::default(), 1);
/// let path = planner.plan(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0)).unwrap();
/// assert!(path.is_valid(&world));
/// ```
#[derive(Debug, Clone)]
pub struct Rrt {
    config: RrtConfig,
    seed: u64,
}

impl Rrt {
    /// Creates a planner with the given configuration and RNG seed.
    #[must_use]
    pub fn new(config: RrtConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// The planner configuration.
    #[must_use]
    pub fn config(&self) -> &RrtConfig {
        &self.config
    }

    /// Plans a collision-free path from `start` to `goal`.
    ///
    /// Returns `None` if `start` or `goal` is in collision or no path is
    /// found within `max_iterations`.
    #[must_use]
    pub fn plan(&self, world: &CollisionWorld, start: Vec2, goal: Vec2) -> Option<Path> {
        plan_impl(&self.config, self.seed, world, start, goal, false)
    }

    /// Plans and reports the number of collision-checked edges, for
    /// workload profiling by `m7-arch`.
    #[must_use]
    pub fn plan_counted(
        &self,
        world: &CollisionWorld,
        start: Vec2,
        goal: Vec2,
    ) -> (Option<Path>, usize) {
        plan_counted_impl(&self.config, self.seed, world, start, goal, false)
    }
}

pub(super) fn plan_impl(
    config: &RrtConfig,
    seed: u64,
    world: &CollisionWorld,
    start: Vec2,
    goal: Vec2,
    star: bool,
) -> Option<Path> {
    plan_counted_impl(config, seed, world, start, goal, star).0
}

pub(super) fn plan_counted_impl(
    config: &RrtConfig,
    seed: u64,
    world: &CollisionWorld,
    start: Vec2,
    goal: Vec2,
    star: bool,
) -> (Option<Path>, usize) {
    if !world.point_free(start) || !world.point_free(goal) {
        return (None, 0);
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut nodes = vec![TreeNode { point: start, parent: None, cost: 0.0 }];
    let mut tree = KdTree::new();
    tree.insert(start, 0);
    let mut checks = 0usize;
    let mut best_goal: Option<usize> = None;

    for _ in 0..config.max_iterations {
        let sample = if rng.gen_bool(config.goal_bias) {
            goal
        } else {
            Vec2::new(rng.gen_range(0.0..world.width()), rng.gen_range(0.0..world.height()))
        };
        let (nearest, _) = tree.nearest(sample).expect("tree is nonempty");
        let from = nodes[nearest].point;
        let to_sample = sample - from;
        let dist = to_sample.norm();
        if dist < 1e-12 {
            continue;
        }
        let new_point = if dist <= config.step_size {
            sample
        } else {
            from + to_sample * (config.step_size / dist)
        };
        checks += 1;
        if !world.segment_free(from, new_point) {
            continue;
        }

        let mut parent = nearest;
        let mut cost = nodes[nearest].cost + from.distance(new_point);
        if star {
            // Choose-parent: connect through the lowest-cost neighbor.
            let neighbors = tree.within_radius(new_point, config.rewire_radius);
            for &nb in &neighbors {
                let c = nodes[nb].cost + nodes[nb].point.distance(new_point);
                if c < cost {
                    checks += 1;
                    if world.segment_free(nodes[nb].point, new_point) {
                        parent = nb;
                        cost = c;
                    }
                }
            }
            let new_index = nodes.len();
            nodes.push(TreeNode { point: new_point, parent: Some(parent), cost });
            tree.insert(new_point, new_index);
            // Rewire: reroute neighbors through the new node when cheaper.
            for &nb in &neighbors {
                let through = cost + new_point.distance(nodes[nb].point);
                if through + 1e-12 < nodes[nb].cost {
                    checks += 1;
                    if world.segment_free(new_point, nodes[nb].point) {
                        nodes[nb].parent = Some(new_index);
                        nodes[nb].cost = through;
                    }
                }
            }
            if new_point.distance(goal) <= config.goal_tolerance {
                match best_goal {
                    Some(g) if nodes[g].cost <= cost => {}
                    _ => best_goal = Some(new_index),
                }
            }
        } else {
            let new_index = nodes.len();
            nodes.push(TreeNode { point: new_point, parent: Some(parent), cost });
            tree.insert(new_point, new_index);
            if new_point.distance(goal) <= config.goal_tolerance {
                return (Some(extract_path(&nodes, new_index)), checks);
            }
        }
    }
    (best_goal.map(|g| extract_path(&nodes, g)), checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_in_empty_world() {
        let world = CollisionWorld::new(10.0, 10.0);
        let p = Rrt::new(RrtConfig::default(), 3)
            .plan(&world, Vec2::new(0.5, 0.5), Vec2::new(9.5, 9.5))
            .expect("empty world is trivially solvable");
        assert!(p.is_valid(&world));
        assert!(p.goal().distance(Vec2::new(9.5, 9.5)) <= RrtConfig::default().goal_tolerance);
        assert_eq!(p.start(), Vec2::new(0.5, 0.5));
    }

    #[test]
    fn plans_around_obstacle() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_rect(Vec2::new(4.0, 0.0), Vec2::new(6.0, 8.0));
        let p = Rrt::new(RrtConfig::default(), 9)
            .plan(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 1.0))
            .expect("gap above the wall exists");
        assert!(p.is_valid(&world));
        // The path must detour above y = 8.
        assert!(p.waypoints().iter().any(|w| w.y > 7.5));
    }

    #[test]
    fn fails_when_start_blocked() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_circle(Vec2::new(1.0, 1.0), 1.0);
        assert!(Rrt::new(RrtConfig::default(), 1)
            .plan(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0))
            .is_none());
    }

    #[test]
    fn fails_when_goal_unreachable() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        // A wall fully separating left from right.
        world.add_rect(Vec2::new(4.5, 0.0), Vec2::new(5.5, 10.0));
        let cfg = RrtConfig { max_iterations: 2000, ..RrtConfig::default() };
        assert!(Rrt::new(cfg, 4).plan(&world, Vec2::new(1.0, 5.0), Vec2::new(9.0, 5.0)).is_none());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut world = CollisionWorld::new(15.0, 15.0);
        world.scatter_circles(10, 0.5, 1.5, 7);
        let plan = |seed| {
            Rrt::new(RrtConfig::default(), seed).plan(
                &world,
                Vec2::new(0.5, 0.5),
                Vec2::new(14.0, 14.0),
            )
        };
        let a = plan(42);
        let b = plan(42);
        assert_eq!(a.map(|p| p.waypoints().to_vec()), b.map(|p| p.waypoints().to_vec()));
    }

    #[test]
    fn counted_checks_are_positive() {
        let world = CollisionWorld::new(10.0, 10.0);
        let (p, checks) = Rrt::new(RrtConfig::default(), 2).plan_counted(
            &world,
            Vec2::new(1.0, 1.0),
            Vec2::new(9.0, 9.0),
        );
        assert!(p.is_some());
        assert!(checks > 0);
    }
}
