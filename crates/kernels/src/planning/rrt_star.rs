//! The asymptotically optimal RRT* planner.

use super::collision::CollisionWorld;
use super::path::Path;
use super::rrt::{plan_counted_impl, plan_impl, RrtConfig};
use crate::geometry::Vec2;

/// The RRT* planner: RRT plus choose-parent and rewiring steps, converging
/// toward the optimal path as iterations increase.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::{CollisionWorld, RrtStar, RrtConfig};
///
/// let world = CollisionWorld::new(10.0, 10.0);
/// let planner = RrtStar::new(RrtConfig::default(), 5);
/// let path = planner.plan(&world, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0)).unwrap();
/// assert!(path.is_valid(&world));
/// ```
#[derive(Debug, Clone)]
pub struct RrtStar {
    config: RrtConfig,
    seed: u64,
}

impl RrtStar {
    /// Creates a planner with the given configuration and RNG seed.
    #[must_use]
    pub fn new(config: RrtConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// The planner configuration.
    #[must_use]
    pub fn config(&self) -> &RrtConfig {
        &self.config
    }

    /// Plans a collision-free, cost-refined path from `start` to `goal`.
    ///
    /// Unlike plain RRT, the search continues for all `max_iterations` and
    /// returns the best goal-reaching path found. Returns `None` if the
    /// endpoints are in collision or no path was found.
    #[must_use]
    pub fn plan(&self, world: &CollisionWorld, start: Vec2, goal: Vec2) -> Option<Path> {
        plan_impl(&self.config, self.seed, world, start, goal, true)
    }

    /// Plans and reports the number of collision-checked edges.
    #[must_use]
    pub fn plan_counted(
        &self,
        world: &CollisionWorld,
        start: Vec2,
        goal: Vec2,
    ) -> (Option<Path>, usize) {
        plan_counted_impl(&self.config, self.seed, world, start, goal, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::Rrt;

    fn cluttered_world(seed: u64) -> CollisionWorld {
        let mut w = CollisionWorld::new(20.0, 20.0);
        w.scatter_circles(12, 0.5, 1.5, seed);
        w
    }

    #[test]
    fn finds_valid_path() {
        let world = cluttered_world(3);
        let start = Vec2::new(0.5, 0.5);
        let goal = Vec2::new(19.0, 19.0);
        if !world.point_free(start) || !world.point_free(goal) {
            return; // unlucky scatter; covered by other seeds
        }
        let p = RrtStar::new(RrtConfig { max_iterations: 8000, ..RrtConfig::default() }, 1)
            .plan(&world, start, goal)
            .expect("path exists in scattered world");
        assert!(p.is_valid(&world));
    }

    #[test]
    fn star_is_no_worse_than_rrt_on_average() {
        // Averaged over seeds, RRT* paths are shorter than plain RRT paths.
        let world = CollisionWorld::new(15.0, 15.0);
        let cfg = RrtConfig { max_iterations: 4000, ..RrtConfig::default() };
        let start = Vec2::new(1.0, 1.0);
        let goal = Vec2::new(14.0, 14.0);
        let mut rrt_total = 0.0;
        let mut star_total = 0.0;
        let mut count = 0;
        for seed in 0..5 {
            let a = Rrt::new(cfg, seed).plan(&world, start, goal);
            let b = RrtStar::new(cfg, seed).plan(&world, start, goal);
            if let (Some(a), Some(b)) = (a, b) {
                rrt_total += a.length();
                star_total += b.length();
                count += 1;
            }
        }
        assert!(count >= 3, "most seeds should solve the empty world");
        assert!(
            star_total <= rrt_total * 1.02,
            "RRT* average {star_total} should not exceed RRT average {rrt_total}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let world = cluttered_world(8);
        let plan = || {
            RrtStar::new(RrtConfig::default(), 21).plan(
                &world,
                Vec2::new(0.5, 0.5),
                Vec2::new(19.5, 19.5),
            )
        };
        assert_eq!(plan().map(|p| p.waypoints().to_vec()), plan().map(|p| p.waypoints().to_vec()));
    }
}
