//! Grid-based A* search over an occupancy grid — the classical baseline
//! planner that sampling-based methods are compared against.

use super::path::Path;
use crate::geometry::Vec2;
use crate::grid::OccupancyGrid;
use std::collections::BinaryHeap;

/// Configuration for [`astar`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AstarConfig {
    /// Occupancy probability above which a cell is an obstacle.
    pub occupied_threshold: f64,
    /// Whether diagonal moves are allowed.
    pub allow_diagonal: bool,
}

impl Default for AstarConfig {
    fn default() -> Self {
        Self { occupied_threshold: 0.65, allow_diagonal: true }
    }
}

#[derive(PartialEq)]
struct OpenEntry {
    f: f64,
    cell: (usize, usize),
}
impl Eq for OpenEntry {}
impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Min-heap on f.
        other.f.partial_cmp(&self.f).expect("finite costs")
    }
}
impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Plans a shortest grid path from `start` to `goal` (world coordinates)
/// with A* over `grid`, returning the waypoint path through cell centers.
///
/// Returns `None` if either endpoint is outside the grid / occupied, or no
/// path exists.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::grid::OccupancyGrid;
/// use m7_kernels::planning::{astar, AstarConfig};
///
/// let grid = OccupancyGrid::new(10.0, 10.0, 0.5);
/// let path = astar(&grid, Vec2::new(0.5, 0.5), Vec2::new(9.0, 9.0), AstarConfig::default());
/// assert!(path.is_some());
/// ```
#[must_use]
pub fn astar(grid: &OccupancyGrid, start: Vec2, goal: Vec2, config: AstarConfig) -> Option<Path> {
    let start_cell = grid.cell_of(start)?;
    let goal_cell = grid.cell_of(goal)?;
    let occupied = |c: (usize, usize)| {
        grid.probability(grid.cell_center(c.0, c.1)) > config.occupied_threshold
    };
    if occupied(start_cell) || occupied(goal_cell) {
        return None;
    }

    let w = grid.width_cells();
    let h = grid.height_cells();
    let index = |c: (usize, usize)| c.1 * w + c.0;
    let heuristic = |c: (usize, usize)| {
        let dx = c.0 as f64 - goal_cell.0 as f64;
        let dy = c.1 as f64 - goal_cell.1 as f64;
        (dx * dx + dy * dy).sqrt()
    };

    let mut g_score = vec![f64::INFINITY; w * h];
    let mut came_from = vec![usize::MAX; w * h];
    let mut open = BinaryHeap::new();
    g_score[index(start_cell)] = 0.0;
    open.push(OpenEntry { f: heuristic(start_cell), cell: start_cell });

    let straight: &[(isize, isize, f64)] = &[(1, 0, 1.0), (-1, 0, 1.0), (0, 1, 1.0), (0, -1, 1.0)];
    let diagonal: &[(isize, isize, f64)] = &[
        (1, 1, core::f64::consts::SQRT_2),
        (1, -1, core::f64::consts::SQRT_2),
        (-1, 1, core::f64::consts::SQRT_2),
        (-1, -1, core::f64::consts::SQRT_2),
    ];

    while let Some(OpenEntry { cell, .. }) = open.pop() {
        if cell == goal_cell {
            // Reconstruct: goal cell chain -> world waypoints.
            let mut cells = vec![cell];
            let mut cursor = index(cell);
            while came_from[cursor] != usize::MAX {
                cursor = came_from[cursor];
                cells.push((cursor % w, cursor / w));
            }
            cells.reverse();
            let mut pts: Vec<Vec2> = Vec::with_capacity(cells.len() + 2);
            pts.push(start);
            pts.extend(cells.iter().map(|&(cx, cy)| grid.cell_center(cx, cy)));
            pts.push(goal);
            return Some(Path::new(pts));
        }
        let current_g = g_score[index(cell)];
        let neighbors =
            straight.iter().chain(if config.allow_diagonal { diagonal.iter() } else { [].iter() });
        for &(dx, dy, step) in neighbors {
            let nx = cell.0 as isize + dx;
            let ny = cell.1 as isize + dy;
            if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                continue;
            }
            let neighbor = (nx as usize, ny as usize);
            if occupied(neighbor) {
                continue;
            }
            // Forbid cutting corners diagonally between two obstacles.
            if dx != 0 && dy != 0 {
                let side_a = (cell.0, ny as usize);
                let side_b = (nx as usize, cell.1);
                if occupied(side_a) || occupied(side_b) {
                    continue;
                }
            }
            let tentative = current_g + step;
            if tentative < g_score[index(neighbor)] {
                g_score[index(neighbor)] = tentative;
                came_from[index(neighbor)] = index(cell);
                open.push(OpenEntry { f: tentative + heuristic(neighbor), cell: neighbor });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stamps a solid occupied rectangle into the grid.
    fn block(grid: &mut OccupancyGrid, min: Vec2, max: Vec2) {
        let res = grid.resolution();
        let mut y = min.y + res / 2.0;
        while y < max.y {
            let mut x = min.x + res / 2.0;
            while x < max.x {
                for _ in 0..20 {
                    grid.integrate_ray(Vec2::new(x, y), Vec2::new(x, y), true);
                }
                x += res;
            }
            y += res;
        }
    }

    #[test]
    fn straight_line_in_empty_grid() {
        let grid = OccupancyGrid::new(10.0, 10.0, 0.5);
        let p = astar(&grid, Vec2::new(0.5, 0.5), Vec2::new(9.5, 0.5), AstarConfig::default())
            .expect("empty grid is solvable");
        // Grid path length close to the straight-line distance.
        assert!(p.length() < 10.0, "got {}", p.length());
        assert!(p.length() >= 9.0);
    }

    #[test]
    fn routes_around_wall() {
        let mut grid = OccupancyGrid::new(10.0, 10.0, 0.5);
        block(&mut grid, Vec2::new(4.0, 0.0), Vec2::new(5.0, 8.0));
        let p = astar(&grid, Vec2::new(1.0, 1.0), Vec2::new(9.0, 1.0), AstarConfig::default())
            .expect("gap above the wall");
        assert!(p.waypoints().iter().any(|w| w.y > 7.5), "must detour above");
        // Detour is longer than the straight line.
        assert!(p.length() > 10.0);
    }

    #[test]
    fn no_path_through_full_wall() {
        let mut grid = OccupancyGrid::new(10.0, 10.0, 0.5);
        block(&mut grid, Vec2::new(4.0, 0.0), Vec2::new(5.0, 10.0));
        assert!(astar(&grid, Vec2::new(1.0, 5.0), Vec2::new(9.0, 5.0), AstarConfig::default())
            .is_none());
    }

    #[test]
    fn blocked_endpoints_fail() {
        let mut grid = OccupancyGrid::new(10.0, 10.0, 0.5);
        block(&mut grid, Vec2::new(0.5, 0.5), Vec2::new(2.0, 2.0));
        assert!(astar(&grid, Vec2::new(1.0, 1.0), Vec2::new(9.0, 9.0), AstarConfig::default())
            .is_none());
        // Outside the grid entirely:
        let empty = OccupancyGrid::new(10.0, 10.0, 0.5);
        assert!(astar(&empty, Vec2::new(-1.0, 1.0), Vec2::new(9.0, 9.0), AstarConfig::default())
            .is_none());
    }

    #[test]
    fn four_connected_is_longer_than_eight_connected() {
        let grid = OccupancyGrid::new(10.0, 10.0, 0.5);
        let start = Vec2::new(0.5, 0.5);
        let goal = Vec2::new(9.5, 9.5);
        let diag = astar(&grid, start, goal, AstarConfig::default()).unwrap();
        let manhattan = astar(
            &grid,
            start,
            goal,
            AstarConfig { allow_diagonal: false, ..AstarConfig::default() },
        )
        .unwrap();
        assert!(diag.length() < manhattan.length());
    }

    #[test]
    fn astar_is_optimal_on_open_grid() {
        // On an empty 8-connected grid the path cost equals the Chebyshev-
        // style metric: sqrt2*min(|dx|,|dy|) + (max-min).
        let grid = OccupancyGrid::new(20.0, 20.0, 1.0);
        let start = grid.cell_center(2, 3);
        let goal = grid.cell_center(15, 9);
        let p = astar(&grid, start, goal, AstarConfig::default()).unwrap();
        let (dx, dy) = (13.0f64, 6.0f64);
        let expected = core::f64::consts::SQRT_2 * dy + (dx - dy);
        // The returned path includes the exact endpoints (same as cell
        // centers here), so lengths match the grid-optimal cost.
        assert!((p.length() - expected).abs() < 1e-9, "{} vs {expected}", p.length());
    }
}
