//! Collision checking against circular and rectangular obstacles.
//!
//! Two implementations of the same predicate live here:
//!
//! - [`CollisionWorld`] — the *conventional* representation: a list of
//!   boxed [`Obstacle`] trait objects queried one edge at a time with
//!   virtual dispatch, the way a general-purpose planning library stores
//!   heterogeneous collision geometry.
//! - [`BatchChecker`] — the *accelerated* software path: obstacles flattened
//!   into structure-of-arrays buffers, whole batches of edges checked in
//!   tight branch-minimal loops over squared distances.
//!
//! Both produce identical answers ([`BatchChecker`] is property-tested
//! against [`CollisionWorld`]); they differ only in cost. That difference is
//! the subject of experiment E6.

use crate::geometry::Vec2;
use m7_par::ParConfig;
use serde::{Deserialize, Serialize};

/// A collision primitive that can be queried against points and segments.
pub trait Obstacle: core::fmt::Debug + Send + Sync {
    /// Returns `true` if `p` lies inside the obstacle.
    fn contains(&self, p: Vec2) -> bool;

    /// Returns `true` if the segment `a → b` intersects the obstacle.
    fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool;

    /// Axis-aligned bounding box as `(min, max)`.
    fn aabb(&self) -> (Vec2, Vec2);
}

/// A circular obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center position.
    pub center: Vec2,
    /// Radius (meters).
    pub radius: f64,
}

impl Obstacle for Circle {
    fn contains(&self, p: Vec2) -> bool {
        p.distance_squared(self.center) <= self.radius * self.radius
    }

    fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        segment_circle_intersects(a, b, self.center, self.radius)
    }

    fn aabb(&self) -> (Vec2, Vec2) {
        let r = Vec2::new(self.radius, self.radius);
        (self.center - r, self.center + r)
    }
}

/// An axis-aligned rectangular obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Obstacle for Rect {
    fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        segment_rect_intersects(a, b, self.min, self.max)
    }

    fn aabb(&self) -> (Vec2, Vec2) {
        (self.min, self.max)
    }
}

/// Exact segment/circle intersection via closest-point projection.
fn segment_circle_intersects(a: Vec2, b: Vec2, center: Vec2, radius: f64) -> bool {
    let ab = b - a;
    let len2 = ab.norm_squared();
    let t = if len2 == 0.0 { 0.0 } else { ((center - a).dot(ab) / len2).clamp(0.0, 1.0) };
    let closest = a + ab * t;
    closest.distance_squared(center) <= radius * radius
}

/// Segment/AABB intersection via the slab method.
fn segment_rect_intersects(a: Vec2, b: Vec2, min: Vec2, max: Vec2) -> bool {
    let d = b - a;
    let mut tmin = 0.0f64;
    let mut tmax = 1.0f64;
    for (origin, dir, lo, hi) in [(a.x, d.x, min.x, max.x), (a.y, d.y, min.y, max.y)] {
        if dir.abs() < 1e-15 {
            if origin < lo || origin > hi {
                return false;
            }
        } else {
            let inv = 1.0 / dir;
            let (t1, t2) = ((lo - origin) * inv, (hi - origin) * inv);
            let (t1, t2) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(t1);
            tmax = tmax.min(t2);
            if tmin > tmax {
                return false;
            }
        }
    }
    true
}

/// The conventional heterogeneous obstacle world.
///
/// Obstacles are boxed trait objects; every query walks the list with
/// virtual dispatch and early exit — the memory-layout baseline for
/// experiment E6.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::CollisionWorld;
///
/// let mut world = CollisionWorld::new(10.0, 10.0);
/// world.add_circle(Vec2::new(5.0, 5.0), 1.0);
/// assert!(!world.point_free(Vec2::new(5.0, 5.0)));
/// assert!(world.point_free(Vec2::new(1.0, 1.0)));
/// assert!(!world.segment_free(Vec2::new(0.0, 5.0), Vec2::new(10.0, 5.0)));
/// ```
#[derive(Debug)]
pub struct CollisionWorld {
    width: f64,
    height: f64,
    /// Trait-object view used by the scalar query path (the conventional
    /// heterogeneous layout whose cost E6 measures).
    obstacles: Vec<Box<dyn Obstacle>>,
    /// Concrete record of the same obstacles, used to build the flattened
    /// [`BatchChecker`] without downcasting.
    primitives: Vec<Primitive>,
}

/// Concrete obstacle primitive, the flattenable subset of [`Obstacle`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Primitive {
    Circle(Circle),
    Rect(Rect),
}

impl CollisionWorld {
    /// Creates an empty world covering `[0, width] × [0, height]`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or non-finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        assert!(height > 0.0 && height.is_finite(), "height must be positive");
        Self { width, height, obstacles: Vec::new(), primitives: Vec::new() }
    }

    /// Workspace width in meters.
    #[inline]
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Workspace height in meters.
    #[inline]
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of obstacles.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// Returns `true` if the world has no obstacles.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Adds a circular obstacle.
    pub fn add_circle(&mut self, center: Vec2, radius: f64) {
        let c = Circle { center, radius };
        self.obstacles.push(Box::new(c));
        self.primitives.push(Primitive::Circle(c));
    }

    /// Adds an axis-aligned rectangular obstacle.
    pub fn add_rect(&mut self, min: Vec2, max: Vec2) {
        let r = Rect { min, max };
        self.obstacles.push(Box::new(r));
        self.primitives.push(Primitive::Rect(r));
    }

    /// Populates the world with `count` random circles, deterministically
    /// from `seed`. Radii are drawn from `[r_min, r_max]`.
    pub fn scatter_circles(&mut self, count: usize, r_min: f64, r_max: f64, seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..count {
            let c = Vec2::new(rng.gen_range(0.0..self.width), rng.gen_range(0.0..self.height));
            let r = rng.gen_range(r_min..=r_max);
            self.add_circle(c, r);
        }
    }

    /// Returns `true` if `p` is inside the workspace and outside every
    /// obstacle.
    #[must_use]
    pub fn point_free(&self, p: Vec2) -> bool {
        if p.x < 0.0 || p.y < 0.0 || p.x > self.width || p.y > self.height {
            return false;
        }
        self.obstacles.iter().all(|o| !o.contains(p))
    }

    /// Returns `true` if the segment `a → b` stays inside the workspace and
    /// clear of every obstacle (exact continuous test).
    #[must_use]
    pub fn segment_free(&self, a: Vec2, b: Vec2) -> bool {
        if !self.point_free(a) || !self.point_free(b) {
            return false;
        }
        self.obstacles.iter().all(|o| !o.intersects_segment(a, b))
    }

    /// Conventional *discrete* motion validation: point-checks interpolated
    /// states every `resolution` meters along the segment, the way
    /// general-purpose planning libraries validate motions.
    ///
    /// This is the realistic software baseline for experiment E6: it does
    /// `len/resolution` full obstacle scans per edge, and (like its
    /// real-world counterparts) can in principle miss an obstacle thinner
    /// than the resolution. Use [`CollisionWorld::segment_free`] when
    /// exactness matters.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive.
    #[must_use]
    pub fn segment_free_sampled(&self, a: Vec2, b: Vec2, resolution: f64) -> bool {
        assert!(resolution > 0.0, "resolution must be positive");
        if !self.point_free(a) || !self.point_free(b) {
            return false;
        }
        let len = a.distance(b);
        let steps = (len / resolution).ceil() as usize;
        for i in 1..steps {
            let t = i as f64 / steps as f64;
            if !self.point_free(a.lerp(b, t)) {
                return false;
            }
        }
        true
    }

    /// Builds the flattened batch checker for this world.
    #[must_use]
    pub fn to_batch_checker(&self) -> BatchChecker {
        let mut circles = SoaCircles::default();
        let mut rects = SoaRects::default();
        for p in &self.primitives {
            match p {
                Primitive::Circle(c) => circles.push(c.center, c.radius),
                Primitive::Rect(r) => rects.push(r.min, r.max),
            }
        }
        BatchChecker { width: self.width, height: self.height, circles, rects }
    }
}

/// Lane width of the vectorized predicates: four f64 values, one AVX2
/// register (or two NEON registers). The inner loops below are written as
/// fixed-width chunks of this size so the autovectorizer can prove the
/// trip count and emit packed mul-add chains.
pub const COLLISION_LANES: usize = 4;

/// Obstacles tested branch-free between early-exit checks. A multiple of
/// [`COLLISION_LANES`]; large enough that the per-block branch is
/// amortized, small enough that a dense world still exits early.
const COLLISION_BLOCK: usize = 32;

#[derive(Debug, Default, Clone)]
struct SoaCircles {
    cx: Vec<f64>,
    cy: Vec<f64>,
    r2: Vec<f64>,
}

impl SoaCircles {
    fn push(&mut self, center: Vec2, radius: f64) {
        self.cx.push(center.x);
        self.cy.push(center.y);
        self.r2.push(radius * radius);
    }

    /// Branch-free lane test: does any circle contain `(px, py)`?
    ///
    /// Identical per-circle arithmetic to the scalar reference (same
    /// expressions, exact comparisons), so the boolean answer is
    /// bit-identical; only the early-exit granularity changes (per
    /// [`COLLISION_BLOCK`] instead of per obstacle).
    fn any_contains(&self, px: f64, py: f64) -> bool {
        let n = self.cx.len();
        let mut base = 0;
        while base < n {
            let end = (base + COLLISION_BLOCK).min(n);
            let (cxs, cys, r2s) = (&self.cx[base..end], &self.cy[base..end], &self.r2[base..end]);
            let mut any = false;
            let mut lanes = cxs
                .chunks_exact(COLLISION_LANES)
                .zip(cys.chunks_exact(COLLISION_LANES))
                .zip(r2s.chunks_exact(COLLISION_LANES));
            for ((cx4, cy4), r24) in lanes.by_ref() {
                let mut hit = false;
                for l in 0..COLLISION_LANES {
                    let dx = px - cx4[l];
                    let dy = py - cy4[l];
                    hit |= dx * dx + dy * dy <= r24[l];
                }
                any |= hit;
            }
            let done = cxs.len() - cxs.len() % COLLISION_LANES;
            for i in done..cxs.len() {
                let dx = px - cxs[i];
                let dy = py - cys[i];
                any |= dx * dx + dy * dy <= r2s[i];
            }
            if any {
                return true;
            }
            base = end;
        }
        false
    }

    /// Branch-free lane test: does any circle intersect the segment with
    /// origin `(ax, ay)`, direction `(dx, dy)`, and `inv_len2 = 1/|d|²`?
    ///
    /// Per-circle arithmetic matches the scalar reference expression
    /// (closest-point projection, clamp, squared distance), so the boolean
    /// is bit-identical. `clamp` lowers to max/min — no branches inside
    /// the lane body.
    fn any_hits_segment(&self, ax: f64, ay: f64, dx: f64, dy: f64, inv_len2: f64) -> bool {
        let n = self.cx.len();
        let mut base = 0;
        while base < n {
            let end = (base + COLLISION_BLOCK).min(n);
            let (cxs, cys, r2s) = (&self.cx[base..end], &self.cy[base..end], &self.r2[base..end]);
            let mut any = false;
            let mut lanes = cxs
                .chunks_exact(COLLISION_LANES)
                .zip(cys.chunks_exact(COLLISION_LANES))
                .zip(r2s.chunks_exact(COLLISION_LANES));
            for ((cx4, cy4), r24) in lanes.by_ref() {
                let mut hit = false;
                for l in 0..COLLISION_LANES {
                    let acx = cx4[l] - ax;
                    let acy = cy4[l] - ay;
                    let t = ((acx * dx + acy * dy) * inv_len2).clamp(0.0, 1.0);
                    let px = acx - t * dx;
                    let py = acy - t * dy;
                    hit |= px * px + py * py <= r24[l];
                }
                any |= hit;
            }
            let done = cxs.len() - cxs.len() % COLLISION_LANES;
            for i in done..cxs.len() {
                let acx = cxs[i] - ax;
                let acy = cys[i] - ay;
                let t = ((acx * dx + acy * dy) * inv_len2).clamp(0.0, 1.0);
                let px = acx - t * dx;
                let py = acy - t * dy;
                any |= px * px + py * py <= r2s[i];
            }
            if any {
                return true;
            }
            base = end;
        }
        false
    }
}

#[derive(Debug, Default, Clone)]
struct SoaRects {
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
}

impl SoaRects {
    fn push(&mut self, min: Vec2, max: Vec2) {
        self.min_x.push(min.x);
        self.min_y.push(min.y);
        self.max_x.push(max.x);
        self.max_y.push(max.y);
    }

    /// Branch-free lane test: does any rectangle contain `(px, py)`?
    fn any_contains(&self, px: f64, py: f64) -> bool {
        let n = self.min_x.len();
        let mut base = 0;
        while base < n {
            let end = (base + COLLISION_BLOCK).min(n);
            let mut any = false;
            for i in base..end {
                any |= px >= self.min_x[i]
                    && px <= self.max_x[i]
                    && py >= self.min_y[i]
                    && py <= self.max_y[i];
            }
            if any {
                return true;
            }
            base = end;
        }
        false
    }
}

/// The batched structure-of-arrays collision checker.
///
/// Built from a [`CollisionWorld`] via
/// [`CollisionWorld::to_batch_checker`]; answers the same queries with
/// flat-array arithmetic and batch entry points. Agreement with the scalar
/// checker is property-tested.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::CollisionWorld;
///
/// let mut world = CollisionWorld::new(10.0, 10.0);
/// world.add_circle(Vec2::new(5.0, 5.0), 1.0);
/// let batch = world.to_batch_checker();
/// let edges = [(Vec2::new(0.0, 5.0), Vec2::new(10.0, 5.0)),
///              (Vec2::new(0.0, 0.5), Vec2::new(10.0, 0.5))];
/// let free = batch.segments_free(&edges);
/// assert_eq!(free, vec![false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchChecker {
    width: f64,
    height: f64,
    circles: SoaCircles,
    rects: SoaRects,
}

impl BatchChecker {
    /// Number of obstacles in the checker.
    #[must_use]
    pub fn len(&self) -> usize {
        self.circles.cx.len() + self.rects.min_x.len()
    }

    /// Returns `true` if the checker has no obstacles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lane point predicate: the workspace bound check, then the
    /// branch-free [`COLLISION_LANES`]-wide circle and rect sweeps.
    ///
    /// Bit-identical to [`BatchChecker::point_free_one_scalar`] — the
    /// per-obstacle arithmetic is the same expression; only the early-exit
    /// granularity differs.
    #[inline]
    fn point_free_one(&self, p: Vec2) -> bool {
        if p.x < 0.0 || p.y < 0.0 || p.x > self.width || p.y > self.height {
            return false;
        }
        !self.circles.any_contains(p.x, p.y) && !self.rects.any_contains(p.x, p.y)
    }

    /// Lane segment predicate: edge geometry hoisted once, then the
    /// branch-free lane sweep over circles and the slab test over rects.
    ///
    /// Bit-identical to [`BatchChecker::segment_free_one_scalar`].
    #[inline]
    fn segment_free_one(&self, a: Vec2, b: Vec2) -> bool {
        let inside = |p: Vec2| p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height;
        if !inside(a) || !inside(b) {
            return false;
        }
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let len2 = dx * dx + dy * dy;
        let inv_len2 = if len2 == 0.0 { 0.0 } else { 1.0 / len2 };
        if self.circles.any_hits_segment(a.x, a.y, dx, dy, inv_len2) {
            return false;
        }
        for r in 0..self.rects.min_x.len() {
            if segment_rect_intersects(
                a,
                b,
                Vec2::new(self.rects.min_x[r], self.rects.min_y[r]),
                Vec2::new(self.rects.max_x[r], self.rects.max_y[r]),
            ) {
                return false;
            }
        }
        true
    }

    /// Scalar point predicate over the flat SoA arrays: no virtual
    /// dispatch, no per-obstacle pointer chase, square-distance arithmetic
    /// only, and an early exit once any obstacle claims the point.
    ///
    /// Kept as the property-tested reference for the lane path; exposed
    /// through [`BatchChecker::points_free_scalar`].
    fn point_free_one_scalar(&self, p: Vec2) -> bool {
        if p.x < 0.0 || p.y < 0.0 || p.x > self.width || p.y > self.height {
            return false;
        }
        for ((cx, cy), r2) in self.circles.cx.iter().zip(&self.circles.cy).zip(&self.circles.r2) {
            let dx = p.x - cx;
            let dy = p.y - cy;
            if dx * dx + dy * dy <= *r2 {
                return false;
            }
        }
        for i in 0..self.rects.min_x.len() {
            if p.x >= self.rects.min_x[i]
                && p.x <= self.rects.max_x[i]
                && p.y >= self.rects.min_y[i]
                && p.y <= self.rects.max_y[i]
            {
                return false;
            }
        }
        true
    }

    /// Scalar segment predicate: edge geometry hoisted into registers once,
    /// straight-line closest-point test per circle with early exit.
    ///
    /// Kept as the property-tested reference for the lane path; exposed
    /// through [`BatchChecker::segments_free_scalar`].
    fn segment_free_one_scalar(&self, a: Vec2, b: Vec2) -> bool {
        let inside = |p: Vec2| p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height;
        if !inside(a) || !inside(b) {
            return false;
        }
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let len2 = dx * dx + dy * dy;
        let inv_len2 = if len2 == 0.0 { 0.0 } else { 1.0 / len2 };
        for c in 0..self.circles.cx.len() {
            // Closest point on the segment to the circle center,
            // entirely in registers.
            let acx = self.circles.cx[c] - a.x;
            let acy = self.circles.cy[c] - a.y;
            let t = ((acx * dx + acy * dy) * inv_len2).clamp(0.0, 1.0);
            let px = acx - t * dx;
            let py = acy - t * dy;
            if px * px + py * py <= self.circles.r2[c] {
                return false;
            }
        }
        for r in 0..self.rects.min_x.len() {
            if segment_rect_intersects(
                a,
                b,
                Vec2::new(self.rects.min_x[r], self.rects.min_y[r]),
                Vec2::new(self.rects.max_x[r], self.rects.max_y[r]),
            ) {
                return false;
            }
        }
        true
    }

    /// Batched point query: one boolean per input point.
    ///
    /// Point-major iteration over the flat SoA arrays, each point running
    /// the [`COLLISION_LANES`]-wide branch-free sweep; see
    /// [`BatchChecker::par_points_free`] for the multi-threaded variant and
    /// [`BatchChecker::points_free_scalar`] for the scalar reference.
    #[must_use]
    pub fn points_free(&self, points: &[Vec2]) -> Vec<bool> {
        points.iter().map(|&p| self.point_free_one(p)).collect()
    }

    /// Scalar-reference [`BatchChecker::points_free`]: per-obstacle early
    /// exit, no lane restructuring. Bit-identical output; kept public so
    /// benchmarks and property tests can diff the two paths.
    #[must_use]
    pub fn points_free_scalar(&self, points: &[Vec2]) -> Vec<bool> {
        points.iter().map(|&p| self.point_free_one_scalar(p)).collect()
    }

    /// Batched segment query: one boolean per input edge.
    ///
    /// Same layout strategy as [`BatchChecker::points_free`]: the obstacle
    /// set lives in contiguous arrays that stay cache-resident across the
    /// whole edge batch, each edge's geometry is hoisted into registers
    /// once, and the inner loop is a fixed-width branch-free closest-point
    /// sweep ([`COLLISION_LANES`] circles per step).
    #[must_use]
    pub fn segments_free(&self, edges: &[(Vec2, Vec2)]) -> Vec<bool> {
        edges.iter().map(|&(a, b)| self.segment_free_one(a, b)).collect()
    }

    /// Scalar-reference [`BatchChecker::segments_free`]: per-obstacle early
    /// exit, no lane restructuring. Bit-identical output; kept public so
    /// benchmarks and property tests can diff the two paths.
    #[must_use]
    pub fn segments_free_scalar(&self, edges: &[(Vec2, Vec2)]) -> Vec<bool> {
        edges.iter().map(|&(a, b)| self.segment_free_one_scalar(a, b)).collect()
    }

    /// Multi-threaded [`BatchChecker::points_free`].
    ///
    /// Each point runs the same scalar predicate as the serial batch; the
    /// output vector is ordered by input index regardless of scheduling, so
    /// the result is identical to [`BatchChecker::points_free`] at any
    /// thread count.
    #[must_use]
    pub fn par_points_free(&self, points: &[Vec2], par: ParConfig) -> Vec<bool> {
        par.par_map(points, |&p| self.point_free_one(p))
    }

    /// Multi-threaded [`BatchChecker::segments_free`].
    ///
    /// Identical output to the serial batch at any thread count; only
    /// wall-clock changes.
    #[must_use]
    pub fn par_segments_free(&self, edges: &[(Vec2, Vec2)], par: ParConfig) -> Vec<bool> {
        par.par_map(edges, |&(a, b)| self.segment_free_one(a, b))
    }

    /// Single-segment convenience wrapper over [`BatchChecker::segments_free`].
    #[must_use]
    pub fn segment_free(&self, a: Vec2, b: Vec2) -> bool {
        self.segments_free(&[(a, b)])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demo_world() -> CollisionWorld {
        let mut w = CollisionWorld::new(20.0, 20.0);
        w.add_circle(Vec2::new(5.0, 5.0), 2.0);
        w.add_circle(Vec2::new(14.0, 12.0), 3.0);
        w.add_rect(Vec2::new(8.0, 0.0), Vec2::new(9.0, 10.0));
        w
    }

    #[test]
    fn point_queries() {
        let w = demo_world();
        assert!(!w.point_free(Vec2::new(5.0, 5.0)));
        assert!(!w.point_free(Vec2::new(8.5, 4.0)));
        assert!(w.point_free(Vec2::new(1.0, 1.0)));
        assert!(!w.point_free(Vec2::new(-0.1, 1.0)), "outside workspace is not free");
        assert!(!w.point_free(Vec2::new(1.0, 20.5)));
    }

    #[test]
    fn segment_queries() {
        let w = demo_world();
        assert!(!w.segment_free(Vec2::new(0.0, 5.0), Vec2::new(10.0, 5.0)), "crosses circle");
        assert!(!w.segment_free(Vec2::new(7.0, 4.0), Vec2::new(10.0, 4.0)), "crosses rect");
        assert!(w.segment_free(Vec2::new(0.5, 18.0), Vec2::new(6.0, 18.0)));
    }

    #[test]
    fn segment_grazing_circle_boundary() {
        let mut w = CollisionWorld::new(10.0, 10.0);
        w.add_circle(Vec2::new(5.0, 5.0), 1.0);
        // Passes exactly 1.5 m from the center: free.
        assert!(w.segment_free(Vec2::new(0.0, 6.5), Vec2::new(10.0, 6.5)));
        // Passes 0.5 m from the center: blocked.
        assert!(!w.segment_free(Vec2::new(0.0, 5.5), Vec2::new(10.0, 5.5)));
    }

    #[test]
    fn rect_slab_edge_cases() {
        let r = Rect { min: Vec2::new(2.0, 2.0), max: Vec2::new(4.0, 4.0) };
        // Vertical segment through the box.
        assert!(r.intersects_segment(Vec2::new(3.0, 0.0), Vec2::new(3.0, 6.0)));
        // Vertical segment beside the box.
        assert!(!r.intersects_segment(Vec2::new(5.0, 0.0), Vec2::new(5.0, 6.0)));
        // Segment fully inside.
        assert!(r.intersects_segment(Vec2::new(2.5, 2.5), Vec2::new(3.5, 3.5)));
        // Degenerate point segment inside.
        assert!(r.intersects_segment(Vec2::new(3.0, 3.0), Vec2::new(3.0, 3.0)));
    }

    #[test]
    fn sampled_validator_agrees_on_coarse_obstacles() {
        // At 5 cm resolution against ≥0.3 m obstacles, the conventional
        // sampled validator agrees with the exact test.
        let mut w = CollisionWorld::new(20.0, 20.0);
        w.scatter_circles(10, 0.4, 2.0, 17);
        w.add_rect(Vec2::new(5.0, 5.0), Vec2::new(7.0, 12.0));
        for i in 0..60 {
            let t = i as f64 / 60.0;
            let a = Vec2::new(20.0 * t, 0.5);
            let b = Vec2::new(20.0 - 20.0 * t, 19.5);
            assert_eq!(w.segment_free_sampled(a, b, 0.05), w.segment_free(a, b), "edge {i}");
        }
    }

    #[test]
    fn sampled_validator_costs_scale_with_resolution() {
        // Behavioral (not timing) check: a coarser resolution can miss a
        // thin obstacle that the exact test catches.
        let mut w = CollisionWorld::new(10.0, 10.0);
        w.add_rect(Vec2::new(4.499, 0.0), Vec2::new(4.501, 10.0)); // 2 mm wall
                                                                   // 1 m sampling from x = 1 lands on integer x only, straddling 4.5.
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(9.0, 5.0);
        assert!(!w.segment_free(a, b), "exact test catches the wall");
        // 1 m sampling steps straddle the wall.
        assert!(w.segment_free_sampled(a, b, 1.0), "coarse sampling misses it");
        // Fine sampling may or may not land on 2 mm; the exact checker is
        // the ground truth either way.
    }

    #[test]
    fn batch_matches_scalar_on_demo_world() {
        let w = demo_world();
        let batch = w.to_batch_checker();
        assert_eq!(batch.len(), w.len());
        let edges: Vec<(Vec2, Vec2)> = (0..50)
            .map(|i| {
                let t = i as f64 / 50.0;
                (Vec2::new(20.0 * t, 0.0), Vec2::new(20.0 - 20.0 * t, 20.0))
            })
            .collect();
        let batch_res = batch.segments_free(&edges);
        for (i, (a, b)) in edges.iter().enumerate() {
            assert_eq!(batch_res[i], w.segment_free(*a, *b), "edge {i}");
        }
    }

    #[test]
    fn scatter_is_deterministic() {
        let mut a = CollisionWorld::new(30.0, 30.0);
        a.scatter_circles(25, 0.5, 2.0, 99);
        let mut b = CollisionWorld::new(30.0, 30.0);
        b.scatter_circles(25, 0.5, 2.0, 99);
        let pa = a.to_batch_checker();
        let pb = b.to_batch_checker();
        let probe: Vec<Vec2> =
            (0..100).map(|i| Vec2::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)).collect();
        assert_eq!(pa.points_free(&probe), pb.points_free(&probe));
    }

    /// Lane path vs scalar reference at every chunk remainder length:
    /// circle counts spanning `len % COLLISION_LANES ∈ {0..LANES-1}` and
    /// both sides of the block boundary.
    #[test]
    fn lane_path_matches_scalar_at_every_remainder() {
        let probe_pts: Vec<Vec2> =
            (0..200).map(|i| Vec2::new((i % 20) as f64, (i / 20) as f64 * 2.0)).collect();
        let probe_edges: Vec<(Vec2, Vec2)> = (0..100)
            .map(|i| {
                let t = i as f64 / 100.0;
                (Vec2::new(20.0 * t, 0.0), Vec2::new(20.0 - 20.0 * t, 20.0))
            })
            .collect();
        let counts = (0..=9)
            .chain(COLLISION_BLOCK - 2..=COLLISION_BLOCK + COLLISION_LANES + 1)
            .collect::<Vec<_>>();
        for n in counts {
            let mut w = CollisionWorld::new(20.0, 20.0);
            w.scatter_circles(n, 0.3, 2.0, n as u64 + 7);
            if n % 2 == 0 {
                w.add_rect(Vec2::new(3.0, 3.0), Vec2::new(4.5, 9.0));
            }
            let batch = w.to_batch_checker();
            assert_eq!(
                batch.points_free(&probe_pts),
                batch.points_free_scalar(&probe_pts),
                "point lane/scalar divergence at {n} circles"
            );
            assert_eq!(
                batch.segments_free(&probe_edges),
                batch.segments_free_scalar(&probe_edges),
                "segment lane/scalar divergence at {n} circles"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_lane_kernels_agree_with_scalar_reference(
            seed in 0u64..500,
            circles in 0usize..40,
            edges in prop::collection::vec(((-1.0..21.0f64, -1.0..21.0f64), (-1.0..21.0f64, -1.0..21.0f64)), 1..40),
        ) {
            let mut w = CollisionWorld::new(20.0, 20.0);
            w.scatter_circles(circles, 0.3, 2.5, seed);
            w.add_rect(Vec2::new(3.0, 3.0), Vec2::new(4.5, 9.0));
            let batch = w.to_batch_checker();
            let edges: Vec<(Vec2, Vec2)> = edges
                .into_iter()
                .map(|((ax, ay), (bx, by))| (Vec2::new(ax, ay), Vec2::new(bx, by)))
                .collect();
            let pts: Vec<Vec2> = edges.iter().map(|&(a, _)| a).collect();
            prop_assert_eq!(batch.segments_free(&edges), batch.segments_free_scalar(&edges));
            prop_assert_eq!(batch.points_free(&pts), batch.points_free_scalar(&pts));
        }

        #[test]
        fn prop_batch_agrees_with_scalar(
            seed in 0u64..500,
            edges in prop::collection::vec(((0.0..20.0f64, 0.0..20.0f64), (0.0..20.0f64, 0.0..20.0f64)), 1..40),
        ) {
            let mut w = CollisionWorld::new(20.0, 20.0);
            w.scatter_circles(8, 0.3, 2.5, seed);
            w.add_rect(Vec2::new(3.0, 3.0), Vec2::new(4.5, 9.0));
            let batch = w.to_batch_checker();
            let edges: Vec<(Vec2, Vec2)> = edges
                .into_iter()
                .map(|((ax, ay), (bx, by))| (Vec2::new(ax, ay), Vec2::new(bx, by)))
                .collect();
            let got = batch.segments_free(&edges);
            for (i, (a, b)) in edges.iter().enumerate() {
                prop_assert_eq!(got[i], w.segment_free(*a, *b));
            }
        }

        #[test]
        fn prop_points_free_agrees(
            seed in 0u64..500,
            pts in prop::collection::vec((-1.0..21.0f64, -1.0..21.0f64), 1..60),
        ) {
            let mut w = CollisionWorld::new(20.0, 20.0);
            w.scatter_circles(10, 0.3, 2.0, seed);
            let batch = w.to_batch_checker();
            let pts: Vec<Vec2> = pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect();
            let got = batch.points_free(&pts);
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(got[i], w.point_free(*p));
            }
        }

        #[test]
        fn prop_par_batches_match_serial_at_any_thread_count(
            seed in 0u64..500,
            edges in prop::collection::vec(((0.0..20.0f64, 0.0..20.0f64), (0.0..20.0f64, 0.0..20.0f64)), 1..50),
        ) {
            let mut w = CollisionWorld::new(20.0, 20.0);
            w.scatter_circles(8, 0.3, 2.5, seed);
            w.add_rect(Vec2::new(3.0, 3.0), Vec2::new(4.5, 9.0));
            let batch = w.to_batch_checker();
            let edges: Vec<(Vec2, Vec2)> = edges
                .into_iter()
                .map(|((ax, ay), (bx, by))| (Vec2::new(ax, ay), Vec2::new(bx, by)))
                .collect();
            let pts: Vec<Vec2> = edges.iter().map(|&(a, _)| a).collect();
            let serial_edges = batch.segments_free(&edges);
            let serial_pts = batch.points_free(&pts);
            for threads in [1usize, 2, 5, 8] {
                let par = ParConfig::with_threads(threads);
                prop_assert_eq!(&batch.par_segments_free(&edges, par), &serial_edges);
                prop_assert_eq!(&batch.par_points_free(&pts, par), &serial_pts);
            }
        }
    }
}
