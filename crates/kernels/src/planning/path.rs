//! Planned paths: waypoint sequences with length, validation, and
//! shortcut smoothing.

use super::collision::CollisionWorld;
use crate::geometry::Vec2;
use serde::{Deserialize, Serialize};

/// A piecewise-linear path through the workspace.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::Path;
///
/// let path = Path::new(vec![Vec2::ZERO, Vec2::new(3.0, 4.0), Vec2::new(3.0, 8.0)]);
/// assert_eq!(path.length(), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    waypoints: Vec<Vec2>,
}

impl Path {
    /// Creates a path from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one waypoint is given.
    #[must_use]
    pub fn new(waypoints: Vec<Vec2>) -> Self {
        assert!(!waypoints.is_empty(), "a path needs at least one waypoint");
        Self { waypoints }
    }

    /// The waypoint sequence.
    #[must_use]
    pub fn waypoints(&self) -> &[Vec2] {
        &self.waypoints
    }

    /// Total Euclidean length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// The first waypoint.
    #[must_use]
    pub fn start(&self) -> Vec2 {
        self.waypoints[0]
    }

    /// The last waypoint.
    #[must_use]
    pub fn goal(&self) -> Vec2 {
        *self.waypoints.last().expect("path is nonempty")
    }

    /// Returns `true` if every segment of the path is collision-free in
    /// `world`.
    #[must_use]
    pub fn is_valid(&self, world: &CollisionWorld) -> bool {
        if self.waypoints.len() == 1 {
            return world.point_free(self.waypoints[0]);
        }
        self.waypoints.windows(2).all(|w| world.segment_free(w[0], w[1]))
    }

    /// The point at arc-length parameter `s ∈ [0, length]` along the path.
    ///
    /// Clamps `s` into range.
    #[must_use]
    pub fn point_at(&self, s: f64) -> Vec2 {
        let mut remaining = s.max(0.0);
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            if remaining <= seg {
                if seg == 0.0 {
                    return w[0];
                }
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        self.goal()
    }

    /// Greedy shortcut smoothing: repeatedly replaces waypoint subchains
    /// with straight segments when collision-free. Deterministic; runs until
    /// no shortcut is found. Returns the smoothed path (never longer than
    /// the original).
    #[must_use]
    pub fn shortcut(&self, world: &CollisionWorld) -> Self {
        let mut pts = self.waypoints.clone();
        let mut improved = true;
        while improved && pts.len() > 2 {
            improved = false;
            let mut i = 0;
            while i + 2 < pts.len() {
                if world.segment_free(pts[i], pts[i + 2]) {
                    pts.remove(i + 1);
                    improved = true;
                } else {
                    i += 1;
                }
            }
        }
        Self { waypoints: pts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_endpoints() {
        let p = Path::new(vec![Vec2::ZERO, Vec2::new(0.0, 2.0), Vec2::new(1.5, 4.0)]);
        assert!((p.length() - 4.5).abs() < 1e-12);
        assert_eq!(p.start(), Vec2::ZERO);
        assert_eq!(p.goal(), Vec2::new(1.5, 4.0));
    }

    #[test]
    fn point_at_interpolates() {
        let p = Path::new(vec![Vec2::ZERO, Vec2::new(4.0, 0.0)]);
        assert_eq!(p.point_at(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(p.point_at(-5.0), Vec2::ZERO);
        assert_eq!(p.point_at(99.0), Vec2::new(4.0, 0.0));
    }

    #[test]
    fn shortcut_removes_detour() {
        let world = CollisionWorld::new(10.0, 10.0);
        let p = Path::new(vec![Vec2::new(1.0, 1.0), Vec2::new(5.0, 9.0), Vec2::new(9.0, 1.0)]);
        let s = p.shortcut(&world);
        assert_eq!(s.waypoints().len(), 2);
        assert!(s.length() < p.length());
    }

    #[test]
    fn shortcut_respects_obstacles() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_circle(Vec2::new(5.0, 1.0), 1.5);
        let p = Path::new(vec![Vec2::new(1.0, 1.0), Vec2::new(5.0, 5.0), Vec2::new(9.0, 1.0)]);
        let s = p.shortcut(&world);
        assert_eq!(s.waypoints().len(), 3, "direct segment is blocked");
        assert!(s.is_valid(&world));
    }

    #[test]
    fn validity_detects_collision() {
        let mut world = CollisionWorld::new(10.0, 10.0);
        world.add_circle(Vec2::new(5.0, 5.0), 1.0);
        let bad = Path::new(vec![Vec2::new(0.0, 5.0), Vec2::new(10.0, 5.0)]);
        assert!(!bad.is_valid(&world));
        let good = Path::new(vec![Vec2::new(0.0, 1.0), Vec2::new(10.0, 1.0)]);
        assert!(good.is_valid(&world));
    }
}
