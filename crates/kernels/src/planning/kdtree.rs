//! A 2D kd-tree for nearest-neighbor and radius queries, used by the RRT*
//! rewiring step and PRM roadmap construction.

use crate::geometry::Vec2;

/// A static-insert 2D kd-tree keyed by [`Vec2`], carrying a `usize` payload
/// (typically an index into the caller's node arena).
///
/// Points are inserted incrementally without rebalancing; for the randomized
/// insertion order of sampling-based planners the expected depth stays
/// logarithmic.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::KdTree;
///
/// let mut tree = KdTree::new();
/// tree.insert(Vec2::new(1.0, 1.0), 0);
/// tree.insert(Vec2::new(5.0, 5.0), 1);
/// let (idx, _dist2) = tree.nearest(Vec2::new(4.0, 4.5)).unwrap();
/// assert_eq!(idx, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
struct Node {
    point: Vec2,
    payload: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a point with its payload.
    pub fn insert(&mut self, point: Vec2, payload: usize) {
        let new_index = self.nodes.len();
        self.nodes.push(Node { point, payload, left: None, right: None });
        if new_index == 0 {
            return;
        }
        let mut current = 0usize;
        let mut axis = 0usize;
        loop {
            let go_left = Self::key(point, axis) < Self::key(self.nodes[current].point, axis);
            let slot = if go_left { self.nodes[current].left } else { self.nodes[current].right };
            match slot {
                Some(next) => current = next,
                None => {
                    if go_left {
                        self.nodes[current].left = Some(new_index);
                    } else {
                        self.nodes[current].right = Some(new_index);
                    }
                    return;
                }
            }
            axis ^= 1;
        }
    }

    #[inline]
    fn key(p: Vec2, axis: usize) -> f64 {
        if axis == 0 {
            p.x
        } else {
            p.y
        }
    }

    /// The payload and squared distance of the stored point nearest to
    /// `query`, or `None` if the tree is empty.
    #[must_use]
    pub fn nearest(&self, query: Vec2) -> Option<(usize, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(0, 0, query, &mut best);
        Some((self.nodes[best.0].payload, best.1))
    }

    fn nearest_rec(&self, node: usize, axis: usize, query: Vec2, best: &mut (usize, f64)) {
        let n = &self.nodes[node];
        let d2 = n.point.distance_squared(query);
        if d2 < best.1 {
            *best = (node, d2);
        }
        let diff = Self::key(query, axis) - Self::key(n.point, axis);
        let (near, far) = if diff < 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        if let Some(c) = near {
            self.nearest_rec(c, axis ^ 1, query, best);
        }
        if diff * diff < best.1 {
            if let Some(c) = far {
                self.nearest_rec(c, axis ^ 1, query, best);
            }
        }
    }

    /// Payloads of all stored points within `radius` of `query`.
    #[must_use]
    pub fn within_radius(&self, query: Vec2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if !self.nodes.is_empty() && radius >= 0.0 {
            self.radius_rec(0, 0, query, radius * radius, &mut out);
        }
        out
    }

    fn radius_rec(&self, node: usize, axis: usize, query: Vec2, r2: f64, out: &mut Vec<usize>) {
        let n = &self.nodes[node];
        if n.point.distance_squared(query) <= r2 {
            out.push(n.payload);
        }
        let diff = Self::key(query, axis) - Self::key(n.point, axis);
        let (near, far) = if diff < 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        if let Some(c) = near {
            self.radius_rec(c, axis ^ 1, query, r2, out);
        }
        if diff * diff <= r2 {
            if let Some(c) = far {
                self.radius_rec(c, axis ^ 1, query, r2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_tree_has_no_nearest() {
        assert!(KdTree::new().nearest(Vec2::ZERO).is_none());
        assert!(KdTree::new().within_radius(Vec2::ZERO, 1.0).is_empty());
    }

    #[test]
    fn single_point() {
        let mut t = KdTree::new();
        t.insert(Vec2::new(2.0, 3.0), 7);
        let (p, d2) = t.nearest(Vec2::new(2.0, 4.0)).unwrap();
        assert_eq!(p, 7);
        assert!((d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let pts: Vec<Vec2> = (0..300)
            .map(|_| Vec2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let mut tree = KdTree::new();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(*p, i);
        }
        for _ in 0..100 {
            let q = Vec2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let (got, got_d2) = tree.nearest(q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.distance_squared(q).partial_cmp(&b.distance_squared(q)).unwrap()
                })
                .unwrap()
                .0;
            assert!((got_d2 - pts[want].distance_squared(q)).abs() < 1e-12);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn radius_query_matches_linear_scan() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let pts: Vec<Vec2> = (0..200)
            .map(|_| Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        let mut tree = KdTree::new();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(*p, i);
        }
        let q = Vec2::new(25.0, 25.0);
        let r = 10.0;
        let mut got = tree.within_radius(q, r);
        got.sort_unstable();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(q) <= r * r)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    proptest! {
        #[test]
        fn prop_nearest_agrees_with_scan(
            pts in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..120),
            q in (-60.0..60.0f64, -60.0..60.0f64),
        ) {
            let pts: Vec<Vec2> = pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect();
            let q = Vec2::new(q.0, q.1);
            let mut tree = KdTree::new();
            for (i, p) in pts.iter().enumerate() {
                tree.insert(*p, i);
            }
            let (_, got_d2) = tree.nearest(q).unwrap();
            let want_d2 = pts.iter().map(|p| p.distance_squared(q)).fold(f64::INFINITY, f64::min);
            prop_assert!((got_d2 - want_d2).abs() < 1e-9);
        }
    }
}
