//! The deliberately *obsolete* dense grid-correlation SLAM variant.
//!
//! This scan matcher localizes by brute-force: it scores every pose in a
//! discretized window around the odometry prior by projecting the laser
//! scan into the occupancy grid and summing cell log-odds. Dense
//! correlation scan matching was a reasonable design in the early 2010s;
//! modern sparse filters and graph optimizers have displaced it. Experiment
//! E2 accelerates this kernel "because the benchmark said it was the
//! bottleneck" and shows the resulting end-to-end disappointment.

use crate::geometry::{normalize_angle, Pose2, Vec2};
use crate::grid::OccupancyGrid;
use serde::{Deserialize, Serialize};

/// Parameters of the correlation search window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseSlamConfig {
    /// Half-width of the translational search window (meters).
    pub window_trans: f64,
    /// Half-width of the rotational search window (radians).
    pub window_rot: f64,
    /// Translational search resolution (meters).
    pub step_trans: f64,
    /// Rotational search resolution (radians).
    pub step_rot: f64,
}

impl Default for DenseSlamConfig {
    fn default() -> Self {
        Self { window_trans: 0.5, window_rot: 0.15, step_trans: 0.05, step_rot: 0.015 }
    }
}

/// A laser scan: bearings (relative to heading) and measured ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scan {
    /// Beam bearings relative to the robot heading (radians).
    pub bearings: Vec<f64>,
    /// Measured ranges per beam (meters).
    pub ranges: Vec<f64>,
}

/// The dense correlation scan-matching SLAM pipeline.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::{Pose2, Vec2};
/// use m7_kernels::slam::{DenseScanSlam, DenseSlamConfig};
///
/// let mut slam = DenseScanSlam::new(DenseSlamConfig::default(), 30.0, 30.0, 0.25);
/// // With an empty map the matcher stays at the odometry prior.
/// let pose = slam.pose();
/// assert_eq!(pose, Pose2::identity());
/// ```
#[derive(Debug, Clone)]
pub struct DenseScanSlam {
    config: DenseSlamConfig,
    grid: OccupancyGrid,
    pose: Pose2,
    /// Cumulative count of pose-hypothesis × beam evaluations (the
    /// correlation inner loop), the quantity an accelerator would target.
    correlation_evals: u64,
}

impl DenseScanSlam {
    /// Creates a pipeline over a fresh occupancy grid of the given size.
    ///
    /// The robot starts at the center of the grid.
    #[must_use]
    pub fn new(config: DenseSlamConfig, width: f64, height: f64, resolution: f64) -> Self {
        Self {
            config,
            grid: OccupancyGrid::new(width, height, resolution),
            pose: Pose2::identity(),
            correlation_evals: 0,
        }
    }

    /// The matcher configuration.
    #[must_use]
    pub fn config(&self) -> &DenseSlamConfig {
        &self.config
    }

    /// Current pose estimate.
    #[must_use]
    pub fn pose(&self) -> Pose2 {
        self.pose
    }

    /// The map built so far.
    #[must_use]
    pub fn grid(&self) -> &OccupancyGrid {
        &self.grid
    }

    /// Cumulative correlation-loop evaluations (pose hypotheses × beams).
    #[must_use]
    pub fn correlation_evals(&self) -> u64 {
        self.correlation_evals
    }

    /// Number of pose hypotheses scored per scan with the current config.
    #[must_use]
    pub fn hypotheses_per_scan(&self) -> usize {
        let nt = (2.0 * self.config.window_trans / self.config.step_trans).floor() as usize + 1;
        let nr = (2.0 * self.config.window_rot / self.config.step_rot).floor() as usize + 1;
        nt * nt * nr
    }

    /// Processes one step: applies odometry `(dx, dy, dtheta)` in the body
    /// frame, runs the correlation search around the prior, then integrates
    /// the scan into the map from the matched pose.
    pub fn step(&mut self, odometry: Pose2, scan: &Scan) {
        let prior = self.pose.compose(odometry);
        let matched = self.correlate(prior, scan);
        self.pose = matched;
        self.integrate(scan);
    }

    /// Brute-force correlation search: the kernel E2's "widget" accelerates.
    fn correlate(&mut self, prior: Pose2, scan: &Scan) -> Pose2 {
        let (best_pose, evals) = self.match_scan(prior, scan);
        self.correlation_evals += evals;
        best_pose
    }

    /// The correlation search, restructured for the hardware: beam
    /// endpoint *offsets* depend only on the rotation hypothesis, so the
    /// `cos`/`sin` per (hypothesis × beam) of the reference implementation
    /// is hoisted into a per-rotation SoA table computed once per scan.
    /// The remaining inner loop is add + grid gather.
    ///
    /// Returns the matched pose and the number of hypothesis × beam
    /// evaluations performed. Bit-identical to
    /// [`DenseScanSlam::match_scan_reference`]: the hoisted offsets are
    /// the same f64 expressions (`heading` is independent of `tx`/`ty`),
    /// scores accumulate in the same beam order, and hypotheses are
    /// visited in the same `ty → tx → tr` order so first-wins
    /// tie-breaking is preserved.
    #[must_use]
    pub fn match_scan(&self, prior: Pose2, scan: &Scan) -> (Pose2, u64) {
        let c = &self.config;
        let beams = scan.bearings.len();
        // Rotation hypotheses, enumerated exactly as the reference loop
        // accumulates them.
        let mut rots = Vec::new();
        let mut tr = -c.window_rot;
        while tr <= c.window_rot + 1e-12 {
            rots.push(tr);
            tr += c.step_rot;
        }
        // Per-rotation endpoint offsets, SoA: off_x/off_y[k * beams + i].
        let mut off_x = vec![0.0f64; rots.len() * beams];
        let mut off_y = vec![0.0f64; rots.len() * beams];
        for (k, &tr) in rots.iter().enumerate() {
            let heading = normalize_angle(prior.heading + tr);
            let (ox, oy) = (&mut off_x[k * beams..], &mut off_y[k * beams..]);
            for (i, (bearing, range)) in scan.bearings.iter().zip(&scan.ranges).enumerate() {
                let angle = heading + bearing;
                ox[i] = range * angle.cos();
                oy[i] = range * angle.sin();
            }
        }
        let mut evals = 0u64;
        let mut best_pose = prior;
        let mut best_score = f64::NEG_INFINITY;
        let mut ty = -c.window_trans;
        while ty <= c.window_trans + 1e-12 {
            let mut tx = -c.window_trans;
            while tx <= c.window_trans + 1e-12 {
                for (k, &tr) in rots.iter().enumerate() {
                    let hypothesis = Pose2::new(
                        prior.position + Vec2::new(tx, ty),
                        normalize_angle(prior.heading + tr),
                    );
                    let (hx, hy) = (hypothesis.position.x, hypothesis.position.y);
                    let ox = &off_x[k * beams..k * beams + beams];
                    let oy = &off_y[k * beams..k * beams + beams];
                    let mut score = 0.0;
                    for i in 0..beams {
                        let endpoint = Vec2::new(hx + ox[i], hy + oy[i]);
                        if let Some((cx, cy)) = self.grid.cell_of(endpoint) {
                            score += self.grid.log_odds_at(cx, cy);
                        } else {
                            score -= 1.0;
                        }
                    }
                    evals += beams as u64;
                    if score > best_score {
                        best_score = score;
                        best_pose = hypothesis;
                    }
                }
                tx += c.step_trans;
            }
            ty += c.step_trans;
        }
        (best_pose, evals)
    }

    /// Scalar-reference correlation search: recomputes `cos`/`sin` for
    /// every hypothesis × beam pair, exactly as the original kernel did.
    /// Kept public as the property-tested reference for
    /// [`DenseScanSlam::match_scan`].
    #[must_use]
    pub fn match_scan_reference(&self, prior: Pose2, scan: &Scan) -> (Pose2, u64) {
        let c = &self.config;
        let mut evals = 0u64;
        let mut best_pose = prior;
        let mut best_score = f64::NEG_INFINITY;
        let mut ty = -c.window_trans;
        while ty <= c.window_trans + 1e-12 {
            let mut tx = -c.window_trans;
            while tx <= c.window_trans + 1e-12 {
                let mut tr = -c.window_rot;
                while tr <= c.window_rot + 1e-12 {
                    let hypothesis = Pose2::new(
                        prior.position + Vec2::new(tx, ty),
                        normalize_angle(prior.heading + tr),
                    );
                    let mut score = 0.0;
                    for (bearing, range) in scan.bearings.iter().zip(&scan.ranges) {
                        let angle = hypothesis.heading + bearing;
                        let endpoint = hypothesis.position
                            + Vec2::new(range * angle.cos(), range * angle.sin());
                        if let Some((cx, cy)) = self.grid.cell_of(endpoint) {
                            score += self.grid.log_odds_at(cx, cy);
                        } else {
                            score -= 1.0;
                        }
                        evals += 1;
                    }
                    if score > best_score {
                        best_score = score;
                        best_pose = hypothesis;
                    }
                    tr += c.step_rot;
                }
                tx += c.step_trans;
            }
            ty += c.step_trans;
        }
        (best_pose, evals)
    }

    fn integrate(&mut self, scan: &Scan) {
        for (bearing, range) in scan.bearings.iter().zip(&scan.ranges) {
            let angle = self.pose.heading + bearing;
            let endpoint = self.pose.position + Vec2::new(range * angle.cos(), range * angle.sin());
            self.grid.integrate_ray(self.pose.position, endpoint, true);
        }
    }
}

/// Synthesizes a scan of `beams` beams of a rectangular room of the given
/// half-extents, as seen from `pose` (room centered at `center`).
///
/// A tiny utility used by tests and the E2 workload generator.
#[must_use]
pub fn synthetic_room_scan(
    pose: Pose2,
    center: Vec2,
    half_w: f64,
    half_h: f64,
    beams: usize,
) -> Scan {
    let mut bearings = Vec::with_capacity(beams);
    let mut ranges = Vec::with_capacity(beams);
    for i in 0..beams {
        let bearing =
            -core::f64::consts::PI + 2.0 * core::f64::consts::PI * i as f64 / beams as f64;
        let angle = pose.heading + bearing;
        let dir = Vec2::new(angle.cos(), angle.sin());
        // Ray-cast against the four walls.
        let rel = pose.position - center;
        let mut t_hit = f64::INFINITY;
        if dir.x.abs() > 1e-12 {
            for wall_x in [-half_w, half_w] {
                let t = (wall_x - rel.x) / dir.x;
                if t > 0.0 {
                    let y = rel.y + t * dir.y;
                    if y.abs() <= half_h {
                        t_hit = t_hit.min(t);
                    }
                }
            }
        }
        if dir.y.abs() > 1e-12 {
            for wall_y in [-half_h, half_h] {
                let t = (wall_y - rel.y) / dir.y;
                if t > 0.0 {
                    let x = rel.x + t * dir.x;
                    if x.abs() <= half_w {
                        t_hit = t_hit.min(t);
                    }
                }
            }
        }
        if t_hit.is_finite() {
            bearings.push(bearing);
            ranges.push(t_hit);
        }
    }
    Scan { bearings, ranges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypotheses_count_matches_window() {
        let slam = DenseScanSlam::new(DenseSlamConfig::default(), 20.0, 20.0, 0.25);
        // 21 × 21 translations × 21 rotations with the default config.
        assert_eq!(slam.hypotheses_per_scan(), 21 * 21 * 21);
    }

    #[test]
    fn tracks_motion_in_a_room() {
        let room_center = Vec2::new(15.0, 15.0);
        let mut slam = DenseScanSlam::new(DenseSlamConfig::default(), 30.0, 30.0, 0.25);
        // Teleport the matcher's start to the room center by integrating the
        // first scan from there.
        let mut truth = Pose2::new(room_center, 0.0);
        slam.pose = truth;
        let scan0 = synthetic_room_scan(truth, room_center, 10.0, 8.0, 90);
        slam.integrate(&scan0);

        // Walk forward in small steps.
        let step = Pose2::new(Vec2::new(0.2, 0.0), 0.02);
        for _ in 0..10 {
            truth = truth.compose(step);
            let scan = synthetic_room_scan(truth, room_center, 10.0, 8.0, 90);
            slam.step(step, &scan);
        }
        let err = slam.pose().position.distance(truth.position);
        assert!(err < 0.5, "dense matcher drifted {err} m");
        assert!(slam.correlation_evals() > 0);
    }

    /// Hoisted-trig matcher is bit-identical to the per-beam-trig
    /// reference: same pose, same eval count, over a populated map and a
    /// sweep of priors (including tie-prone off-grid priors).
    #[test]
    fn hoisted_matcher_is_bit_identical_to_reference() {
        let room_center = Vec2::new(15.0, 15.0);
        let mut slam = DenseScanSlam::new(DenseSlamConfig::default(), 30.0, 30.0, 0.25);
        slam.pose = Pose2::new(room_center, 0.0);
        let scan0 = synthetic_room_scan(slam.pose, room_center, 10.0, 8.0, 90);
        slam.integrate(&scan0);
        slam.integrate(&scan0);
        for (i, beams) in [(0u32, 33usize), (1, 90), (2, 61), (3, 1)] {
            let truth = Pose2::new(
                room_center + Vec2::new(0.13 * f64::from(i), -0.07 * f64::from(i)),
                0.03 * f64::from(i),
            );
            let scan = synthetic_room_scan(truth, room_center, 10.0, 8.0, beams);
            let (fast_pose, fast_evals) = slam.match_scan(truth, &scan);
            let (ref_pose, ref_evals) = slam.match_scan_reference(truth, &scan);
            assert_eq!(fast_pose, ref_pose, "pose divergence at prior {i}");
            assert_eq!(fast_evals, ref_evals, "eval-count divergence at prior {i}");
        }
    }

    #[test]
    fn correlation_work_scales_with_window() {
        let small = DenseScanSlam::new(
            DenseSlamConfig { window_trans: 0.2, ..DenseSlamConfig::default() },
            20.0,
            20.0,
            0.25,
        );
        let large = DenseScanSlam::new(
            DenseSlamConfig { window_trans: 0.8, ..DenseSlamConfig::default() },
            20.0,
            20.0,
            0.25,
        );
        assert!(large.hypotheses_per_scan() > small.hypotheses_per_scan() * 4);
    }

    #[test]
    fn synthetic_scan_ranges_are_positive_and_bounded() {
        let scan =
            synthetic_room_scan(Pose2::new(Vec2::new(0.0, 0.0), 0.3), Vec2::ZERO, 5.0, 4.0, 180);
        assert!(!scan.ranges.is_empty());
        for r in &scan.ranges {
            assert!(*r > 0.0 && *r <= (5.0f64.powi(2) + 4.0f64.powi(2)).sqrt() + 1e-9);
        }
    }
}
