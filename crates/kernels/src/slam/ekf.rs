//! Landmark EKF-SLAM with range-bearing observations and known data
//! association.

use crate::geometry::{normalize_angle, Pose2, Vec2};
use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Noise and model parameters for [`EkfSlam`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfSlamConfig {
    /// Standard deviation of translational motion noise per step (meters).
    pub motion_noise_trans: f64,
    /// Standard deviation of rotational motion noise per step (radians).
    pub motion_noise_rot: f64,
    /// Standard deviation of range measurements (meters).
    pub range_noise: f64,
    /// Standard deviation of bearing measurements (radians).
    pub bearing_noise: f64,
}

impl Default for EkfSlamConfig {
    fn default() -> Self {
        Self {
            motion_noise_trans: 0.05,
            motion_noise_rot: 0.01,
            range_noise: 0.1,
            bearing_noise: 0.02,
        }
    }
}

/// One range-bearing observation of an identified landmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LandmarkObservation {
    /// Stable landmark identifier (known data association).
    pub id: u32,
    /// Measured distance to the landmark (meters).
    pub range: f64,
    /// Measured bearing relative to the robot heading (radians).
    pub bearing: f64,
}

/// The sparse landmark EKF-SLAM filter.
///
/// State is `[x, y, θ, l₁x, l₁y, l₂x, l₂y, …]` with a dense covariance that
/// grows as landmarks are first observed.
///
/// # Examples
///
/// ```
/// use m7_kernels::slam::{EkfSlam, EkfSlamConfig, LandmarkObservation};
///
/// let mut slam = EkfSlam::new(EkfSlamConfig::default());
/// slam.predict(1.0, 0.0, 0.1); // drive forward 0.1 s at 1 m/s
/// slam.update(&[LandmarkObservation { id: 7, range: 5.0, bearing: 0.3 }]);
/// assert_eq!(slam.landmark_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EkfSlam {
    config: EkfSlamConfig,
    /// State mean: pose then landmark positions.
    state: Vec<f64>,
    covariance: Matrix,
    /// Landmark id → index into the landmark list.
    landmark_index: HashMap<u32, usize>,
    /// Cumulative floating-point work estimate (for cost models).
    flops: f64,
}

impl EkfSlam {
    /// Creates a filter at the origin with zero pose uncertainty.
    #[must_use]
    pub fn new(config: EkfSlamConfig) -> Self {
        Self {
            config,
            state: vec![0.0; 3],
            covariance: Matrix::zeros(3, 3),
            landmark_index: HashMap::new(),
            flops: 0.0,
        }
    }

    /// The filter configuration.
    #[must_use]
    pub fn config(&self) -> &EkfSlamConfig {
        &self.config
    }

    /// Current pose estimate.
    #[must_use]
    pub fn pose(&self) -> Pose2 {
        Pose2::new(Vec2::new(self.state[0], self.state[1]), self.state[2])
    }

    /// Number of landmarks in the map.
    #[must_use]
    pub fn landmark_count(&self) -> usize {
        self.landmark_index.len()
    }

    /// Estimated position of landmark `id`, if mapped.
    #[must_use]
    pub fn landmark(&self, id: u32) -> Option<Vec2> {
        self.landmark_index.get(&id).map(|&k| {
            let base = 3 + 2 * k;
            Vec2::new(self.state[base], self.state[base + 1])
        })
    }

    /// Trace of the pose covariance block — a scalar uncertainty summary.
    #[must_use]
    pub fn pose_uncertainty(&self) -> f64 {
        self.covariance[(0, 0)] + self.covariance[(1, 1)] + self.covariance[(2, 2)]
    }

    /// Cumulative floating-point-operation estimate consumed so far.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// EKF prediction for a unicycle moving at speed `v` (m/s) and turn rate
    /// `omega` (rad/s) for `dt` seconds.
    pub fn predict(&mut self, v: f64, omega: f64, dt: f64) {
        let theta = self.state[2];
        self.state[0] += v * dt * theta.cos();
        self.state[1] += v * dt * theta.sin();
        self.state[2] = normalize_angle(theta + omega * dt);

        let n = self.state.len();
        // Jacobian of the motion model w.r.t. the pose (identity elsewhere).
        let mut g = Matrix::identity(n);
        g[(0, 2)] = -v * dt * theta.sin();
        g[(1, 2)] = v * dt * theta.cos();
        let mut q = Matrix::zeros(n, n);
        let qt = self.config.motion_noise_trans * self.config.motion_noise_trans * dt;
        let qr = self.config.motion_noise_rot * self.config.motion_noise_rot * dt;
        q[(0, 0)] = qt;
        q[(1, 1)] = qt;
        q[(2, 2)] = qr;

        let gp = g.mul(&self.covariance).expect("shapes match");
        self.covariance =
            gp.mul(&g.transpose()).expect("shapes match").add(&q).expect("shapes match");
        self.flops += 4.0 * (n * n * n) as f64 + (n * n) as f64;
    }

    /// EKF correction with a batch of landmark observations.
    ///
    /// First-time landmarks are initialized from the measurement and appended
    /// to the state; known landmarks produce a standard EKF update.
    pub fn update(&mut self, observations: &[LandmarkObservation]) {
        for obs in observations {
            if self.landmark_index.contains_key(&obs.id) {
                self.correct(obs);
            } else {
                self.initialize_landmark(obs);
            }
        }
    }

    fn initialize_landmark(&mut self, obs: &LandmarkObservation) {
        let pose = self.pose();
        let global_bearing = pose.heading + obs.bearing;
        let lx = pose.position.x + obs.range * global_bearing.cos();
        let ly = pose.position.y + obs.range * global_bearing.sin();
        let k = self.landmark_index.len();
        self.landmark_index.insert(obs.id, k);
        self.state.push(lx);
        self.state.push(ly);

        // Grow covariance, seeding the new block with generous uncertainty.
        let old = self.covariance.clone();
        let n = self.state.len();
        let mut grown = Matrix::zeros(n, n);
        for i in 0..old.rows() {
            for j in 0..old.cols() {
                grown[(i, j)] = old[(i, j)];
            }
        }
        let seed = (self.config.range_noise * 10.0).powi(2) + 1.0;
        grown[(n - 2, n - 2)] = seed;
        grown[(n - 1, n - 1)] = seed;
        self.covariance = grown;
        self.flops += (n * n) as f64;
    }

    fn correct(&mut self, obs: &LandmarkObservation) {
        let k = self.landmark_index[&obs.id];
        let base = 3 + 2 * k;
        let n = self.state.len();
        let (rx, ry, theta) = (self.state[0], self.state[1], self.state[2]);
        let (lx, ly) = (self.state[base], self.state[base + 1]);

        let dx = lx - rx;
        let dy = ly - ry;
        let q = dx * dx + dy * dy;
        if q < 1e-12 {
            return; // Landmark coincides with the robot; no information.
        }
        let sqrt_q = q.sqrt();

        // Predicted measurement.
        let z_hat_range = sqrt_q;
        let z_hat_bearing = normalize_angle(dy.atan2(dx) - theta);

        // Measurement Jacobian H (2 × n), nonzero only in pose and landmark
        // columns.
        let mut h = Matrix::zeros(2, n);
        h[(0, 0)] = -dx / sqrt_q;
        h[(0, 1)] = -dy / sqrt_q;
        h[(0, base)] = dx / sqrt_q;
        h[(0, base + 1)] = dy / sqrt_q;
        h[(1, 0)] = dy / q;
        h[(1, 1)] = -dx / q;
        h[(1, 2)] = -1.0;
        h[(1, base)] = -dy / q;
        h[(1, base + 1)] = dx / q;

        let r = Matrix::from_diagonal(&[
            self.config.range_noise * self.config.range_noise,
            self.config.bearing_noise * self.config.bearing_noise,
        ]);

        // S = H P Hᵀ + R ;  K = P Hᵀ S⁻¹
        let ph_t = self.covariance.mul(&h.transpose()).expect("shapes match");
        let s = h.mul(&ph_t).expect("shapes match").add(&r).expect("shapes match");
        let s_inv = match s.inverse() {
            Ok(inv) => inv,
            Err(_) => return, // Numerically degenerate innovation; skip.
        };
        let gain = ph_t.mul(&s_inv).expect("shapes match");

        let innovation = [obs.range - z_hat_range, normalize_angle(obs.bearing - z_hat_bearing)];
        for i in 0..n {
            self.state[i] += gain[(i, 0)] * innovation[0] + gain[(i, 1)] * innovation[1];
        }
        self.state[2] = normalize_angle(self.state[2]);

        // P ← (I − K H) P
        let kh = gain.mul(&h).expect("shapes match");
        let i_kh = Matrix::identity(n).sub(&kh).expect("shapes match");
        self.covariance = i_kh.mul(&self.covariance).expect("shapes match");
        self.flops += 6.0 * (n * n) as f64 + 2.0 * (n * n) as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Simulates a robot circling among landmarks and returns the filter and
    /// the true trajectory endpoint.
    fn run_scenario(steps: usize, seed: u64) -> (EkfSlam, Pose2, Vec<Vec2>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let landmarks: Vec<Vec2> = (0..8)
            .map(|_| Vec2::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let cfg = EkfSlamConfig::default();
        let mut slam = EkfSlam::new(cfg);
        let mut truth = Pose2::identity();
        let dt = 0.1;
        let (v, omega) = (1.0, 0.2);
        for _ in 0..steps {
            // True motion with small noise.
            let nv = v + rng.gen_range(-0.02..0.02);
            let nw = omega + rng.gen_range(-0.005..0.005);
            truth = Pose2::new(
                truth.position
                    + Vec2::new(nv * dt * truth.heading.cos(), nv * dt * truth.heading.sin()),
                truth.heading + nw * dt,
            );
            slam.predict(v, omega, dt);
            // Observe landmarks within sensor range.
            let mut obs = Vec::new();
            for (id, lm) in landmarks.iter().enumerate() {
                let rel = *lm - truth.position;
                let range = rel.norm();
                if range < 8.0 {
                    let bearing = normalize_angle(rel.angle() - truth.heading);
                    obs.push(LandmarkObservation {
                        id: id as u32,
                        range: range + rng.gen_range(-0.05..0.05),
                        bearing: bearing + rng.gen_range(-0.01..0.01),
                    });
                }
            }
            slam.update(&obs);
        }
        (slam, truth, landmarks)
    }

    #[test]
    fn tracks_pose_within_tolerance() {
        let (slam, truth, _) = run_scenario(300, 2);
        let err = slam.pose().position.distance(truth.position);
        assert!(err < 1.0, "pose error {err} too large");
    }

    #[test]
    fn maps_observed_landmarks() {
        let (slam, _, landmarks) = run_scenario(300, 3);
        assert!(slam.landmark_count() >= 4, "should map several landmarks");
        let mut checked = 0;
        for (id, lm) in landmarks.iter().enumerate() {
            if let Some(est) = slam.landmark(id as u32) {
                assert!(est.distance(*lm) < 1.5, "landmark {id} error {}", est.distance(*lm));
                checked += 1;
            }
        }
        assert!(checked >= 4);
    }

    #[test]
    fn observations_reduce_uncertainty() {
        let cfg = EkfSlamConfig::default();
        let mut slam = EkfSlam::new(cfg);
        for _ in 0..50 {
            slam.predict(1.0, 0.0, 0.1);
        }
        let before = slam.pose_uncertainty();
        // A landmark straight ahead, observed repeatedly.
        slam.update(&[LandmarkObservation { id: 0, range: 3.0, bearing: 0.0 }]);
        for _ in 0..10 {
            slam.update(&[LandmarkObservation { id: 0, range: 3.0, bearing: 0.0 }]);
        }
        assert!(slam.pose_uncertainty() < before);
    }

    #[test]
    fn unknown_landmark_is_initialized_from_measurement() {
        let mut slam = EkfSlam::new(EkfSlamConfig::default());
        slam.update(&[LandmarkObservation { id: 42, range: 2.0, bearing: 0.0 }]);
        let lm = slam.landmark(42).unwrap();
        assert!(lm.distance(Vec2::new(2.0, 0.0)) < 1e-9);
    }

    #[test]
    fn flops_accumulate_and_grow_with_map_size() {
        let mut small = EkfSlam::new(EkfSlamConfig::default());
        small.update(&[LandmarkObservation { id: 0, range: 2.0, bearing: 0.0 }]);
        small.predict(1.0, 0.0, 0.1);
        let small_flops = small.flops();

        let mut big = EkfSlam::new(EkfSlamConfig::default());
        for id in 0..20 {
            big.update(&[LandmarkObservation { id, range: 2.0, bearing: 0.1 * f64::from(id) }]);
        }
        let before = big.flops();
        big.predict(1.0, 0.0, 0.1);
        assert!(big.flops() - before > small_flops, "bigger state costs more per predict");
    }
}
