//! 2D pose-graph optimization by Gauss-Newton: the modern back end that
//! displaced dense filters in production SLAM stacks.
//!
//! Nodes are SE(2) poses; edges are relative-pose constraints with
//! diagonal information. [`PoseGraph::optimize`] linearizes all residuals
//! and solves the normal equations with the crate's dense solver (adequate
//! for the graph sizes exercised here; a production system would use a
//! sparse factorization — the cost *structure* per iteration is the same
//! J^T J assembly the accelerator literature targets).

use crate::geometry::{normalize_angle, Pose2, Vec2};
use crate::linalg::{LinalgError, Matrix};
use serde::{Deserialize, Serialize};

/// A relative-pose constraint between two graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseConstraint {
    /// Index of the source node.
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// Measured pose of `to` in `from`'s frame.
    pub measurement: Pose2,
    /// Diagonal information (inverse variance) for `(x, y, θ)`.
    pub information: [f64; 3],
}

/// Errors from pose-graph operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoseGraphError {
    /// A constraint references a node that does not exist.
    InvalidNode {
        /// The offending node index.
        index: usize,
    },
    /// The normal equations were singular (under-constrained graph).
    Singular,
}

impl core::fmt::Display for PoseGraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidNode { index } => write!(f, "constraint references missing node {index}"),
            Self::Singular => {
                write!(f, "normal equations are singular; graph is under-constrained")
            }
        }
    }
}

impl std::error::Error for PoseGraphError {}

impl From<LinalgError> for PoseGraphError {
    fn from(_: LinalgError) -> Self {
        Self::Singular
    }
}

/// A 2D pose graph with Gauss-Newton optimization.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::{Pose2, Vec2};
/// use m7_kernels::slam::{PoseConstraint, PoseGraph};
///
/// let mut graph = PoseGraph::new();
/// let a = graph.add_node(Pose2::identity());
/// let b = graph.add_node(Pose2::new(Vec2::new(1.2, 0.1), 0.05)); // noisy initial guess
/// graph.add_constraint(PoseConstraint {
///     from: a,
///     to: b,
///     measurement: Pose2::new(Vec2::new(1.0, 0.0), 0.0),
///     information: [10.0, 10.0, 10.0],
/// }).unwrap();
/// let error = graph.optimize(10).unwrap();
/// assert!(error < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PoseGraph {
    nodes: Vec<Pose2>,
    constraints: Vec<PoseConstraint>,
}

impl PoseGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with an initial pose estimate; returns its index.
    pub fn add_node(&mut self, initial: Pose2) -> usize {
        self.nodes.push(initial);
        self.nodes.len() - 1
    }

    /// Adds a relative-pose constraint.
    ///
    /// # Errors
    ///
    /// Returns [`PoseGraphError::InvalidNode`] if either endpoint does not
    /// exist.
    pub fn add_constraint(&mut self, c: PoseConstraint) -> Result<(), PoseGraphError> {
        for index in [c.from, c.to] {
            if index >= self.nodes.len() {
                return Err(PoseGraphError::InvalidNode { index });
            }
        }
        self.constraints.push(c);
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current pose estimates.
    #[must_use]
    pub fn nodes(&self) -> &[Pose2] {
        &self.nodes
    }

    /// The constraints.
    #[must_use]
    pub fn constraints(&self) -> &[PoseConstraint] {
        &self.constraints
    }

    /// The residual of one constraint at the current estimates:
    /// `(to ⊖ from) ⊖ measurement` expressed as `(dx, dy, dθ)`.
    #[must_use]
    fn residual(&self, c: &PoseConstraint) -> [f64; 3] {
        let relative = self.nodes[c.from].inverse().compose(self.nodes[c.to]);
        let dp = relative.position - c.measurement.position;
        // Rotate the positional error into `from`'s measurement frame so
        // the Jacobians below stay consistent.
        [dp.x, dp.y, normalize_angle(relative.heading - c.measurement.heading)]
    }

    /// Total weighted squared error over all constraints.
    #[must_use]
    pub fn total_error(&self) -> f64 {
        self.constraints
            .iter()
            .map(|c| {
                let r = self.residual(c);
                r.iter().zip(&c.information).map(|(e, i)| e * e * i).sum::<f64>()
            })
            .sum()
    }

    /// Runs up to `max_iterations` Gauss-Newton steps with the first node
    /// held fixed (gauge freedom). Returns the final total error.
    ///
    /// # Errors
    ///
    /// Returns [`PoseGraphError::Singular`] if the normal equations cannot
    /// be solved (e.g. a disconnected graph).
    pub fn optimize(&mut self, max_iterations: usize) -> Result<f64, PoseGraphError> {
        if self.nodes.len() <= 1 || self.constraints.is_empty() {
            return Ok(self.total_error());
        }
        let dim = 3 * self.nodes.len();
        for _ in 0..max_iterations {
            let mut h = Matrix::zeros(dim, dim);
            let mut b = Matrix::zeros(dim, 1);

            for c in &self.constraints {
                let xi = self.nodes[c.from];
                let xj = self.nodes[c.to];
                let r = self.residual(c);
                let (si, ci) = xi.heading.sin_cos();
                let d = xj.position - xi.position;

                // Jacobians of the relative pose w.r.t. xi and xj (standard
                // 2D pose-graph linearization).
                // relative.position = R(-θi) (pj - pi)
                let j_i = [
                    [-ci, -si, -si * d.x + ci * d.y],
                    [si, -ci, -ci * d.x - si * d.y],
                    [0.0, 0.0, -1.0],
                ];
                let j_j = [[ci, si, 0.0], [-si, ci, 0.0], [0.0, 0.0, 1.0]];

                let bi = 3 * c.from;
                let bj = 3 * c.to;
                for row in 0..3 {
                    let w = c.information[row];
                    for a in 0..3 {
                        for bcol in 0..3 {
                            h[(bi + a, bi + bcol)] += j_i[row][a] * w * j_i[row][bcol];
                            h[(bi + a, bj + bcol)] += j_i[row][a] * w * j_j[row][bcol];
                            h[(bj + a, bi + bcol)] += j_j[row][a] * w * j_i[row][bcol];
                            h[(bj + a, bj + bcol)] += j_j[row][a] * w * j_j[row][bcol];
                        }
                        b[(bi + a, 0)] += j_i[row][a] * w * r[row];
                        b[(bj + a, 0)] += j_j[row][a] * w * r[row];
                    }
                }
            }

            // Fix the gauge: clamp node 0 by adding a strong prior.
            for a in 0..3 {
                h[(a, a)] += 1e9;
            }

            let delta = h.solve(&b.scaled(-1.0))?;
            let mut max_step = 0.0f64;
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let dx = delta[(3 * i, 0)];
                let dy = delta[(3 * i + 1, 0)];
                let dth = delta[(3 * i + 2, 0)];
                *node = Pose2::new(node.position + Vec2::new(dx, dy), node.heading + dth);
                max_step = max_step.max(dx.abs()).max(dy.abs()).max(dth.abs());
            }
            if max_step < 1e-10 {
                break;
            }
        }
        Ok(self.total_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_edge_snaps_to_measurement() {
        let mut g = PoseGraph::new();
        let a = g.add_node(Pose2::identity());
        let b = g.add_node(Pose2::new(Vec2::new(2.0, 1.0), 0.4));
        g.add_constraint(PoseConstraint {
            from: a,
            to: b,
            measurement: Pose2::new(Vec2::new(1.0, 0.0), 0.1),
            information: [1.0, 1.0, 1.0],
        })
        .unwrap();
        let err = g.optimize(20).unwrap();
        assert!(err < 1e-10, "residual should vanish, got {err}");
        let rel = g.nodes()[a].inverse().compose(g.nodes()[b]);
        assert!(rel.position.distance(Vec2::new(1.0, 0.0)) < 1e-6);
        assert!((rel.heading - 0.1).abs() < 1e-6);
    }

    #[test]
    fn invalid_constraint_is_rejected() {
        let mut g = PoseGraph::new();
        g.add_node(Pose2::identity());
        let result = g.add_constraint(PoseConstraint {
            from: 0,
            to: 5,
            measurement: Pose2::identity(),
            information: [1.0; 3],
        });
        assert_eq!(result, Err(PoseGraphError::InvalidNode { index: 5 }));
    }

    /// Builds a noisy square loop with loop closure and checks that
    /// optimization removes the accumulated drift.
    #[test]
    fn loop_closure_removes_drift() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let mut g = PoseGraph::new();
        // Ground truth: 4 corners of a 10 m square plus return to start.
        let truth = [
            Pose2::new(Vec2::new(0.0, 0.0), 0.0),
            Pose2::new(Vec2::new(10.0, 0.0), core::f64::consts::FRAC_PI_2),
            Pose2::new(Vec2::new(10.0, 10.0), core::f64::consts::PI),
            Pose2::new(Vec2::new(0.0, 10.0), -core::f64::consts::FRAC_PI_2),
        ];
        // Initial estimates: truth corrupted by growing drift.
        let mut drift = Vec2::ZERO;
        for (i, t) in truth.iter().enumerate() {
            drift += Vec2::new(rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3));
            let noisy = if i == 0 { *t } else { Pose2::new(t.position + drift, t.heading + 0.05) };
            g.add_node(noisy);
        }
        // Odometry edges along the loop (true relative poses).
        for i in 0..4 {
            let j = (i + 1) % 4;
            let measurement = truth[i].inverse().compose(truth[j]);
            g.add_constraint(PoseConstraint {
                from: i,
                to: j,
                measurement,
                information: [10.0, 10.0, 100.0],
            })
            .unwrap();
        }
        let before = g.total_error();
        let after = g.optimize(30).unwrap();
        assert!(after < before / 100.0, "optimization must slash error: {before} -> {after}");
        // All corners land near the truth (gauge fixed at node 0).
        for (node, t) in g.nodes().iter().zip(&truth) {
            assert!(
                node.position.distance(t.position) < 0.05,
                "corner off by {}",
                node.position.distance(t.position)
            );
        }
    }

    #[test]
    fn empty_and_trivial_graphs_are_fine() {
        let mut g = PoseGraph::new();
        assert_eq!(g.optimize(5).unwrap(), 0.0);
        g.add_node(Pose2::identity());
        assert_eq!(g.optimize(5).unwrap(), 0.0);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn chain_distributes_loop_closure_error() {
        // A 5-node straight chain whose initial guesses overshoot; a
        // closure from end to start pulls everything consistent.
        let mut g = PoseGraph::new();
        for i in 0..5 {
            g.add_node(Pose2::new(Vec2::new(1.2 * i as f64, 0.1 * i as f64), 0.0));
        }
        for i in 0..4 {
            g.add_constraint(PoseConstraint {
                from: i,
                to: i + 1,
                measurement: Pose2::new(Vec2::new(1.0, 0.0), 0.0),
                information: [1.0, 1.0, 1.0],
            })
            .unwrap();
        }
        g.add_constraint(PoseConstraint {
            from: 4,
            to: 0,
            measurement: Pose2::new(Vec2::new(-4.0, 0.0), 0.0),
            information: [1.0, 1.0, 1.0],
        })
        .unwrap();
        let err = g.optimize(30).unwrap();
        assert!(err < 1e-8, "consistent constraints should fit exactly, got {err}");
        assert!(g.nodes()[4].position.distance(Vec2::new(4.0, 0.0)) < 1e-4);
    }
}
